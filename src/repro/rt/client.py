"""RtClient: the ORB's client-side invocation path over real sockets.

Produces byte-for-byte the same GIOP messages the netsim client does —
``giop.encode_request`` on the same :class:`~repro.orb.request.Request`
objects, transformed by the *same* :class:`QoSModule` instances
(Figure 3's routing: assigned module or the GIOP/IIOP default) — and
carries them framed over :class:`~repro.rt.transport.AsyncioTransport`
instead of the simulated network.  IORs keep their *logical* host
names ("server", "s2", ...), exactly as minted by the serving POA;
:attr:`addresses` maps each logical host to the real ``(ip, port)``
its :class:`~repro.rt.server.RtServer` listens on.  That mapping is
deliberately outside the reference — the encoded request bytes stay
identical across substrates, which is what the conformance suite
asserts.

:class:`ReliableInvoker` reuses the reliability layer's primitives —
:class:`~repro.reliability.retry.BackoffSchedule`,
:class:`~repro.reliability.breaker.CircuitBreaker`,
:class:`~repro.reliability.failover.FailoverRotation` — on wall-clock
time, mirroring the mediator's recovery loop over this transport.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.orb import giop
from repro.orb.exceptions import (
    COMM_FAILURE,
    MARSHAL,
    OVERLOAD,
    SystemException,
    TRANSIENT,
    is_unexecuted,
    mark_unexecuted,
)
from repro.orb.invocation import absorb_reply
from repro.orb.ior import IOR
from repro.orb.modules import QoSModule, create_module
from repro.orb.modules.base import (
    binding_key,
    decode_envelope,
    encode_envelope,
    is_envelope,
)
from repro.orb.request import Request
from repro.perf.counters import COUNTERS
from repro.reliability.breaker import CircuitBreaker
from repro.reliability.failover import FailoverRotation
from repro.reliability.policy import (
    BREAKER_OPEN_MINOR,
    DEADLINE_CONTEXT,
    ReliabilityPolicy,
)
from repro.reliability.retry import BackoffSchedule
from repro.rt.clock import Clock, MonotonicClock
from repro.rt.transport import AsyncioTransport, RtConnection
from repro.sched.backpressure import Backpressure


class _ModuleHost:
    """Just enough of a QoSTransport for client-side module loading."""

    def __init__(self, client: "RtClient") -> None:
        self.orb = client


class RtClient:
    """Issue requests to real RtServers; the sockets-side peer of an ORB."""

    def __init__(
        self,
        addresses: Optional[Dict[str, Tuple[str, int]]] = None,
        transport: Optional[AsyncioTransport] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        #: logical IOR host name -> real (ip, port).
        self.addresses: Dict[str, Tuple[str, int]] = dict(addresses or {})
        self.transport = transport if transport is not None else AsyncioTransport()
        self._owns_transport = transport is None
        self.clock = clock if clock is not None else MonotonicClock()
        self._connections: Dict[str, RtConnection] = {}
        self._host = _ModuleHost(self)
        self._modules: Dict[str, QoSModule] = {}
        self._assignments: Dict[str, str] = {}
        #: Server retry-after hints, same tracker the sim client uses.
        self.backpressure = Backpressure()
        self.requests_invoked = 0
        self.load_module("iiop")

    # -- module administration (client half of Figure 3) ------------------

    def load_module(self, name: str) -> QoSModule:
        module = self._modules.get(name)
        if module is None:
            module = create_module(name)
            module.on_load(self._host)
            self._modules[name] = module
        return module

    def module(self, name: str) -> QoSModule:
        return self.load_module(name)

    def assign(self, target: IOR, module_name: str) -> str:
        """Assign a QoS module to the relationship with ``target``."""
        self.load_module(module_name)
        key = binding_key(target)
        self._assignments[key] = module_name
        return key

    def _route(self, request: Request) -> QoSModule:
        if request.is_command or not request.target.is_qos_aware:
            return self._modules["iiop"]
        name = self._assignments.get(request.target.binding_key())
        return self._modules[name] if name is not None else self._modules["iiop"]

    # -- connections ------------------------------------------------------

    def register(self, logical_host: str, host: str, port: int) -> None:
        self.addresses[logical_host] = (host, port)

    def connection(self, logical_host: str) -> RtConnection:
        connection = self._connections.get(logical_host)
        if connection is None:
            try:
                host, port = self.addresses[logical_host]
            except KeyError:
                raise mark_unexecuted(
                    COMM_FAILURE(f"no address registered for {logical_host!r}")
                ) from None
            connection = self.transport.connect(host, port)
            self._connections[logical_host] = connection
        return connection

    def _drop_connection(self, logical_host: str) -> None:
        connection = self._connections.pop(logical_host, None)
        if connection is not None:
            try:
                connection.close()
            except Exception:  # teardown of an already-dead socket
                pass

    # -- invocation -------------------------------------------------------

    def invoke(self, request: Request) -> Any:
        """Issue one request; return its result or raise its exception."""
        reply = self.outcome(request)
        return reply.value()

    def outcome(self, request: Request) -> giop.Reply:
        """Issue one request; return the decoded reply object."""
        self.requests_invoked += 1
        module = self._route(request)
        wire = self._encode(request, module)
        logical_host = request.target.profile.host
        try:
            reply_wire = self.connection(logical_host).round_trip(wire)
        except SystemException:
            self._drop_connection(logical_host)
            raise
        reply = self._decode(reply_wire, module)
        if request.response_expected:
            module.requests_sent += 1
            absorb_reply(self, logical_host, reply, self.clock.now())
            return reply
        # Oneway: the reply frame was only the transport-level ack.
        module.requests_sent += 1
        return giop.Reply(request.request_id, {}, None, None)

    def invoke_window(self, requests: List[Request]) -> List[giop.Reply]:
        """Pipelined window: write every request, then drain the replies.

        All requests must ride the same binding (one connection); the
        replies come back correlated by GIOP request id, mirroring the
        AMI pipeline's completion-order handling.
        """
        if not requests:
            return []
        module = self._route(requests[0])
        logical_host = requests[0].target.profile.host
        bodies = [giop.encode_request(r) for r in requests]
        if module.uses_envelope:
            wrapped = module.wrap_burst(bodies, module.context_for(requests[0]))
            wires = [
                encode_envelope(module.name, params, payload)
                for params, payload, _ in wrapped
            ]
        else:
            wires = bodies
        self.requests_invoked += len(requests)
        try:
            reply_wires = self.connection(logical_host).round_trip_many(wires)
        except SystemException:
            self._drop_connection(logical_host)
            raise
        by_id: Dict[int, giop.Reply] = {}
        for reply_wire in reply_wires:
            reply = self._decode(reply_wire, module)
            by_id[reply.request_id] = reply
            absorb_reply(self, logical_host, reply, self.clock.now())
        module.requests_sent += len(requests)
        # Unattributable replies (the server answers id 0 when it
        # cannot even read the request) fall back positionally.
        replies: List[giop.Reply] = []
        leftovers = [r for rid, r in by_id.items() if rid == 0]
        for request in requests:
            reply = by_id.get(request.request_id)
            if reply is None and leftovers:
                reply = leftovers.pop(0)
            if reply is None:
                reply = giop.Reply(
                    request.request_id,
                    {},
                    None,
                    MARSHAL("no reply correlated to this request"),
                )
            replies.append(reply)
        return replies

    def command(
        self, target: IOR, command_target: str, operation: str, *args: Any
    ) -> Any:
        """Issue a module/transport command to the serving ORB."""
        from repro.orb.request import command as make_command

        return self.invoke(make_command(target, command_target, operation, *args))

    def locate(self, ior: IOR) -> bool:
        """GIOP LocateRequest over the socket."""
        from repro.orb.request import next_request_id

        request_id = next_request_id()
        wire = giop.encode_locate_request(request_id, ior.profile.object_key)
        reply_wire = self.connection(ior.profile.host).round_trip(wire)
        reply_id, status = giop.decode_locate_reply(reply_wire)
        if reply_id != request_id:
            raise MARSHAL(
                f"LocateReply correlates to request {reply_id}, "
                f"expected {request_id}"
            )
        return status == giop.OBJECT_HERE

    # -- encode/decode (identical transforms to the sim path) -------------

    def _encode(self, request: Request, module: QoSModule) -> bytes:
        wire = giop.encode_request(request)
        if module.uses_envelope:
            params, payload, _ = module.wrap(wire, module.context_for(request))
            wire = encode_envelope(module.name, params, payload)
        return wire

    def _decode(self, reply_wire: bytes, module: QoSModule) -> giop.Reply:
        if is_envelope(reply_wire):
            envelope_name, params, payload = decode_envelope(reply_wire)
            if envelope_name != module.name:
                raise MARSHAL(
                    f"reply wrapped by {envelope_name!r}, expected {module.name!r}"
                )
            reply_wire, _ = module.unwrap(params, payload)
        return giop.decode_reply(reply_wire)

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        for logical_host in list(self._connections):
            self._drop_connection(logical_host)
        if self._owns_transport:
            self.transport.close()

    def __enter__(self) -> "RtClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


#: Errors worth re-issuing at all (mirrors the reliability mediator).
_RETRIABLE = (COMM_FAILURE, TRANSIENT)


class ReliableInvoker:
    """The reliability mediator's recovery loop over the rt transport.

    Same decision structure as
    :class:`~repro.reliability.mediator.ReliabilityMediator`: deadline
    check, breaker-gated target selection over a ``GROUP_TAG``
    rotation, at-most-once retry gating, backoff merged with the
    server's retry-after hints — except the pauses really sleep and
    the deadlines are wall-clock.
    """

    def __init__(
        self,
        client: RtClient,
        ior: IOR,
        policy: Optional[ReliabilityPolicy] = None,
        idempotent_ops: frozenset = frozenset(),
    ) -> None:
        self.client = client
        self.policy = policy if policy is not None else ReliabilityPolicy()
        self.backoff = BackoffSchedule(self.policy)
        self.rotation = FailoverRotation(ior)
        self.idempotent_ops = idempotent_ops
        self._breakers: Dict[str, CircuitBreaker] = {}
        self.retries_used = 0
        self.failovers = 0
        self.deadlines_expired = 0

    def call(self, operation: str, *args: Any) -> Any:
        clock = self.client.clock
        deadline_at = (
            clock.now() + self.policy.deadline
            if self.policy.deadline is not None
            else None
        )
        attempt = 0
        while True:
            if deadline_at is not None and clock.now() >= deadline_at:
                self.deadlines_expired += 1
                from repro.orb.exceptions import TIMEOUT

                raise TIMEOUT(
                    f"reliability deadline {deadline_at:.6f}s expired before issue"
                )
            target = self._select_target(clock.now())
            contexts = (
                {DEADLINE_CONTEXT: deadline_at} if deadline_at is not None else None
            )
            request = Request(
                target, operation, args, service_contexts=contexts or {}
            )
            try:
                value = self.client.invoke(request)
            except SystemException as error:
                self._breaker(target).record_failure(clock.now())
                if not self._may_retry(operation, error):
                    raise
                if attempt >= self.policy.max_retries:
                    COUNTERS.rel_retry_exhausted += 1
                    raise
                attempt += 1
                self.retries_used += 1
                COUNTERS.rel_retries += 1
                self._pause_and_rebind(target, error, attempt, deadline_at)
                continue
            self._breaker(target).record_success()
            return value

    # -- the mediator's decision points, wall-clock edition ---------------

    def _may_retry(self, operation: str, error: Exception) -> bool:
        if not isinstance(error, _RETRIABLE):
            return False
        if operation in self.idempotent_ops or operation in self.policy.idempotent_ops:
            return True
        return is_unexecuted(error)

    def _pause_and_rebind(
        self,
        target: IOR,
        error: SystemException,
        attempt: int,
        deadline_at: Optional[float],
    ) -> None:
        clock = self.client.clock
        failing_host = target.profile.host
        fail_over = (
            self.policy.failover
            and len(self.rotation) > 1
            and not isinstance(error, OVERLOAD)
            and getattr(error, "minor", 0) != BREAKER_OPEN_MINOR
        )
        if fail_over:
            retry_after = getattr(error, "retry_after", None)
            if retry_after:
                self.client.backpressure.note(
                    failing_host, float(retry_after), clock.now()
                )
            self.rotation.advance()
            self.failovers += 1
            COUNTERS.rel_failovers += 1
            delay = 0.0
        else:
            delay = self.client.backpressure.retry_delay(
                failing_host, error, clock.now(), self.backoff.delay(attempt)
            )
        if deadline_at is not None and clock.now() + delay >= deadline_at:
            self.deadlines_expired += 1
            from repro.orb.exceptions import TIMEOUT

            raise TIMEOUT(
                f"backoff of {delay:.6f}s would overrun the deadline "
                f"{deadline_at:.6f}s"
            ) from error
        if delay > 0.0:
            clock.wait(delay)

    def _breaker(self, target: IOR) -> CircuitBreaker:
        key = target.binding_key()
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(
                self.policy.breaker_threshold, self.policy.breaker_cooldown
            )
            self._breakers[key] = breaker
        return breaker

    def _select_target(self, now: float) -> IOR:
        for _ in range(len(self.rotation)):
            target = self.rotation.active
            if self._breaker(target).allow(now):
                return target
            if self.policy.failover and len(self.rotation) > 1:
                self.rotation.advance()
            else:
                break
        COUNTERS.rel_breaker_fast_fails += 1
        raise mark_unexecuted(
            TRANSIENT(
                f"circuit breaker open for {self.rotation.active.binding_key()}",
                minor=BREAKER_OPEN_MINOR,
            )
        )
