"""Process harness: RtServer and RtClient in separate OS processes.

The conformance drivers run both substrates in one process for
byte-capture; this module is the real-deployment shape — a server
child listening on TCP and client children dialing it, each a plain
``python -m repro.rt.harness`` invocation:

::

    python -m repro.rt.harness serve repro.rt.scenarios:echo_server
    python -m repro.rt.harness client repro.rt.scenarios:echo_client \\
        127.0.0.1 40001 '{"count": 500}'

``serve`` resolves a factory returning an :class:`RtServer` (or an ORB
to wrap in one), prints ``RT-READY <host> <port>`` once the socket
listens, and serves until killed.  ``client`` resolves a callable
``fn(host, port, payload) -> dict`` and prints its result as JSON.
:func:`spawn_server` / :func:`run_client` wrap both for tests,
benchmarks and examples.
"""

from __future__ import annotations

import importlib
import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

READY_PREFIX = "RT-READY"


def resolve(spec: str) -> Any:
    """Import ``package.module:attr`` and return the attribute."""
    module_name, _, attr = spec.partition(":")
    if not attr:
        raise ValueError(f"harness spec {spec!r} must look like module:attr")
    module = importlib.import_module(module_name)
    return getattr(module, attr)


def _as_server(factory: Any):
    """Call the factory; accept an RtServer or a bare ORB."""
    from repro.rt.server import RtServer

    produced = factory()
    if isinstance(produced, RtServer):
        return produced
    return RtServer(orb=produced)


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print(__doc__, file=sys.stderr)
        return 2
    mode = argv.pop(0)
    if mode == "serve":
        spec = argv.pop(0)
        host = argv.pop(0) if argv else "127.0.0.1"
        port = int(argv.pop(0)) if argv else 0
        server = _as_server(resolve(spec))
        server._host, server._port = host, port

        def on_ready(bound_host: str, bound_port: int) -> None:
            print(f"{READY_PREFIX} {bound_host} {bound_port}", flush=True)

        server.serve_forever(on_ready=on_ready)
        return 0
    if mode == "client":
        spec, host, port = argv.pop(0), argv.pop(0), int(argv.pop(0))
        payload = json.loads(argv.pop(0)) if argv else {}
        fn = resolve(spec)
        result = fn(host, port, payload)
        print(json.dumps(result, sort_keys=True), flush=True)
        return 0
    print(f"unknown harness mode {mode!r}", file=sys.stderr)
    return 2


# -- parent-side helpers ---------------------------------------------------


def _child_env() -> Dict[str, str]:
    """Environment for a child that can ``import repro``."""
    import repro

    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if src_dir not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            src_dir + (os.pathsep + existing if existing else "")
        )
    return env


class ServerProcess:
    """A serving child: spawned, awaited for readiness, then stopped."""

    def __init__(
        self, process: subprocess.Popen, address: Tuple[str, int]
    ) -> None:
        self.process = process
        self.address = address

    def stop(self, timeout: float = 5.0) -> None:
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
                self.process.kill()
                self.process.wait(timeout)

    def __enter__(self) -> "ServerProcess":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()


def spawn_server(
    spec: str, host: str = "127.0.0.1", port: int = 0, timeout: float = 20.0
) -> ServerProcess:
    """Start a harness server child; block until it prints readiness."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.rt.harness", "serve", spec, host, str(port)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=_child_env(),
    )
    line = process.stdout.readline()
    if not line.startswith(READY_PREFIX):
        process.terminate()
        stderr = process.stderr.read()
        raise RuntimeError(
            f"harness server never became ready (got {line!r}); stderr:\n{stderr}"
        )
    _, bound_host, bound_port = line.split()
    return ServerProcess(process, (bound_host, int(bound_port)))


def run_client(
    spec: str,
    host: str,
    port: int,
    payload: Optional[Dict[str, Any]] = None,
    timeout: float = 60.0,
) -> Dict[str, Any]:
    """Run a harness client child to completion; return its JSON result."""
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.rt.harness",
            "client",
            spec,
            host,
            str(port),
            json.dumps(payload or {}),
        ],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=_child_env(),
    )
    if completed.returncode != 0:
        raise RuntimeError(
            f"harness client failed ({completed.returncode}):\n{completed.stderr}"
        )
    return json.loads(completed.stdout.strip().splitlines()[-1])


if __name__ == "__main__":
    sys.exit(main())
