"""Length-prefixed framing for GIOP messages on a byte stream.

The repro's GIOP header is magic + version + message type — it carries
no body length, because netsim delivers whole messages.  TCP does not:
a reader sees arbitrary chunks.  Rather than change the GIOP header
(and with it every byte-identity guarantee the test suite asserts),
the real transport wraps each message in its own frame::

    b"MQRT" | uint32 big-endian payload length | payload

:class:`FrameDecoder` is the incremental half: feed it whatever the
socket produced — one byte at a time if the kernel is feeling cruel —
and it yields complete GIOP payloads as they close.
"""

from __future__ import annotations

import struct
from typing import List

from repro.perf.counters import COUNTERS

FRAME_MAGIC = b"MQRT"
_HEADER = struct.Struct(">4sI")
HEADER_SIZE = _HEADER.size
#: Upper bound on one frame's payload; a stream whose header claims
#: more is corrupt (or hostile) and the connection must die, not
#: buffer unboundedly.
MAX_FRAME = 64 * 1024 * 1024


class FramingError(Exception):
    """The byte stream is not valid MQRT framing."""


def encode_frame(payload: bytes) -> bytes:
    """One framed message, ready for a stream write."""
    if len(payload) > MAX_FRAME:
        raise FramingError(f"payload of {len(payload)} bytes exceeds MAX_FRAME")
    return _HEADER.pack(FRAME_MAGIC, len(payload)) + payload


class FrameDecoder:
    """Incremental header-then-body reassembly of framed messages.

    Stateful per connection: :meth:`feed` consumes one received chunk
    and returns every payload completed by it (zero or more).  Partial
    headers and partial bodies are buffered across calls.
    """

    __slots__ = ("_buffer", "_expected", "frames_decoded", "partial_feeds")

    def __init__(self) -> None:
        self._buffer = bytearray()
        #: Payload length announced by the current header, or None
        #: while the header itself is still incomplete.
        self._expected: int | None = None
        self.frames_decoded = 0
        #: Feeds that ended with an incomplete frame still buffered.
        self.partial_feeds = 0

    @property
    def pending(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> List[bytes]:
        """Consume one chunk; return the payloads it completed."""
        buffer = self._buffer
        buffer += chunk
        frames: List[bytes] = []
        while True:
            if self._expected is None:
                if len(buffer) < HEADER_SIZE:
                    break
                magic, length = _HEADER.unpack_from(buffer)
                if magic != FRAME_MAGIC:
                    raise FramingError(f"bad frame magic {bytes(magic)!r}")
                if length > MAX_FRAME:
                    raise FramingError(
                        f"frame of {length} bytes exceeds MAX_FRAME"
                    )
                self._expected = length
            end = HEADER_SIZE + self._expected
            if len(buffer) < end:
                break
            frames.append(bytes(buffer[HEADER_SIZE:end]))
            del buffer[:end]
            self._expected = None
            self.frames_decoded += 1
        if buffer:
            self.partial_feeds += 1
            COUNTERS.rt_partial_frames += 1
        return frames

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrameDecoder(pending={len(self._buffer)}, "
            f"decoded={self.frames_decoded})"
        )
