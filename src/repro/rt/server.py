"""RtServer: an ordinary ORB served over asyncio TCP on wall time.

The server half of the ORB was always substrate-free:
``ORB.handle_incoming(wire, at_time)`` never reads a clock — every
instant it uses flows in through ``at_time``.  So hosting it on real
sockets needs no ORB changes at all: each framed GIOP message that
arrives is handed to ``handle_incoming`` stamped with a
:class:`~repro.rt.clock.MonotonicClock` reading, and the scheduler,
QoS modules and POA run unchanged — deadlines, token buckets and
queue-depth admission all operating coherently on wall-clock seconds.

The wire contract (see :class:`repro.rt.transport.RtConnection`): the
server answers every frame, including oneway requests — their reply
frame is a transport-level acknowledgement the client discards — so
per-connection FIFO framing never desynchronises.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Optional, Tuple

from repro.orb.world import World
from repro.perf.counters import COUNTERS
from repro.rt.clock import MonotonicClock
from repro.rt.framing import FrameDecoder, FramingError, encode_frame


def make_rt_orb(host_name: str = "server"):
    """A standalone ORB suitable for real-transport serving.

    Built on a one-host :class:`~repro.orb.world.World` so every
    ORB facility (POA, QoS transport, scheduler install) works; the
    simulated network under it carries no traffic — the sockets do.
    The *logical* host name matters: it is what IORs minted by this
    ORB's POA carry, and what clients map to a real address.
    """
    world = World()
    world.add_host(host_name)
    return world.orb(host_name)


class RtServer:
    """Serve one ORB's objects over framed GIOP on asyncio TCP."""

    def __init__(
        self,
        orb: Any = None,
        host: str = "127.0.0.1",
        port: int = 0,
        clock: Optional[MonotonicClock] = None,
    ) -> None:
        self.orb = orb if orb is not None else make_rt_orb()
        self.clock = clock if clock is not None else MonotonicClock()
        # Reliability/backoff timers on this broker now tick in wall
        # seconds — the same QoS code, second substrate.
        self.orb.use_time_source(self.clock)
        self._host = host
        self._port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._conn_tasks: set = set()
        self.address: Optional[Tuple[str, int]] = None
        self.connections_served = 0

    # -- the connection loop ---------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_served += 1
        COUNTERS.rt_connections += 1
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        decoder = FrameDecoder()
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                COUNTERS.rt_bytes_in += len(chunk)
                try:
                    frames = decoder.feed(chunk)
                except FramingError:
                    break
                COUNTERS.rt_frames_in += len(frames)
                for wire in frames:
                    reply_wire, _ = self.orb.handle_incoming(
                        wire, self.clock.now()
                    )
                    frame = encode_frame(reply_wire)
                    writer.write(frame)
                    COUNTERS.rt_frames_out += 1
                    COUNTERS.rt_bytes_out += len(frame)
                if frames:
                    await writer.drain()
        except (ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            # stop() cancels live handlers; finish normally so asyncio's
            # stream done-callback doesn't log the cancellation.
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, RuntimeError):
                pass

    async def _start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    # -- threaded lifecycle (in-process tests and drivers) ----------------

    def start(self) -> Tuple[str, int]:
        """Run the server on a background event-loop thread.

        Returns the bound ``(host, port)`` once the socket listens.
        """
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="rt-server", daemon=True
        )
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(self._start(), self._loop)
        self.address = future.result(10.0)
        return self.address

    def stop(self) -> None:
        if self._loop is None:
            return

        async def _close() -> None:
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            # Drain live connection handlers before the loop dies, so
            # none is garbage-collected mid-await on a closed loop.
            tasks = list(self._conn_tasks)
            for pending in tasks:
                pending.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)

        asyncio.run_coroutine_threadsafe(_close(), self._loop).result(5.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._loop.close()
        self._loop = None
        self._thread = None

    def __enter__(self) -> "RtServer":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- blocking lifecycle (subprocess children) -------------------------

    def serve_forever(self, on_ready=None) -> None:
        """Run in the calling thread until cancelled (harness children).

        ``on_ready(host, port)`` fires once the socket listens —
        the process harness uses it to print the readiness line.
        """

        async def _main() -> None:
            address = await self._start()
            self.address = address
            if on_ready is not None:
                on_ready(*address)
            async with self._server:
                await self._server.serve_forever()

        asyncio.run(_main())
