"""The transport seam: how request bytes reach their destination.

:class:`Transport` is the narrow interface the ORB's client side binds
against; everything above it (modules, scheduler, mediators, AMI) is
substrate-free.  Two implementations:

- :class:`NetsimTransport` — the simulated binding path extracted
  verbatim from the old ``ORB.round_trip``/``one_way``: the netsim
  ``Network`` carries the bytes, the destination ORB is invoked
  in-process, and failures surface as the exact CORBA exceptions
  (with the same unexecuted markings) the reliability layer keys on.
- :class:`AsyncioTransport` — framed GIOP over real TCP sockets, used
  by :class:`repro.rt.client.RtClient` against a
  :class:`repro.rt.server.RtServer`.  It owns a background asyncio
  event loop so synchronous callers (and benchmarks) can drive it.

Failure-marking contract (shared by both): a failure on the *forward*
leg is marked unexecuted — the request never reached a live servant,
so a retry cannot duplicate an execution; reply-leg failures are
ambiguous and stay unmarked.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.netsim.network import HostCrashed, NoRoute, PacketLost
from repro.orb.exceptions import COMM_FAILURE, TRANSIENT, mark_unexecuted
from repro.perf.counters import COUNTERS
from repro.rt.framing import FrameDecoder, encode_frame


class Transport:
    """What the ORB needs from a wire: legs, peers, round trips."""

    def send_leg(
        self,
        dest_host: str,
        nbytes: int,
        reservations: Optional[Dict[int, float]] = None,
        forward: bool = True,
    ) -> float:
        """Carry ``nbytes`` one way; returns the transit delay."""
        raise NotImplementedError

    def peer(self, dest_host: str):
        """The entity that will process bytes sent to ``dest_host``."""
        raise NotImplementedError

    def round_trip(
        self,
        dest_host: str,
        wire: bytes,
        depart_time: float,
        reservations: Optional[Dict[int, float]] = None,
    ) -> Tuple[bytes, float]:
        """Full exchange; returns ``(reply_wire, finish_time)``."""
        raise NotImplementedError

    def one_way(self, dest_host: str, wire: bytes, depart_time: float) -> None:
        """Fire-and-forget delivery; failures swallowed but counted."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying resources (idempotent)."""


class NetsimTransport(Transport):
    """The simulated substrate, unchanged semantics behind the seam."""

    __slots__ = ("orb",)

    def __init__(self, orb: Any) -> None:
        self.orb = orb

    def send_leg(
        self,
        dest_host: str,
        nbytes: int,
        reservations: Optional[Dict[int, float]] = None,
        forward: bool = True,
    ) -> float:
        orb = self.orb
        src, dst = (
            (orb.host_name, dest_host) if forward else (dest_host, orb.host_name)
        )
        try:
            return orb.network.send(src, dst, nbytes, reservations)
        except HostCrashed as error:
            failure = COMM_FAILURE(str(error))
        except (NoRoute, PacketLost) as error:
            failure = TRANSIENT(str(error))
        raise (mark_unexecuted(failure) if forward else failure) from None

    def peer(self, dest_host: str) -> Any:
        try:
            return self.orb.world.orb_at(dest_host)
        except COMM_FAILURE as error:
            raise mark_unexecuted(error) from None

    def round_trip(
        self,
        dest_host: str,
        wire: bytes,
        depart_time: float,
        reservations: Optional[Dict[int, float]] = None,
    ) -> Tuple[bytes, float]:
        delay = self.send_leg(dest_host, len(wire), reservations)
        server = self.peer(dest_host)
        reply_wire, finish = server.handle_incoming(wire, depart_time + delay)
        back = self.send_leg(dest_host, len(reply_wire), reservations, forward=False)
        return reply_wire, finish + back

    def one_way(self, dest_host: str, wire: bytes, depart_time: float) -> None:
        try:
            delay = self.send_leg(dest_host, len(wire))
            server = self.peer(dest_host)
            server.handle_incoming(wire, depart_time + delay)
        except (COMM_FAILURE, TRANSIENT):
            self.orb.oneway_failures += 1


class RtConnection:
    """One framed-GIOP TCP connection, driven from synchronous code.

    The wire contract is strict request/reply alternation per frame:
    the server answers *every* frame — oneway requests get their reply
    frame back as a transport-level acknowledgement the client
    discards — so per-connection FIFO framing can never desynchronise.
    Pipelined windows write N frames back-to-back and then collect N
    replies; GIOP request ids do the correlation above this layer.
    """

    __slots__ = ("_transport", "_reader", "_writer", "_decoder", "_ready", "peername")

    def __init__(self, transport: "AsyncioTransport", reader, writer) -> None:
        self._transport = transport
        self._reader = reader
        self._writer = writer
        self._decoder = FrameDecoder()
        #: Frames received but not yet consumed (pipelining).
        self._ready: Deque[bytes] = deque()
        self.peername = writer.get_extra_info("peername")

    # -- synchronous surface ---------------------------------------------

    def round_trip(self, wire: bytes) -> bytes:
        """Send one frame, wait for its reply frame."""
        return self._transport.call(self._round_trip(wire))

    def round_trip_many(self, wires: List[bytes]) -> List[bytes]:
        """Send a window of frames back-to-back, then collect replies."""
        return self._transport.call(self._round_trip_many(wires))

    def timed_serial(self, wires: List[bytes]) -> Tuple[List[bytes], float]:
        """Strict request/reply loop timed entirely on the loop thread.

        Benchmarks use this so the per-call cost measured is sockets
        and the ORB, not cross-thread future wakeups.
        """
        return self._transport.call(self._timed(wires, pipelined=False))

    def timed_pipelined(self, wires: List[bytes]) -> Tuple[List[bytes], float]:
        """Windowed send-all-then-drain loop timed on the loop thread."""
        return self._transport.call(self._timed(wires, pipelined=True))

    def close(self) -> None:
        self._transport.call(self._close())

    # -- coroutines -------------------------------------------------------

    async def _send(self, wire: bytes) -> None:
        frame = encode_frame(wire)
        self._writer.write(frame)
        COUNTERS.rt_frames_out += 1
        COUNTERS.rt_bytes_out += len(frame)
        await self._writer.drain()

    async def _recv(self) -> bytes:
        while not self._ready:
            chunk = await self._reader.read(65536)
            if not chunk:
                raise COMM_FAILURE("connection closed by peer")
            COUNTERS.rt_bytes_in += len(chunk)
            frames = self._decoder.feed(chunk)
            COUNTERS.rt_frames_in += len(frames)
            self._ready.extend(frames)
        return self._ready.popleft()

    async def _round_trip(self, wire: bytes) -> bytes:
        try:
            await self._send(wire)
            return await self._recv()
        except (ConnectionError, OSError) as error:
            raise COMM_FAILURE(f"rt transport failed: {error}") from None

    async def _round_trip_many(self, wires: List[bytes]) -> List[bytes]:
        try:
            writer = self._writer
            nbytes = 0
            for wire in wires:
                frame = encode_frame(wire)
                writer.write(frame)
                nbytes += len(frame)
            COUNTERS.rt_frames_out += len(wires)
            COUNTERS.rt_bytes_out += nbytes
            await writer.drain()
            return [await self._recv() for _ in wires]
        except (ConnectionError, OSError) as error:
            raise COMM_FAILURE(f"rt transport failed: {error}") from None

    async def _timed(
        self, wires: List[bytes], pipelined: bool
    ) -> Tuple[List[bytes], float]:
        import time

        start = time.perf_counter()
        if pipelined:
            replies = await self._round_trip_many(wires)
        else:
            replies = []
            for wire in wires:
                replies.append(await self._round_trip(wire))
        return replies, time.perf_counter() - start

    async def _close(self) -> None:
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass


class AsyncioTransport:
    """Client-side connection factory over a background event loop.

    Owns one asyncio loop on a daemon thread; synchronous callers
    submit coroutines through :meth:`call`.  Connections are plain
    ``(reader, writer)`` stream pairs wrapped in :class:`RtConnection`.
    """

    def __init__(self) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="rt-transport", daemon=True
        )
        self._thread.start()
        self._closed = False

    def call(self, coro, timeout: Optional[float] = 30.0):
        """Run ``coro`` on the transport loop; return its result."""
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout)

    def connect(self, host: str, port: int, timeout: float = 10.0) -> RtConnection:
        """Open a framed-GIOP connection; connect failures are unexecuted."""
        try:
            reader, writer = self.call(
                asyncio.open_connection(host, port), timeout
            )
        except (ConnectionError, OSError) as error:
            raise mark_unexecuted(
                COMM_FAILURE(f"cannot connect to {host}:{port}: {error}")
            ) from None
        COUNTERS.rt_connections += 1
        return RtConnection(self, reader, writer)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        self._loop.close()

    def __enter__(self) -> "AsyncioTransport":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
