"""Netsim/real conformance: one ORB, two substrates, identical bytes.

Each :class:`~repro.rt.scenarios.Scenario` runs twice — once through
the simulated network (:class:`NetsimDriver`) and once over asyncio
TCP against in-process :class:`~repro.rt.server.RtServer` instances
(:class:`RtDriver`) — under an identical determinism discipline:
request-id allocator reset, GIOP/IOR cache reset, same servants, same
request script.  The runner then asserts:

- **Outcome records match exactly** — same replies, same exceptions
  (type, minor code, unexecuted marking), same admission and retry
  decisions.
- **Request bytes reaching each server match byte-for-byte** — every
  scenario, always: the client-side encode path (GIOP + module
  envelopes) is provably substrate-free.
- **Reply bytes match byte-for-byte** for deterministic scenarios;
  scenarios exercising the scheduler compare replies *canonically* —
  decoded and re-encoded with the timing-dependent retry-after hint
  values scrubbed, so the structure (which requests got hints, which
  got shed, every other byte) still must match exactly.
"""

from __future__ import annotations

import socket
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.orb import giop, ior as ior_mod
from repro.orb.exceptions import SystemException, is_unexecuted
from repro.orb.ior import IOR
from repro.orb.orb import ORB
from repro.orb.request import Request, command as make_command, reset_request_ids
from repro.orb.stub import Stub
from repro.orb.world import World
from repro.reliability.mediator import ReliabilityMediator
from repro.reliability.policy import ReliabilityPolicy
from repro.rt.client import ReliableInvoker, RtClient
from repro.rt.scenarios import Scenario
from repro.rt.server import RtServer, make_rt_orb
from repro.sched.scheduler import RETRY_AFTER_CONTEXT


def _record(op: str, fn: Callable[[], Any], hint: bool = False) -> dict:
    """One outcome record: value or exception, substrate-free fields only."""
    try:
        value = fn()
    except SystemException as error:
        return {
            "op": op,
            "ok": False,
            "error": type(error).__name__,
            "message": str(error),
            "minor": getattr(error, "minor", 0),
            "unexecuted": is_unexecuted(error),
            "retry_after_hint": getattr(error, "retry_after", None) is not None,
        }
    return {"op": op, "ok": True, "value": value, "retry_after_hint": hint}


def _reply_record(op: str, reply: giop.Reply) -> dict:
    """A record for an already-decoded reply (window replies)."""
    hint = bool(reply.service_contexts) and RETRY_AFTER_CONTEXT in (
        reply.service_contexts or {}
    )
    return _record(op, reply.value, hint)


class _CallStub(Stub):
    """A minimal stub exposing the mediator-interceptable entry point."""

    def call(self, operation: str, *args: Any) -> Any:
        return self._call(operation, *args)


class Driver:
    """What a scenario needs to drive requests, substrate-blind."""

    def invoke(self, request: Request) -> dict:
        raise NotImplementedError

    def window(self, requests: List[Request]) -> List[dict]:
        raise NotImplementedError

    def command(
        self, target: IOR, command_target: str, operation: str, *args: Any
    ) -> dict:
        raise NotImplementedError

    def assign(self, target: IOR, module_name: str) -> None:
        raise NotImplementedError

    def client_module(self, name: str) -> Any:
        raise NotImplementedError

    def reliable_call(
        self, target: IOR, operation: str, *args: Any, policy: ReliabilityPolicy
    ) -> dict:
        raise NotImplementedError

    def close(self) -> None:
        pass


class NetsimDriver(Driver):
    """The scenario over the simulated network, one world per run."""

    def __init__(self, scenario: Scenario) -> None:
        self.world = World()
        names = ["client"] + list(scenario.server_hosts) + list(scenario.dead_hosts)
        self.world.lan(names, latency=0.0005)
        self.orb = self.world.orb("client")
        #: host -> {"in": [request wires], "out": [reply wires]}.
        self.wires: Dict[str, Dict[str, List[bytes]]] = {}
        self._server_orbs: List[Tuple[ORB, Callable]] = []
        for host in scenario.server_hosts:
            server_orb = self.world.orb(host)
            tap = self._tap(host)
            server_orb.add_wire_observer(tap)
            self._server_orbs.append((server_orb, tap))

    def _tap(self, host: str):
        capture = self.wires.setdefault(host, {"in": [], "out": []})

        def observe(direction: str, wire: bytes) -> None:
            capture[direction].append(bytes(wire))

        return observe

    def orb_for(self, host: str) -> ORB:
        return self.world.orb(host)

    def invoke(self, request: Request) -> dict:
        return _record(request.operation, lambda: self.orb.invoke(request))

    def window(self, requests: List[Request]) -> List[dict]:
        futures = [self.orb.invoke_deferred(request) for request in requests]
        self.orb.ami.flush()
        records = []
        for request, future in zip(requests, futures):
            if future._reply is not None:
                records.append(_reply_record(request.operation, future._reply))
            else:
                error = future._error

                def raiser(error=error):
                    raise error

                records.append(_record(request.operation, raiser))
        return records

    def command(
        self, target: IOR, command_target: str, operation: str, *args: Any
    ) -> dict:
        request = make_command(target, command_target, operation, *args)
        return _record(f"cmd:{operation}", lambda: self.orb.invoke(request))

    def assign(self, target: IOR, module_name: str) -> None:
        self.orb.qos_transport.assign(target, module_name)

    def client_module(self, name: str) -> Any:
        return self.orb.qos_transport.require_module(name)

    def reliable_call(
        self, target: IOR, operation: str, *args: Any, policy: ReliabilityPolicy
    ) -> dict:
        stub = _CallStub(self.orb, target)
        mediator = ReliabilityMediator(policy)
        mediator.install(stub)
        record = _record(operation, lambda: stub.call(operation, *args))
        record["retries"] = mediator.retries_used
        return record

    def close(self) -> None:
        for server_orb, tap in self._server_orbs:
            server_orb.remove_wire_observer(tap)


def _dead_address() -> Tuple[str, int]:
    """A localhost port with nothing listening (connect must fail)."""
    probe = socket.socket()
    try:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()
    finally:
        probe.close()


class RtDriver(Driver):
    """The same scenario over asyncio TCP between real sockets."""

    def __init__(self, scenario: Scenario) -> None:
        self.servers: Dict[str, RtServer] = {
            host: RtServer(orb=make_rt_orb(host)) for host in scenario.server_hosts
        }
        self.wires: Dict[str, Dict[str, List[bytes]]] = {}
        for host, server in self.servers.items():
            server.orb.add_wire_observer(self._tap(host))
        addresses: Dict[str, Tuple[str, int]] = {}
        for host in scenario.dead_hosts:
            addresses[host] = _dead_address()
        self._addresses = addresses
        self.client: Optional[RtClient] = None

    def _tap(self, host: str):
        capture = self.wires.setdefault(host, {"in": [], "out": []})

        def observe(direction: str, wire: bytes) -> None:
            capture[direction].append(bytes(wire))

        return observe

    def orb_for(self, host: str) -> ORB:
        return self.servers[host].orb

    def start(self) -> None:
        """Bind the listeners and open the client (after scenario build)."""
        for host, server in self.servers.items():
            self._addresses[host] = server.start()
        self.client = RtClient(self._addresses)

    def invoke(self, request: Request) -> dict:
        return _record(request.operation, lambda: self.client.invoke(request))

    def window(self, requests: List[Request]) -> List[dict]:
        try:
            replies = self.client.invoke_window(requests)
        except SystemException as error:

            def raiser(error=error):
                raise error

            return [_record(r.operation, raiser) for r in requests]
        return [
            _reply_record(request.operation, reply)
            for request, reply in zip(requests, replies)
        ]

    def command(
        self, target: IOR, command_target: str, operation: str, *args: Any
    ) -> dict:
        return _record(
            f"cmd:{operation}",
            lambda: self.client.command(target, command_target, operation, *args),
        )

    def assign(self, target: IOR, module_name: str) -> None:
        self.client.assign(target, module_name)

    def client_module(self, name: str) -> Any:
        return self.client.module(name)

    def reliable_call(
        self, target: IOR, operation: str, *args: Any, policy: ReliabilityPolicy
    ) -> dict:
        invoker = ReliableInvoker(self.client, target, policy=policy)
        record = _record(operation, lambda: invoker.call(operation, *args))
        record["retries"] = invoker.retries_used
        return record

    def close(self) -> None:
        if self.client is not None:
            self.client.close()
        for server in self.servers.values():
            server.stop()


# -- running one scenario on one substrate --------------------------------


def _reset_determinism() -> None:
    """Identical starting state for both runs of a scenario."""
    reset_request_ids()
    giop.clear_caches()
    ior_mod.clear_caches()


def run_scenario_netsim(scenario: Scenario) -> Dict[str, Any]:
    _reset_determinism()
    driver = NetsimDriver(scenario)
    try:
        iors = scenario.build(driver.orb_for)
        records = scenario.drive(driver, iors)
        return {"records": records, "wires": driver.wires}
    finally:
        driver.close()


def run_scenario_rt(scenario: Scenario) -> Dict[str, Any]:
    _reset_determinism()
    driver = RtDriver(scenario)
    try:
        iors = scenario.build(driver.orb_for)
        driver.start()
        records = scenario.drive(driver, iors)
        return {"records": records, "wires": driver.wires}
    finally:
        driver.close()


# -- comparison ------------------------------------------------------------


def canonical_reply(wire: bytes) -> bytes:
    """Re-encode a reply with timing-dependent hint values scrubbed.

    The scheduler's retry-after hint is a number of seconds derived
    from its clock — wall seconds on one substrate, simulated on the
    other — so its *value* is the one legitimately substrate-dependent
    byte sequence on the wire.  Zeroing it (and only it) before
    comparison still pins down everything else: which replies carried
    a hint, every result, every exception, every id.
    """
    reply = giop.decode_reply(wire)
    contexts = {
        key: (0.0 if key == RETRY_AFTER_CONTEXT else value)
        for key, value in (reply.service_contexts or {}).items()
    }
    return giop.encode_reply(
        reply.request_id,
        reply.result,
        reply.exception,
        service_contexts=contexts or None,
    )


class ConformanceFailure(AssertionError):
    pass


def compare_runs(
    scenario: Scenario, netsim: Dict[str, Any], rt: Dict[str, Any]
) -> None:
    """Assert the two substrates agreed; raise with specifics if not."""
    if netsim["records"] != rt["records"]:
        raise ConformanceFailure(
            f"[{scenario.name}] outcome records diverge:\n"
            f"  netsim: {netsim['records']}\n"
            f"  rt:     {rt['records']}"
        )
    for host in scenario.server_hosts:
        sim_wires = netsim["wires"].get(host, {"in": [], "out": []})
        rt_wires = rt["wires"].get(host, {"in": [], "out": []})
        _compare_stream(scenario, host, "in", sim_wires["in"], rt_wires["in"])
        sim_out, rt_out = sim_wires["out"], rt_wires["out"]
        if not scenario.deterministic_replies:
            sim_out = [canonical_reply(wire) for wire in sim_out]
            rt_out = [canonical_reply(wire) for wire in rt_out]
        _compare_stream(scenario, host, "out", sim_out, rt_out)


def _compare_stream(
    scenario: Scenario,
    host: str,
    direction: str,
    sim: List[bytes],
    rt: List[bytes],
) -> None:
    if len(sim) != len(rt):
        raise ConformanceFailure(
            f"[{scenario.name}] {host}/{direction}: {len(sim)} messages on "
            f"netsim vs {len(rt)} on rt"
        )
    for index, (a, b) in enumerate(zip(sim, rt)):
        if a != b:
            diverge = next(
                (i for i, (x, y) in enumerate(zip(a, b)) if x != y),
                min(len(a), len(b)),
            )
            raise ConformanceFailure(
                f"[{scenario.name}] {host}/{direction} message {index}: bytes "
                f"diverge at offset {diverge} "
                f"(netsim {len(a)}B: ...{a[max(0, diverge - 8):diverge + 8]!r}, "
                f"rt {len(b)}B: ...{b[max(0, diverge - 8):diverge + 8]!r})"
            )


def run_conformance(scenario: Scenario) -> Dict[str, Any]:
    """Run ``scenario`` on both substrates and assert they agree.

    Returns the two runs (for further inspection by tests).
    """
    netsim = run_scenario_netsim(scenario)
    rt = run_scenario_rt(scenario)
    compare_runs(scenario, netsim, rt)
    return {"netsim": netsim, "rt": rt}
