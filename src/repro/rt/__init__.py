"""Real-transport backend: the same ORB over asyncio TCP.

The whole stack above the wire — GIOP/CDR, IORs, the POA, the QoS
transport and its modules, the request scheduler, the reliability
mediator — is substrate-free: it consumes and produces *bytes* and
*instants*.  This package supplies the second substrate the paper's
separation claim has never been tested against:

- :mod:`repro.rt.clock` — the :class:`Clock` protocol with a
  simulated (:class:`SimClock`) and a wall-clock
  (:class:`MonotonicClock`) implementation; everything that used to
  reach for ``EventKernel``'s clock goes through it.
- :mod:`repro.rt.framing` — length-prefixed frames for GIOP messages
  on a byte stream (GIOP headers carry no length), with an
  incremental decoder that tolerates arbitrary partial reads.
- :mod:`repro.rt.transport` — the transport seam: the
  :class:`Transport` interface, the :class:`NetsimTransport`
  extracted from the old ORB binding path, and the client-side
  :class:`AsyncioTransport` speaking framed GIOP over TCP.
- :mod:`repro.rt.server` / :mod:`repro.rt.client` — the asyncio
  event-loop runner hosting an ordinary ORB on wall-clock time, and
  the client that issues the *identical* request bytes over sockets.
- :mod:`repro.rt.harness` — spawn real server/client OS processes and
  collect their results.
- :mod:`repro.rt.scenarios` / :mod:`repro.rt.conformance` — recorded
  scenarios replayed on both substrates, asserting byte-identical
  wire traffic and equivalent QoS outcomes; netsim stays the
  deterministic oracle for the real thing.
"""

from repro.rt.clock import Clock, MonotonicClock, SimClock
from repro.rt.framing import FrameDecoder, FramingError, encode_frame

__all__ = [
    "Clock",
    "MonotonicClock",
    "SimClock",
    "FrameDecoder",
    "FramingError",
    "encode_frame",
]
