"""FluidCohort: N clients' background load as one fluid arrival process.

The separation-of-concerns move of the hybrid tier applied to
workloads: the objects *under study* keep their exact per-message
drivers (:mod:`repro.workloads.drivers`), while the surrounding
population — the "heavy traffic from millions of users" — is a
:class:`FluidCohort` that stands in for ``n_clients`` open-loop clients
without costing an event per message, or even an event per client.

Aggregation: the cohort's offered load is ``n_clients *
flowlets_per_client`` flowlets/second.  To bound kernel traffic, every
scheduled arrival represents ``batch`` clients' simultaneous bursts
merged into one fluid flow of ``batch × size`` bytes; ``batch`` is
chosen so at most ``max_flowlets`` events are scheduled regardless of
population.  Everything is seeded and the flowlet sizes are drawn at
fire time in deterministic kernel order, so identical seeds give
identical traces.
"""

from __future__ import annotations

from math import ceil
from typing import Dict, Optional, Sequence

from repro.netsim.fluid.flowlet import (
    DEFAULT_CLASSES,
    Flowlet,
    FlowletClass,
    FlowletGenerator,
)
from repro.netsim.fluid.tier import FluidFlowExecutor
from repro.workloads.generators import poisson_arrivals


class FluidCohort:
    """A population of background clients modelled as fluid flowlets."""

    def __init__(
        self,
        tier: FluidFlowExecutor,
        src: str,
        dst: str,
        n_clients: int,
        flowlets_per_client: float = 0.05,
        classes: Sequence[FlowletClass] = DEFAULT_CLASSES,
        seed: int = 0,
        max_flowlets: int = 100_000,
    ) -> None:
        if n_clients <= 0:
            raise ValueError(f"n_clients must be positive: {n_clients}")
        if flowlets_per_client <= 0.0:
            raise ValueError(
                f"flowlets_per_client must be positive: {flowlets_per_client}"
            )
        if max_flowlets <= 0:
            raise ValueError(f"max_flowlets must be positive: {max_flowlets}")
        self.tier = tier
        self.src = src
        self.dst = dst
        self.n_clients = n_clients
        self.flowlets_per_client = flowlets_per_client
        self.seed = seed
        self.max_flowlets = max_flowlets
        self._generator = FlowletGenerator(seed, classes)
        self.batch = 1
        self.scheduled = 0
        self.installed_duration = 0.0

    # -- scheduling ---------------------------------------------------

    def plan(self, duration: float) -> Dict[str, float]:
        """Aggregation plan for a run of ``duration`` seconds."""
        offered = self.n_clients * self.flowlets_per_client * duration
        batch = max(1, ceil(offered / self.max_flowlets))
        return {
            "offered_flowlets": offered,
            "batch": float(batch),
            "scheduled_arrivals": offered / batch,
            "aggregate_rate": (
                self.n_clients * self.flowlets_per_client / batch
            ),
        }

    def install(
        self,
        duration: float,
        start: float = 0.0,
        arrivals: Optional[Sequence[float]] = None,
    ) -> int:
        """Schedule the cohort's arrivals; returns events scheduled.

        Uses the kernel's bulk ``schedule_many`` fast path — for a cold
        kernel this is a single O(n) heapify, not n pushes.

        ``arrivals`` overrides the homogeneous-Poisson default with an
        externally shaped arrival process (a diurnal curve, a flash
        crowd) expressed relative to ``start``; each instant still fires
        one ``batch``-sized flowlet, so the aggregation plan is
        unchanged — only the pacing is.
        """
        plan = self.plan(duration)
        self.batch = int(plan["batch"])
        rate = plan["aggregate_rate"]
        base = self.tier.kernel.clock.now + start
        if arrivals is None:
            times = poisson_arrivals(rate, duration, seed=self.seed, start=base)
        else:
            times = [base + offset for offset in arrivals]
            if any(offset < 0.0 or offset > duration for offset in arrivals):
                raise ValueError(
                    "explicit cohort arrivals must lie in [0, duration]"
                )
        self.tier.kernel.schedule_many(times, self._fire, label="cohort")
        self.scheduled += len(times)
        self.installed_duration = duration
        return len(times)

    def _fire(self) -> None:
        flowlet = self._generator.sample(self.src, self.dst, clients=self.batch)
        self.tier.start(flowlet)

    # -- reporting ----------------------------------------------------

    def stats(self) -> Dict[str, float]:
        return {
            "n_clients": float(self.n_clients),
            "batch": float(self.batch),
            "scheduled_arrivals": float(self.scheduled),
            "flowlets_started": float(self.tier.flowlets_started),
            "flowlets_completed": float(self.tier.flowlets_completed),
            "bytes_completed": float(self.tier.bytes_completed),
            "active_peak": float(self.tier.active_peak),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FluidCohort({self.n_clients} clients {self.src}->{self.dst}, "
            f"batch={self.batch})"
        )
