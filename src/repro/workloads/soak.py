"""Deterministic multi-host soak scenario for the sharded kernel.

The scenario is written against the parallel kernel's handler API
(module-level functions taking ``(ctx, payload)``, see
:mod:`repro.netsim.parallel`), which makes it runnable unchanged on

- the sharded kernel, inline or process backend;
- the serial fallback; and
- *any* serial event kernel — including the frozen seed kernel the
  benchmarks compare against — through :class:`SerialScenarioDriver`.

Shape: ``clusters`` islands of ``hosts_per_cluster`` hosts, densely
meshed inside (low latency) and joined by a sparse ring of
higher-latency trunks.  The trunk latency is the lookahead the planner
finds.  Every host heartbeats (thin timer events that keep the heap
deep), ticks periodically, and each tick fires probes at random peers
— mostly cluster-local, sometimes across a trunk — which ack back.
All randomness is drawn from per-host streams seeded by ``(seed,
host)`` only, so the event set is identical no matter how hosts are
sharded.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.netsim.parallel.plan import LinkSpec, TopologySpec
from repro.netsim.parallel.shard import SerialScenarioDriver, ShardContext

__all__ = [
    "SerialScenarioDriver",
    "schedule_soak",
    "soak_config",
    "soak_topology",
    "zero_lookahead_topology",
]


# -- topologies --------------------------------------------------------


def soak_topology(
    clusters: int = 8,
    hosts_per_cluster: int = 8,
    intra_latency: float = 0.0005,
    inter_latency: float = 0.004,
    bandwidth_bps: float = 100e6,
) -> TopologySpec:
    """Clustered topology with a natural min-cut along the trunks."""
    if clusters < 1 or hosts_per_cluster < 1:
        raise ValueError("need at least one cluster and one host")
    if clusters > 99:
        raise ValueError("host naming supports at most 99 clusters")
    hosts: List[str] = []
    links: List[LinkSpec] = []
    gateways: List[str] = []
    for c in range(clusters):
        members = [f"c{c:02d}h{h:02d}" for h in range(hosts_per_cluster)]
        hosts.extend(members)
        gateways.append(members[0])
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                links.append(LinkSpec(a, b, intra_latency, bandwidth_bps))
    for c in range(1, clusters):
        links.append(
            LinkSpec(gateways[c - 1], gateways[c], inter_latency, bandwidth_bps)
        )
    if clusters > 2:
        links.append(
            LinkSpec(gateways[-1], gateways[0], inter_latency, bandwidth_bps)
        )
    return TopologySpec(hosts, links)


def zero_lookahead_topology(hosts: int = 8) -> TopologySpec:
    """A zero-latency full mesh: *every* cut has zero lookahead.

    A single zero-latency link elsewhere would not do — the planner
    avoids cutting heavy (tightly coupled) links, so only a topology
    where each possible cut contains one forces the serial fallback.
    """
    names = [f"c00h{h:02d}" for h in range(hosts)]
    links = [
        LinkSpec(a, b, 0.0)
        for i, a in enumerate(names)
        for b in names[i + 1:]
    ]
    return TopologySpec(names, links)


# -- configuration -----------------------------------------------------


def soak_config(
    topology: TopologySpec,
    duration: float = 1.0,
    period: float = 0.004,
    fanout: int = 2,
    remote_ratio: float = 0.3,
    nbytes: int = 2000,
    heartbeats: int = 0,
) -> Dict[str, Any]:
    """Plain-data scenario parameters shared by every host."""
    return {
        "peers": list(topology.hosts),
        "until": float(duration),
        "period": float(period),
        "fanout": int(fanout),
        "remote_ratio": float(remote_ratio),
        "nbytes": int(nbytes),
        "heartbeats": int(heartbeats),
    }


def schedule_soak(kernel: Any, cfg: Dict[str, Any]) -> None:
    """Seed the scenario onto anything with ``schedule_at(t, host, fn, p)``."""
    for host in cfg["peers"]:
        kernel.schedule_at(0.0, host, boot, cfg)


# -- handlers (module-level: spawn-safe) -------------------------------


def boot(ctx: ShardContext, cfg: Dict[str, Any]) -> None:
    """Per-host setup: stash config, start heartbeats and the tick loop."""
    state = ctx.state
    state["cfg"] = cfg
    state["ticks"] = 0
    state["probes"] = 0
    state["acks"] = 0
    state["beats"] = 0
    prefix = ctx.host[:3]
    state["local_peers"] = [
        p for p in cfg["peers"] if p.startswith(prefix) and p != ctx.host
    ]
    rng = ctx.rng()
    until = cfg["until"]
    for _ in range(cfg["heartbeats"]):
        ctx.schedule(rng.random() * until, ctx.host, heartbeat)
    ctx.schedule(rng.random() * cfg["period"], ctx.host, tick)


def heartbeat(ctx: ShardContext, payload: Any) -> None:
    """A thin timer: the bulk of the heap traffic in deep-soak runs."""
    ctx.state["beats"] += 1


def tick(ctx: ShardContext, payload: Any) -> None:
    state = ctx.state
    cfg = state["cfg"]
    state["ticks"] += 1
    rng = ctx.rng()
    peers = cfg["peers"]
    local = state["local_peers"]
    nbytes = cfg["nbytes"]
    for _ in range(cfg["fanout"]):
        if rng.random() < cfg["remote_ratio"]:
            dst = peers[rng.randrange(len(peers))]
        elif local:
            dst = local[rng.randrange(len(local))]
        else:
            dst = ctx.host
        if dst != ctx.host:
            ctx.send(dst, probe, ctx.host, nbytes=nbytes)
    now = ctx.now
    if now < cfg["until"]:
        ctx.schedule(
            cfg["period"] * (0.9 + 0.2 * rng.random()), ctx.host, tick
        )


def probe(ctx: ShardContext, src: str) -> None:
    ctx.state.setdefault("probes", 0)
    ctx.state["probes"] += 1
    ctx.send(src, ack, None, nbytes=64)


def ack(ctx: ShardContext, payload: Any) -> None:
    ctx.state.setdefault("acks", 0)
    ctx.state["acks"] += 1


# :class:`SerialScenarioDriver` (re-exported above) lives with the
# shard runtime in :mod:`repro.netsim.parallel.shard`; it is what runs
# this scenario on a plain serial kernel, including the frozen seed
# kernel the benchmarks compare against.
