"""Closed- and open-loop measurement drivers.

Two execution styles:

- **Closed loop** (:func:`run_closed_loop`): one logical client issuing
  sequential calls through the real stub/mediator path; the next call
  departs when the previous one finished.
- **Open loop** (:func:`open_loop_fanout`): requests depart at
  externally fixed arrival instants regardless of completions, so
  several are in flight at once and FIFO queues form at the servers.
  Synchronous stubs cannot express overlap, so the fan-out invoker
  drives :meth:`ORB.round_trip` with explicit departure times — the
  same time-explicit technique the multicast module uses for parallel
  group delivery.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.netsim.kernel import EventKernel
from repro.orb import giop
from repro.orb.exceptions import SystemException
from repro.orb.ior import IOR
from repro.orb.request import Request


class ClosedLoopResult:
    """Latency series from a sequential (closed-loop) run."""

    def __init__(self, latencies: List[float], failures: int, elapsed: float):
        self.latencies = latencies
        self.failures = failures
        self.elapsed = elapsed

    @property
    def count(self) -> int:
        return len(self.latencies)

    def mean(self) -> float:
        if not self.latencies:
            return float("nan")
        return sum(self.latencies) / len(self.latencies)

    def percentile(self, quantile: float) -> float:
        """The ``quantile`` (0..1] latency, nearest-rank convention."""
        if not self.latencies:
            return float("nan")
        ordered = sorted(self.latencies)
        index = max(0, min(len(ordered) - 1, int(quantile * len(ordered)) - 1))
        return ordered[index]

    def p50(self) -> float:
        return self.percentile(0.50)

    def p95(self) -> float:
        return self.percentile(0.95)

    def p99(self) -> float:
        return self.percentile(0.99)

    def max(self) -> float:
        return max(self.latencies) if self.latencies else float("nan")

    def throughput(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.count / self.elapsed

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "failures": float(self.failures),
            "mean": self.mean(),
            "p50": self.p50(),
            "p95": self.p95(),
            "p99": self.p99(),
            "max": self.max(),
            "throughput": self.throughput(),
        }


def run_closed_loop(
    clock: Any,
    call: Callable[[int], Any],
    count: int,
    swallow: tuple = (),
) -> ClosedLoopResult:
    """Issue ``count`` sequential calls; measure simulated latency each.

    ``call`` receives the call index.  Exceptions in ``swallow`` are
    counted as failures instead of propagating.
    """
    latencies: List[float] = []
    failures = 0
    started = clock.now
    for index in range(count):
        call_start = clock.now
        try:
            call(index)
            latencies.append(clock.now - call_start)
        except swallow:
            failures += 1
    return ClosedLoopResult(latencies, failures, clock.now - started)


class OpenLoopDriver:
    """Issue calls at externally fixed arrival instants via the kernel.

    Each arrival fires independently of previous completions — queueing
    at the servers shows up as latency, which is what the
    load-balancing experiment measures.
    """

    def __init__(self, kernel: EventKernel, call: Callable[[int], Any],
                 swallow: tuple = ()) -> None:
        self.kernel = kernel
        self.call = call
        self.swallow = swallow
        self.latencies: List[float] = []
        self.failures = 0
        self._index = 0

    def schedule(self, arrivals: Sequence[float]) -> "OpenLoopDriver":
        # Bulk merge: one heapify for a cold kernel instead of N pushes.
        self.kernel.schedule_many(arrivals, self._fire, label="arrival")
        return self

    def _fire(self) -> None:
        index = self._index
        self._index += 1
        started = self.kernel.clock.now
        try:
            self.call(index)
            self.latencies.append(self.kernel.clock.now - started)
        except self.swallow:
            self.failures += 1

    def run(self) -> ClosedLoopResult:
        """Drain the kernel and summarise."""
        started = self.kernel.clock.now
        self.kernel.run()
        return ClosedLoopResult(
            self.latencies, self.failures, self.kernel.clock.now - started
        )


class Arrival:
    """One open-loop request: when it departs and what it invokes.

    ``contexts`` travel as the request's service contexts (e.g. the
    scheduling class/binding tags); ``label`` is an opaque caller tag
    handed back through the ``observer`` of :func:`open_loop_fanout`
    for per-class bookkeeping.
    """

    __slots__ = ("time", "target", "operation", "args", "contexts", "label")

    def __init__(
        self,
        time: float,
        target: IOR,
        operation: str,
        args: Tuple[Any, ...] = (),
        contexts: Optional[Dict[str, Any]] = None,
        label: Optional[str] = None,
    ) -> None:
        self.time = time
        self.target = target
        self.operation = operation
        self.args = tuple(args)
        self.contexts = dict(contexts or {})
        self.label = label


def open_loop_fanout(
    orb: Any,
    arrivals: Sequence[Arrival],
    observer: Optional[Callable[[Arrival, Optional[float], Optional[Exception]], None]] = None,
    kernel: Optional[EventKernel] = None,
    router: Optional[Callable[[Arrival, float], IOR]] = None,
) -> ClosedLoopResult:
    """Issue every arrival at its own departure instant, in parallel.

    Requests overlap in simulated time: server FIFO queues build up
    whenever the offered load exceeds a host's service rate.  The
    global clock is advanced once, to the last completion.

    ``observer`` is called per arrival as ``observer(arrival, latency,
    exception)`` — latency is None exactly when the request failed —
    letting callers keep per-label series (the scheduler benchmark
    splits gold/bronze this way).

    ``kernel`` makes the fan-out **hybrid**: before each departure the
    kernel is drained up to that instant, so background machinery
    riding the event queue — fluid-tier flowlet starts/completions,
    fault schedules, capacity traces — interleaves with the foreground
    requests in simulated-time order and each request sees the link
    state (fluid demand, reservations) current at its departure.

    ``router`` resolves each arrival's target *at its departure
    instant* — ``router(arrival, depart)`` returns the IOR to invoke.
    This is how the control plane re-routes an open-loop fleet
    mid-run: membership published between two departures (autoscale,
    migration, drain) takes effect on the very next request, without
    rebuilding the arrival schedule.
    """
    if not arrivals:
        return ClosedLoopResult([], 0, 0.0)
    ordered = sorted(arrivals, key=lambda a: a.time)
    clock = orb.clock
    base = clock.now
    latencies: List[float] = []
    failures = 0
    last_finish = base
    for arrival in ordered:
        depart = base + arrival.time
        if kernel is not None:
            kernel.run_until(depart)
        target = router(arrival, depart) if router is not None else arrival.target
        request = Request(
            target,
            arrival.operation,
            arrival.args,
            service_contexts=arrival.contexts,
        )
        wire = giop.encode_request(request, pools=getattr(orb, "pools", None))
        depart += orb.marshal_cost(len(wire))
        try:
            reply_wire, finish = orb.round_trip(
                target.profile.host, wire, depart
            )
            finish += orb.marshal_cost(len(reply_wire))
            reply = giop.decode_reply(reply_wire)
            backpressure = getattr(orb, "backpressure", None)
            if backpressure is not None:
                backpressure.observe_reply(
                    target.profile.host, reply.service_contexts, finish
                )
            if reply.exception is not None:
                failures += 1
                if observer is not None:
                    observer(arrival, None, reply.exception)
            else:
                latency = finish - (base + arrival.time)
                latencies.append(latency)
                if observer is not None:
                    observer(arrival, latency, None)
            last_finish = max(last_finish, finish)
        except SystemException as error:
            failures += 1
            if observer is not None:
                observer(arrival, None, error)
    clock.advance_to(last_finish)
    return ClosedLoopResult(latencies, failures, last_finish - base)
