"""Workload generators and demo applications for the benchmarks."""

from repro.workloads.generators import (
    bursty_arrivals,
    compressible_text,
    market_ticks,
    poisson_arrivals,
    random_bytes,
    sensor_samples,
    uniform_arrivals,
)
from repro.workloads.apps import (
    ARCHIVE_QIDL,
    COMPUTE_QIDL,
    QUOTE_QIDL,
    archive_module,
    compute_module,
    make_archive_servant_class,
    make_compute_servant_class,
    make_quote_servant_class,
    quote_module,
)
from repro.workloads.drivers import (
    Arrival,
    ClosedLoopResult,
    OpenLoopDriver,
    open_loop_fanout,
    run_closed_loop,
)
from repro.workloads.fluid import FluidCohort

__all__ = [
    "ARCHIVE_QIDL",
    "Arrival",
    "COMPUTE_QIDL",
    "ClosedLoopResult",
    "FluidCohort",
    "OpenLoopDriver",
    "QUOTE_QIDL",
    "archive_module",
    "bursty_arrivals",
    "compressible_text",
    "compute_module",
    "make_archive_servant_class",
    "make_compute_servant_class",
    "make_quote_servant_class",
    "market_ticks",
    "open_loop_fanout",
    "poisson_arrivals",
    "quote_module",
    "random_bytes",
    "run_closed_loop",
    "sensor_samples",
    "uniform_arrivals",
]
