"""Demo applications woven against the registered characteristics.

Three services cover the workloads the paper's evaluation names:

- **Archive** — document store (compression, encryption, actuality);
- **QuoteFeed** — market data (actuality, compression);
- **Compute** — CPU-bound work (load balancing, fault tolerance).

The QIDL is compiled once at import; factories return servant classes
so each deployment gets fresh instances.
"""

from __future__ import annotations

from typing import Callable, List

import repro.qos as qos
from repro.workloads.generators import market_ticks

ARCHIVE_QIDL = """
interface Archive provides Compression, Encryption, Actuality {
    string fetch(in string path);
    void store(in string path, in string content);
    sequence<string> list_paths();
    long size();
};
"""

QUOTE_QIDL = """
interface QuoteFeed provides Actuality, Compression {
    double quote(in string symbol);
    sequence<double> history(in string symbol, in long points);
    void publish(in string symbol, in double price);
};
"""

COMPUTE_QIDL = """
interface Compute provides LoadBalancing, FaultTolerance {
    string transform(in string text);
    double busy_work(in long units);
    long completed();
};
"""

archive_module = qos.weave(ARCHIVE_QIDL, "maqs_app_archive")
quote_module = qos.weave(QUOTE_QIDL, "maqs_app_quotes")
compute_module = qos.weave(COMPUTE_QIDL, "maqs_app_compute")


def make_archive_servant_class() -> type:
    """A document store servant class (fresh per call)."""

    class ArchiveServant(archive_module.ArchiveServerBase):
        _default_service_time = 0.0005

        def __init__(self):
            super().__init__()
            self.files = {}

        def fetch(self, path):
            return self.files.get(path, "")

        def store(self, path, content):
            self.files[path] = content
            return None

        def list_paths(self):
            return sorted(self.files)

        def size(self):
            return len(self.files)

    return ArchiveServant


def make_quote_servant_class(seed: int = 0) -> type:
    """A market-data servant class with deterministic price series."""

    class QuoteServant(quote_module.QuoteFeedServerBase):
        _default_service_time = 0.0002

        def __init__(self):
            super().__init__()
            self._prices = {}
            self._seed = seed

        def quote(self, symbol):
            if symbol not in self._prices:
                self._prices[symbol] = market_ticks(symbol, 1, self._seed)[0]
            return self._prices[symbol]

        def history(self, symbol, points):
            return market_ticks(symbol, points, self._seed)

        def publish(self, symbol, price):
            self._prices[symbol] = price
            return None

    return QuoteServant


def make_compute_servant_class(
    unit_cost: float = 0.002,
) -> type:
    """A CPU-bound worker; ``busy_work(n)`` consumes ``n * unit_cost``
    seconds of simulated service time."""

    class ComputeServant(compute_module.ComputeServerBase):
        def __init__(self):
            super().__init__()
            self.done = 0

        def _service_time(self, operation, args):
            if operation == "busy_work":
                return max(0, args[0]) * unit_cost
            if operation == "transform":
                return len(args[0]) * 1e-6
            return 0.0

        def transform(self, text):
            self.done += 1
            return text.swapcase()

        def busy_work(self, units):
            self.done += 1
            return float(units)

        def completed(self):
            return self.done

        # Integration operations from the provided characteristics.
        def get_state(self):
            return {"done": self.done}

        def set_state(self, state):
            self.done = state["done"]

        def current_load(self):
            return self.done

    return ComputeServant
