"""Deterministic workload generators.

Arrival processes produce absolute arrival instants for open-loop
drivers; payload generators produce texts/blobs with controlled
compressibility.  Everything is seeded.
"""

from __future__ import annotations

import math
import random
from typing import List


def poisson_arrivals(
    rate: float, duration: float, seed: int = 0, start: float = 0.0
) -> List[float]:
    """Arrival times of a Poisson process with ``rate`` events/second."""
    if rate <= 0:
        raise ValueError(f"rate must be positive: {rate}")
    rng = random.Random(seed)
    times: List[float] = []
    now = start
    while True:
        now += rng.expovariate(rate)
        if now > start + duration:
            return times
        times.append(now)


def uniform_arrivals(
    rate: float, duration: float, start: float = 0.0
) -> List[float]:
    """Evenly spaced arrivals at ``rate`` events/second."""
    if rate <= 0:
        raise ValueError(f"rate must be positive: {rate}")
    interval = 1.0 / rate
    count = int(duration * rate)
    return [start + interval * (index + 1) for index in range(count)]


def thinned_arrivals(
    rate_fn,
    max_rate: float,
    duration: float,
    seed: int = 0,
    start: float = 0.0,
) -> List[float]:
    """Arrivals of a non-homogeneous Poisson process by thinning.

    ``rate_fn(tau)`` is the instantaneous rate at ``tau`` seconds into
    the window and must never exceed ``max_rate``.  This is the
    arrival API the scenario fleet's diurnal and flash-crowd curves
    emit through (see :mod:`repro.scenario.traffic`).
    """
    if max_rate <= 0:
        raise ValueError(f"max_rate must be positive: {max_rate}")
    if duration < 0:
        raise ValueError(f"duration must be non-negative: {duration}")
    rng = random.Random(seed)
    times: List[float] = []
    now = start
    end = start + duration
    while True:
        now += rng.expovariate(max_rate)
        if now > end:
            return times
        rate = rate_fn(now - start)
        if rate < 0:
            raise ValueError(f"rate_fn returned a negative rate: {rate}")
        if rate > max_rate * (1.0 + 1e-9):
            raise ValueError(
                f"rate_fn returned {rate} above the thinning bound {max_rate}"
            )
        if rng.random() * max_rate < rate:
            times.append(now)


def bursty_arrivals(
    burst_rate: float,
    idle_rate: float,
    period: float,
    duty: float,
    duration: float,
    seed: int = 0,
) -> List[float]:
    """On/off arrivals: ``burst_rate`` during the first ``duty`` fraction
    of every ``period``, ``idle_rate`` for the rest."""
    if not 0.0 < duty < 1.0:
        raise ValueError(f"duty must be in (0, 1): {duty}")
    times: List[float] = []
    cycle_start = 0.0
    seed_step = 0
    while cycle_start < duration:
        on_end = min(cycle_start + period * duty, duration)
        times.extend(
            poisson_arrivals(burst_rate, on_end - cycle_start, seed + seed_step,
                             start=cycle_start)
        )
        seed_step += 1
        off_end = min(cycle_start + period, duration)
        if idle_rate > 0 and off_end > on_end:
            times.extend(
                poisson_arrivals(idle_rate, off_end - on_end, seed + seed_step,
                                 start=on_end)
            )
        seed_step += 1
        cycle_start += period
    return sorted(times)


_WORDS = (
    "request reply broker object service quality latency bandwidth "
    "negotiate contract mediate skeleton replica encode decode channel"
).split()


def compressible_text(nbytes: int, seed: int = 0) -> str:
    """Natural-language-like text that LZ compresses well."""
    rng = random.Random(seed)
    parts: List[str] = []
    length = 0
    while length < nbytes:
        word = rng.choice(_WORDS)
        parts.append(word)
        length += len(word) + 1
    return " ".join(parts)[:nbytes]


def random_bytes(nbytes: int, seed: int = 0) -> bytes:
    """Incompressible noise."""
    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(nbytes))


def market_ticks(symbol: str, count: int, seed: int = 0,
                 start_price: float = 100.0) -> List[float]:
    """A random-walk price series for one symbol."""
    rng = random.Random(hash(symbol) % (2**31) ^ seed)
    price = start_price
    series = []
    for _ in range(count):
        price = max(0.01, price * (1.0 + rng.gauss(0.0, 0.004)))
        series.append(round(price, 4))
    return series


def sensor_samples(count: int, seed: int = 0) -> bytes:
    """Slowly varying byte samples (delta-codec friendly)."""
    rng = random.Random(seed)
    phase = rng.uniform(0, math.pi)
    return bytes(
        128 + int(12 * math.sin(index / 200.0 + phase)) for index in range(count)
    )
