"""XTEA block cipher in counter (CTR) mode.

XTEA (Needham & Wheeler, 1997) is a 64-bit block cipher with a 128-bit
key and 64 Feistel rounds.  CTR mode turns it into a stream cipher, so
payloads need no padding and ``encrypt == decrypt`` up to the keystream.
"""

from __future__ import annotations

import struct
from typing import Tuple

_MASK = 0xFFFFFFFF
_DELTA = 0x9E3779B9
_ROUNDS = 32  # 32 cycles = 64 Feistel rounds


def _key_schedule(key: bytes) -> Tuple[int, int, int, int]:
    if len(key) != 16:
        raise ValueError(f"XTEA requires a 16-byte key, got {len(key)}")
    return struct.unpack(">4I", key)


def _encrypt_block(v0: int, v1: int, k: Tuple[int, int, int, int]) -> Tuple[int, int]:
    total = 0
    for _ in range(_ROUNDS):
        v0 = (v0 + ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ (total + k[total & 3]))) & _MASK
        total = (total + _DELTA) & _MASK
        v1 = (
            v1 + ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ (total + k[(total >> 11) & 3]))
        ) & _MASK
    return v0, v1


def _keystream(key: bytes, nblocks: int, nonce: int) -> bytes:
    k = _key_schedule(key)
    out = bytearray()
    for counter in range(nblocks):
        v0 = (nonce >> 32) & _MASK
        v1 = (nonce ^ counter) & _MASK
        e0, e1 = _encrypt_block(v0, v1, k)
        out.extend(struct.pack(">2I", e0, e1))
    return bytes(out)


def _xor(data: bytes, stream: bytes) -> bytes:
    return bytes(a ^ b for a, b in zip(data, stream))


def encrypt(key: bytes, data: bytes, nonce: int = 0x4D415153) -> bytes:
    """Encrypt ``data`` under ``key`` (16 bytes) in CTR mode."""
    if not isinstance(data, (bytes, bytearray)):
        raise TypeError(f"expected bytes, got {type(data).__name__}")
    nblocks = (len(data) + 7) // 8
    return _xor(bytes(data), _keystream(key, nblocks, nonce))


def decrypt(key: bytes, data: bytes, nonce: int = 0x4D415153) -> bytes:
    """CTR decryption is encryption with the same keystream."""
    return encrypt(key, data, nonce)
