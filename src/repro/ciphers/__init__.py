"""From-scratch ciphers and key exchange for the privacy characteristic.

Section 6 lists "privacy through encryption" among the evaluated QoS
characteristics, and Section 3.2 names "on the fly change of
encryption keys" as a QoS-to-QoS communication.  These primitives are
real, reversible implementations written for this reproduction —
**not** audited cryptography; they stand in for the era's DES/RC4 with
honest CPU-cost and choreography behaviour.

- :mod:`repro.ciphers.xtea` — the XTEA block cipher in CTR mode.
- :mod:`repro.ciphers.arc4` — an RC4-style stream cipher.
- :mod:`repro.ciphers.keyex` — finite-field Diffie-Hellman key
  agreement, driven over MAQS commands by the encryption mechanism.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.ciphers import arc4, xtea

#: name -> (encrypt, decrypt); both take (key: bytes, data: bytes).
Cipher = Tuple[Callable[[bytes, bytes], bytes], Callable[[bytes, bytes], bytes]]

CIPHERS: Dict[str, Cipher] = {
    "xtea-ctr": (xtea.encrypt, xtea.decrypt),
    "arc4": (arc4.encrypt, arc4.decrypt),
    "null": (lambda key, data: bytes(data), lambda key, data: bytes(data)),
}

#: Simulated CPU seconds per byte; block ciphers cost more than stream.
CPU_COST_PER_BYTE: Dict[str, float] = {
    "xtea-ctr": 80e-9,
    "arc4": 25e-9,
    "null": 0.0,
}


def get_cipher(name: str) -> Cipher:
    """Look up a cipher pair by name."""
    try:
        return CIPHERS[name]
    except KeyError:
        raise ValueError(
            f"unknown cipher {name!r}; available: {sorted(CIPHERS)}"
        ) from None


def cpu_cost(name: str, nbytes: int) -> float:
    """Simulated CPU seconds to de/encrypt ``nbytes`` with ``name``."""
    return CPU_COST_PER_BYTE.get(name, 0.0) * nbytes


__all__ = ["CIPHERS", "CPU_COST_PER_BYTE", "Cipher", "cpu_cost", "get_cipher"]
