"""An RC4-style stream cipher (alleged-RC4 / ARC4).

Key-scheduling plus PRGA as published in 1994.  Kept for era fidelity
— RC4 was the ubiquitous cheap stream cipher of CORBA-age systems.
"""

from __future__ import annotations


def _keystream(key: bytes, length: int) -> bytes:
    if not key:
        raise ValueError("ARC4 key must not be empty")
    # Key-scheduling algorithm.
    state = list(range(256))
    j = 0
    for i in range(256):
        j = (j + state[i] + key[i % len(key)]) & 0xFF
        state[i], state[j] = state[j], state[i]
    # Pseudo-random generation algorithm.
    out = bytearray(length)
    i = j = 0
    for index in range(length):
        i = (i + 1) & 0xFF
        j = (j + state[i]) & 0xFF
        state[i], state[j] = state[j], state[i]
        out[index] = state[(state[i] + state[j]) & 0xFF]
    return bytes(out)


def encrypt(key: bytes, data: bytes) -> bytes:
    """XOR ``data`` with the ARC4 keystream for ``key``."""
    if not isinstance(data, (bytes, bytearray)):
        raise TypeError(f"expected bytes, got {type(data).__name__}")
    stream = _keystream(key, len(data))
    return bytes(a ^ b for a, b in zip(bytes(data), stream))


def decrypt(key: bytes, data: bytes) -> bytes:
    """Stream-cipher decryption equals encryption."""
    return encrypt(key, data)
