"""Finite-field Diffie-Hellman key agreement.

The encryption characteristic performs its "QoS to QoS" key exchange
(Section 3.2) by sending the public values as MAQS commands.  The
group is the 1536-bit MODP group from RFC 3526 — real parameters, so
the agreement arithmetic is genuine even though the surrounding
ciphers are toys.
"""

from __future__ import annotations

import hashlib
import random
from typing import Tuple

# RFC 3526, group 5 (1536-bit MODP).
PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E08"
    "8A67CC74020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B"
    "302B0A6DF25F14374FE1356D6D51C245E485B576625E7EC6F44C42E9"
    "A637ED6B0BFF5CB6F406B7EDEE386BFB5A899FA5AE9F24117C4B1FE6"
    "49286651ECE45B3DC2007CB8A163BF0598DA48361C55D39A69163FA8"
    "FD24CF5F83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF",
    16,
)
GENERATOR = 2


class KeyExchange:
    """One endpoint of a Diffie-Hellman agreement.

    >>> alice, bob = KeyExchange(seed=1), KeyExchange(seed=2)
    >>> ka = alice.shared_key(bob.public_value)
    >>> kb = bob.shared_key(alice.public_value)
    >>> ka == kb
    True
    """

    def __init__(self, seed: int = 0) -> None:
        rng = random.Random(seed)
        self._secret = rng.randrange(2, PRIME - 2)
        self.public_value = pow(GENERATOR, self._secret, PRIME)

    def shared_key(self, peer_public: int, length: int = 16) -> bytes:
        """Derive a ``length``-byte session key from the peer's public value."""
        if not 2 <= peer_public <= PRIME - 2:
            raise ValueError("peer public value out of range")
        shared = pow(peer_public, self._secret, PRIME)
        digest = hashlib.sha256(
            shared.to_bytes((PRIME.bit_length() + 7) // 8, "big")
        ).digest()
        if length > len(digest):
            raise ValueError(f"cannot derive more than {len(digest)} bytes")
        return digest[:length]


def derive_pair(seed_a: int, seed_b: int, length: int = 16) -> Tuple[bytes, bytes]:
    """Run a full agreement between two seeded endpoints (test helper)."""
    a, b = KeyExchange(seed_a), KeyExchange(seed_b)
    return a.shared_key(b.public_value, length), b.shared_key(a.public_value, length)
