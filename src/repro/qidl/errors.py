"""QIDL compiler errors."""

from __future__ import annotations


class QIDLError(Exception):
    """Base of all QIDL toolchain errors."""


class QIDLSyntaxError(QIDLError):
    """Lexical or grammatical error, with source position."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class QIDLSemanticError(QIDLError):
    """A well-formed but meaningless specification (unknown type, duplicate
    name, QoS assigned at forbidden granularity, ...)."""
