"""QIDL abstract syntax tree.

Nodes are deliberately simple data holders; all semantic validation
lives in the parser and the code generator.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class Parameter:
    """One operation parameter with its direction."""

    __slots__ = ("direction", "idl_type", "name")

    def __init__(self, direction: str, idl_type: str, name: str) -> None:
        self.direction = direction  # "in" | "out" | "inout"
        self.idl_type = idl_type
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.direction} {self.idl_type} {self.name}"


class Operation:
    """An IDL operation, optionally with a QoS responsibility qualifier."""

    __slots__ = (
        "name",
        "result_type",
        "parameters",
        "raises",
        "oneway",
        "category",
        "idempotent",
    )

    def __init__(
        self,
        name: str,
        result_type: str,
        parameters: List[Parameter],
        raises: Optional[List[str]] = None,
        oneway: bool = False,
        category: str = "management",
        idempotent: bool = False,
    ) -> None:
        self.name = name
        self.result_type = result_type
        self.parameters = parameters
        self.raises = raises or []
        self.oneway = oneway
        #: Re-executing the operation yields the same state and result;
        #: the reliability layer may retry it after ambiguous failures.
        self.idempotent = idempotent
        #: One of "management", "peer" (QoS-to-QoS) or "integration"
        #: (QoS aspect integration) — the three QoS responsibilities of
        #: Section 3.2.  Plain interface operations keep the default.
        self.category = category

    @property
    def in_params(self) -> List[Parameter]:
        return [p for p in self.parameters if p.direction in ("in", "inout")]

    @property
    def out_params(self) -> List[Parameter]:
        return [p for p in self.parameters if p.direction in ("out", "inout")]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        params = ", ".join(repr(p) for p in self.parameters)
        return f"{self.result_type} {self.name}({params})"


class Attribute:
    """An IDL attribute (in a ``qos`` block: a QoS parameter)."""

    __slots__ = ("idl_type", "name", "readonly")

    def __init__(self, idl_type: str, name: str, readonly: bool = False) -> None:
        self.idl_type = idl_type
        self.name = name
        self.readonly = readonly


class StructDecl:
    __slots__ = ("name", "members")

    def __init__(self, name: str, members: List[Tuple[str, str]]) -> None:
        self.name = name
        self.members = members  # [(idl_type, name)]


class ExceptionDecl:
    __slots__ = ("name", "members")

    def __init__(self, name: str, members: List[Tuple[str, str]]) -> None:
        self.name = name
        self.members = members


class TypedefDecl:
    __slots__ = ("name", "aliased")

    def __init__(self, name: str, aliased: str) -> None:
        self.name = name
        self.aliased = aliased


class ConstDecl:
    """A named compile-time constant."""

    __slots__ = ("name", "idl_type", "value")

    def __init__(self, name: str, idl_type: str, value: object) -> None:
        self.name = name
        self.idl_type = idl_type
        self.value = value


class EnumDecl:
    """An enumeration; values travel as their member names (strings)."""

    __slots__ = ("name", "members")

    def __init__(self, name: str, members: List[str]) -> None:
        self.name = name
        self.members = members


class QoSDecl:
    """A ``qos`` declaration: parameters plus responsibility operations."""

    __slots__ = ("name", "base", "attributes", "operations")

    def __init__(
        self,
        name: str,
        base: Optional[str],
        attributes: List[Attribute],
        operations: List[Operation],
    ) -> None:
        self.name = name
        self.base = base
        self.attributes = attributes
        self.operations = operations


class InterfaceDecl:
    """An interface, optionally providing QoS characteristics."""

    __slots__ = ("name", "bases", "provides", "attributes", "operations")

    def __init__(
        self,
        name: str,
        bases: List[str],
        provides: List[str],
        attributes: List[Attribute],
        operations: List[Operation],
    ) -> None:
        self.name = name
        self.bases = bases
        self.provides = provides
        self.attributes = attributes
        self.operations = operations


class ModuleDecl:
    __slots__ = ("name", "definitions")

    def __init__(self, name: str, definitions: List[object]) -> None:
        self.name = name
        self.definitions = definitions


class Specification:
    """A whole QIDL compilation unit."""

    __slots__ = ("definitions",)

    def __init__(self, definitions: List[object]) -> None:
        self.definitions = definitions

    def _walk(self, node_type: type, definitions: Optional[List[object]] = None):
        nodes = self.definitions if definitions is None else definitions
        for node in nodes:
            if isinstance(node, node_type):
                yield node
            if isinstance(node, ModuleDecl):
                yield from self._walk(node_type, node.definitions)

    def interfaces(self) -> List[InterfaceDecl]:
        return list(self._walk(InterfaceDecl))

    def qos_decls(self) -> List[QoSDecl]:
        return list(self._walk(QoSDecl))

    def structs(self) -> List[StructDecl]:
        return list(self._walk(StructDecl))

    def exceptions(self) -> List[ExceptionDecl]:
        return list(self._walk(ExceptionDecl))

    def typedefs(self) -> List[TypedefDecl]:
        return list(self._walk(TypedefDecl))

    def enums(self) -> List[EnumDecl]:
        return list(self._walk(EnumDecl))

    def consts(self) -> List[ConstDecl]:
        return list(self._walk(ConstDecl))
