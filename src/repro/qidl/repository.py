"""Interface repository: runtime-queryable QIDL metadata.

CORBA ORBs expose compiled IDL through an Interface Repository so
dynamic clients (DII users, bridges, tooling) can discover signatures
at runtime.  The MAQS reproduction does the same for QIDL: every
compiled specification registers its interfaces *and its QoS
declarations* here, so tools can ask which characteristics an
interface provides and what a characteristic's operations and
responsibility categories are — the metadata backbone of the paper's
reflection story.

Generated modules register themselves on import; look items up through
:data:`GLOBAL_REPOSITORY` or
``orb.resolve_initial_references("InterfaceRepository")``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class RepositoryError(KeyError):
    """Lookup failed: unknown interface, characteristic or operation."""


class InterfaceRepository:
    """Registry of interface and QoS metadata from compiled QIDL."""

    def __init__(self) -> None:
        self._interfaces: Dict[str, Dict[str, Any]] = {}
        self._qos: Dict[str, Dict[str, Any]] = {}

    # -- registration (called by generated modules) ----------------------

    def register(self, metadata: Dict[str, Any]) -> None:
        """Merge one compiled specification's metadata.

        Re-registering the same names overwrites — recompiling a spec
        updates the repository, matching module-reload semantics.
        """
        for name, entry in metadata.get("interfaces", {}).items():
            self._interfaces[name] = entry
        for name, entry in metadata.get("qos", {}).items():
            self._qos[name] = entry

    # -- lookup -----------------------------------------------------------

    def interfaces(self) -> List[str]:
        return sorted(self._interfaces)

    def qos_characteristics(self) -> List[str]:
        return sorted(self._qos)

    def describe_interface(self, name: str) -> Dict[str, Any]:
        try:
            return dict(self._interfaces[name])
        except KeyError:
            raise RepositoryError(
                f"unknown interface {name!r}; registered: {self.interfaces()}"
            ) from None

    def describe_qos(self, name: str) -> Dict[str, Any]:
        try:
            return dict(self._qos[name])
        except KeyError:
            raise RepositoryError(
                f"unknown QoS characteristic {name!r}; "
                f"registered: {self.qos_characteristics()}"
            ) from None

    def provides(self, interface: str) -> List[str]:
        """Characteristics an interface declares via ``provides``."""
        return list(self.describe_interface(interface)["provides"])

    def lookup_operation(
        self, owner: str, operation: str
    ) -> Dict[str, Any]:
        """Signature of an operation on an interface or characteristic.

        For interfaces, QoS operations of provided characteristics are
        found too (a QoS-enabled server "accepts potentially all
        assigned QoS operations").
        """
        if owner in self._interfaces:
            entry = self._interfaces[owner]
            if operation in entry["operations"]:
                return dict(entry["operations"][operation])
            for characteristic in entry["provides"]:
                qos_entry = self._qos.get(characteristic, {})
                if operation in qos_entry.get("operations", {}):
                    found = dict(qos_entry["operations"][operation])
                    found["owner"] = characteristic
                    return found
            raise RepositoryError(
                f"interface {owner!r} has no operation {operation!r}"
            )
        if owner in self._qos:
            entry = self._qos[owner]
            if operation in entry["operations"]:
                return dict(entry["operations"][operation])
            raise RepositoryError(
                f"characteristic {owner!r} has no operation {operation!r}"
            )
        raise RepositoryError(f"unknown interface or characteristic {owner!r}")

    def operations(self, owner: str) -> List[str]:
        if owner in self._interfaces:
            return sorted(self._interfaces[owner]["operations"])
        if owner in self._qos:
            return sorted(self._qos[owner]["operations"])
        raise RepositoryError(f"unknown interface or characteristic {owner!r}")


#: The process-wide repository generated modules register into.
GLOBAL_REPOSITORY = InterfaceRepository()
