"""QIDL compiler front door.

Compile QIDL source text to Python source, or straight to an imported
module object ready to use:

>>> from repro.qidl import compile_qidl
>>> generated = compile_qidl('''
...     qos Tracing {
...         attribute boolean enabled;
...     };
...     interface Echo provides Tracing {
...         string echo(in string text);
...     };
... ''')
>>> generated.EchoStub.PROVIDES
('Tracing',)
"""

from __future__ import annotations

import hashlib
import sys
import types
from typing import Optional

from repro.qidl.codegen import generate
from repro.qidl.parser import parse


def compile_qidl_to_source(source: str) -> str:
    """QIDL text → generated Python source text."""
    return generate(parse(source))


def compile_qidl(source: str, module_name: Optional[str] = None) -> types.ModuleType:
    """QIDL text → an importable module holding the generated classes.

    The module is registered in :data:`sys.modules` (needed for
    ``pickle``/``inspect`` friendliness of the generated classes).
    Repeated compilation of identical source under the same name
    returns the cached module.
    """
    python_source = compile_qidl_to_source(source)
    digest = hashlib.sha256(python_source.encode("utf-8")).hexdigest()[:12]
    name = module_name or f"maqs_generated_{digest}"
    cached = sys.modules.get(name)
    if cached is not None and getattr(cached, "__qidl_digest__", None) == digest:
        return cached
    module = types.ModuleType(name)
    module.__qidl_digest__ = digest
    module.__qidl_source__ = python_source
    code = compile(python_source, f"<qidl:{name}>", "exec")
    exec(code, module.__dict__)
    sys.modules[name] = module
    return module


def compile_qidl_file(path: str, module_name: Optional[str] = None) -> types.ModuleType:
    """Compile a ``.qidl`` file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return compile_qidl(handle.read(), module_name)
