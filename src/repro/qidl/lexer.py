"""QIDL lexical analysis.

Tokenises classic IDL plus the MAQS extensions (``qos``, ``provides``
and the QoS-responsibility qualifiers of Section 3.2).  Line comments
(``//``), block comments (``/* */``) and preprocessor lines (``#...``)
are skipped.
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Optional

from repro.qidl.errors import QIDLSyntaxError

KEYWORDS = frozenset(
    {
        "module",
        "interface",
        "qos",
        "provides",
        "attribute",
        "readonly",
        "oneway",
        "idempotent",
        "raises",
        "typedef",
        "struct",
        "enum",
        "const",
        "exception",
        "sequence",
        "in",
        "out",
        "inout",
        # primitive type keywords
        "void",
        "boolean",
        "octet",
        "short",
        "long",
        "unsigned",
        "float",
        "double",
        "string",
        "octets",
        "any",
        # QoS responsibility qualifiers (Section 3.2)
        "management",
        "peer",
        "integration",
    }
)

PUNCTUATION = frozenset("{}()<>,;:=")


class Token(NamedTuple):
    kind: str  # "keyword" | "identifier" | "punct" | "number" | "eof"
    value: str
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        return self.kind == "keyword" and self.value in names

    def is_punct(self, *chars: str) -> bool:
        return self.kind == "punct" and self.value in chars


def tokenize(source: str) -> List[Token]:
    """Turn QIDL source text into a token list ending with an EOF token."""
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    line = 1
    column = 1
    index = 0
    length = len(source)
    while index < length:
        char = source[index]
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char == "#":
            # Preprocessor-style line: skip to end of line.
            while index < length and source[index] != "\n":
                index += 1
            continue
        if source.startswith("//", index):
            while index < length and source[index] != "\n":
                index += 1
            continue
        if source.startswith("/*", index):
            end = source.find("*/", index + 2)
            if end < 0:
                raise QIDLSyntaxError("unterminated block comment", line, column)
            skipped = source[index : end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            index = end + 2
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            word = source[start:index]
            kind = "keyword" if word in KEYWORDS else "identifier"
            yield Token(kind, word, line, column)
            column += index - start
            continue
        if char.isdigit() or (
            char == "-" and index + 1 < length and source[index + 1].isdigit()
        ):
            start = index
            index += 1  # consume digit or sign
            while index < length and (source[index].isdigit() or source[index] == "."):
                index += 1
            yield Token("number", source[start:index], line, column)
            column += index - start
            continue
        if char == '"':
            start = index
            index += 1
            value_chars = []
            while index < length and source[index] != '"':
                if source[index] == "\n":
                    raise QIDLSyntaxError("unterminated string literal", line, column)
                if source[index] == "\\" and index + 1 < length:
                    index += 1
                value_chars.append(source[index])
                index += 1
            if index >= length:
                raise QIDLSyntaxError("unterminated string literal", line, column)
            index += 1  # closing quote
            yield Token("string", "".join(value_chars), line, column)
            column += index - start
            continue
        if char in PUNCTUATION:
            yield Token("punct", char, line, column)
            index += 1
            column += 1
            continue
        raise QIDLSyntaxError(f"unexpected character {char!r}", line, column)
    yield Token("eof", "", line, column)
