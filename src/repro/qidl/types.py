"""The IDL type system.

Types are referenced by canonical string names ("long", "string",
"sequence<double>", ...) both in the compiler and in the generated
signature tables, so the ORB runtime can validate values without
importing compiler internals.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

#: Canonical primitive type names and their Python acceptance predicates.
_INT_RANGES: Dict[str, Tuple[int, int]] = {
    "octet": (0, 2**8 - 1),
    "short": (-(2**15), 2**15 - 1),
    "unsigned short": (0, 2**16 - 1),
    "long": (-(2**31), 2**31 - 1),
    "unsigned long": (0, 2**32 - 1),
    "long long": (-(2**63), 2**63 - 1),
    "unsigned long long": (0, 2**64 - 1),
}

PRIMITIVES = (
    "void",
    "boolean",
    "octet",
    "short",
    "unsigned short",
    "long",
    "unsigned long",
    "long long",
    "unsigned long long",
    "float",
    "double",
    "string",
    "octets",
    "any",
)


def is_sequence_type(idl_type: str) -> bool:
    return idl_type.startswith("sequence<") and idl_type.endswith(">")


def element_type(idl_type: str) -> str:
    """Element type of a sequence type name."""
    if not is_sequence_type(idl_type):
        raise ValueError(f"not a sequence type: {idl_type!r}")
    return idl_type[len("sequence<") : -1].strip()


def is_known_type(idl_type: str) -> bool:
    """True for primitives and (recursively) sequences of known types."""
    if idl_type in PRIMITIVES:
        return True
    if is_sequence_type(idl_type):
        return is_known_type(element_type(idl_type))
    return False


def check_value(idl_type: str, value: Any) -> bool:
    """Does a Python value conform to the IDL type?

    Used by skeletons/stubs for argument and result validation.  The
    ``any`` type accepts whatever CDR can marshal; conformance of
    nested values is checked by the encoder itself.
    """
    if idl_type == "void":
        return value is None
    if idl_type == "boolean":
        return isinstance(value, bool)
    if idl_type in _INT_RANGES:
        if isinstance(value, bool) or not isinstance(value, int):
            return False
        low, high = _INT_RANGES[idl_type]
        return low <= value <= high
    if idl_type in ("float", "double"):
        return isinstance(value, float) or (
            isinstance(value, int) and not isinstance(value, bool)
        )
    if idl_type == "string":
        return isinstance(value, str)
    if idl_type == "octets":
        return isinstance(value, (bytes, bytearray))
    if idl_type == "any":
        return True
    if is_sequence_type(idl_type):
        if not isinstance(value, (list, tuple)):
            return False
        inner = element_type(idl_type)
        return all(check_value(inner, item) for item in value)
    # Unknown named types (structs from user IDL) pass through as maps.
    return isinstance(value, dict)


def default_value(idl_type: str) -> Any:
    """A zero value of the given type (used by generated attribute slots)."""
    if idl_type == "void":
        return None
    if idl_type == "boolean":
        return False
    if idl_type in _INT_RANGES:
        return 0
    if idl_type in ("float", "double"):
        return 0.0
    if idl_type == "string":
        return ""
    if idl_type == "octets":
        return b""
    if idl_type == "any":
        return None
    if is_sequence_type(idl_type):
        return []
    return {}
