"""QIDL — the Quality of Service Interface Definition Language.

Section 3.2: "we extend the interface definition language with QoS
specifications — the Quality of Service IDL, called QIDL — and provide
the aspect weaving through a distinct mapping to entities in the
target language."

The package contains the whole toolchain:

- :mod:`repro.qidl.lexer` / :mod:`repro.qidl.parser` /
  :mod:`repro.qidl.ast` — the language front end.  QIDL is classic IDL
  (modules, interfaces, operations, attributes, exceptions, typedefs)
  plus ``qos`` declarations and a ``provides`` clause assigning QoS
  characteristics to interfaces (interfaces only, per Section 3.2).
- :mod:`repro.qidl.types` — the IDL type system shared with the ORB
  runtime.
- :mod:`repro.qidl.codegen` — the Python language mapping.  This is
  the **aspect weaver**: it emits stubs with the mediator delegation
  hook, mediator skeletons per QoS characteristic, QoS skeletons with
  prolog/epilog, and the combined server base class of Figure 2.
- :mod:`repro.qidl.compiler` — one-call front door: source text in,
  importable Python module out.
"""

from repro.qidl.compiler import compile_qidl, compile_qidl_to_source
from repro.qidl.errors import QIDLError, QIDLSyntaxError, QIDLSemanticError

__all__ = [
    "QIDLError",
    "QIDLSemanticError",
    "QIDLSyntaxError",
    "compile_qidl",
    "compile_qidl_to_source",
]
