"""QIDL recursive-descent parser.

Grammar (EBNF-ish)::

    specification  = { definition } ;
    definition     = module | interface | qos | typedef | struct | exception ;
    module         = "module" ID "{" { definition } "}" ";" ;
    qos            = "qos" ID [ ":" ID ] "{" { attribute | operation } "}" ";" ;
    interface      = "interface" ID [ ":" ID { "," ID } ]
                     [ "provides" ID { "," ID } ]
                     "{" { attribute | operation } "}" ";" ;
    attribute      = [ "readonly" ] "attribute" type ID { "," ID } ";" ;
    operation      = [ category ] [ "oneway" | "idempotent" ]
                     type ID "(" [ params ] ")"
                     [ "raises" "(" ID { "," ID } ")" ] ";" ;
    category       = "management" | "peer" | "integration" ;
    params         = param { "," param } ;
    param          = ( "in" | "out" | "inout" ) type ID ;
    typedef        = "typedef" type ID ";" ;
    struct         = "struct" ID "{" { type ID ";" } "}" ";" ;
    exception      = "exception" ID "{" { type ID ";" } "}" ";" ;
    type           = primitive | "sequence" "<" type ">" | ID ;

Semantic checks performed here: duplicate names per scope, ``provides``
referring to declared ``qos`` blocks only (the paper's
interface-granularity rule: QoS cannot be assigned to operations or
parameters — the grammar offers no place to write it, and unknown
characteristics are rejected), known types, single inheritance for
qos declarations.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.qidl import ast
from repro.qidl.errors import QIDLSemanticError, QIDLSyntaxError
from repro.qidl.lexer import Token, tokenize
from repro.qidl.types import check_value, is_known_type

_CATEGORIES = ("management", "peer", "integration")

_PRIMITIVE_STARTERS = (
    "void",
    "boolean",
    "octet",
    "short",
    "long",
    "unsigned",
    "float",
    "double",
    "string",
    "octets",
    "any",
    "sequence",
)


class Parser:
    """One-shot parser over a token list."""

    def __init__(self, source: str) -> None:
        self._tokens = tokenize(source)
        self._index = 0
        #: user-declared type names (structs, typedefs) usable as types
        self._user_types: set = set()
        self._qos_names: set = set()

    # -- token plumbing ---------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        return self._tokens[min(self._index + ahead, len(self._tokens) - 1)]

    def _next(self) -> Token:
        token = self._peek()
        if token.kind != "eof":
            self._index += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None) -> QIDLSyntaxError:
        token = token or self._peek()
        return QIDLSyntaxError(message, token.line, token.column)

    def _expect_punct(self, char: str) -> Token:
        token = self._next()
        if not token.is_punct(char):
            raise self._error(f"expected {char!r}, found {token.value!r}", token)
        return token

    def _expect_keyword(self, *names: str) -> Token:
        token = self._next()
        if not token.is_keyword(*names):
            raise self._error(
                f"expected {' or '.join(names)}, found {token.value!r}", token
            )
        return token

    def _expect_identifier(self) -> str:
        token = self._next()
        if token.kind != "identifier":
            raise self._error(f"expected an identifier, found {token.value!r}", token)
        return token.value

    # -- entry point --------------------------------------------------------

    def parse(self) -> ast.Specification:
        definitions = self._definitions(top_level=True)
        token = self._peek()
        if token.kind != "eof":
            raise self._error(f"unexpected {token.value!r} after specification")
        return ast.Specification(definitions)

    def _definitions(self, top_level: bool) -> List[object]:
        definitions: List[object] = []
        seen_names: set = set()
        while True:
            token = self._peek()
            if token.kind == "eof" or token.is_punct("}"):
                return definitions
            if token.is_keyword("module"):
                node = self._module()
            elif token.is_keyword("interface"):
                node = self._interface()
            elif token.is_keyword("qos"):
                node = self._qos()
            elif token.is_keyword("typedef"):
                node = self._typedef()
            elif token.is_keyword("struct"):
                node = self._struct()
            elif token.is_keyword("enum"):
                node = self._enum()
            elif token.is_keyword("const"):
                node = self._const()
            elif token.is_keyword("exception"):
                node = self._exception()
            else:
                raise self._error(f"unexpected {token.value!r} at top level", token)
            name = node.name
            if name in seen_names:
                raise QIDLSemanticError(f"duplicate definition of {name!r}")
            seen_names.add(name)
            definitions.append(node)

    # -- declarations ---------------------------------------------------------

    def _module(self) -> ast.ModuleDecl:
        self._expect_keyword("module")
        name = self._expect_identifier()
        self._expect_punct("{")
        definitions = self._definitions(top_level=False)
        self._expect_punct("}")
        self._optional_semicolon()
        return ast.ModuleDecl(name, definitions)

    def _qos(self) -> ast.QoSDecl:
        self._expect_keyword("qos")
        name = self._expect_identifier()
        base = None
        if self._peek().is_punct(":"):
            self._next()
            base = self._expect_identifier()
            if base not in self._qos_names:
                raise QIDLSemanticError(
                    f"qos {name!r} inherits unknown characteristic {base!r}"
                )
        self._expect_punct("{")
        attributes, operations = self._members(allow_category=True)
        self._expect_punct("}")
        self._optional_semicolon()
        self._qos_names.add(name)
        return ast.QoSDecl(name, base, attributes, operations)

    def _interface(self) -> ast.InterfaceDecl:
        self._expect_keyword("interface")
        name = self._expect_identifier()
        bases: List[str] = []
        provides: List[str] = []
        if self._peek().is_punct(":"):
            self._next()
            bases.append(self._expect_identifier())
            while self._peek().is_punct(","):
                self._next()
                bases.append(self._expect_identifier())
        if self._peek().is_keyword("provides"):
            self._next()
            provides.append(self._provided_qos(name))
            while self._peek().is_punct(","):
                self._next()
                provides.append(self._provided_qos(name))
        self._expect_punct("{")
        attributes, operations = self._members(allow_category=False)
        self._expect_punct("}")
        self._optional_semicolon()
        self._user_types.add(name)
        return ast.InterfaceDecl(name, bases, provides, attributes, operations)

    def _provided_qos(self, interface_name: str) -> str:
        qos_name = self._expect_identifier()
        if qos_name not in self._qos_names:
            raise QIDLSemanticError(
                f"interface {interface_name!r} provides unknown QoS "
                f"characteristic {qos_name!r} (QoS must be declared with "
                f"'qos' and can only be assigned to interfaces)"
            )
        return qos_name

    def _typedef(self) -> ast.TypedefDecl:
        self._expect_keyword("typedef")
        aliased = self._type()
        name = self._expect_identifier()
        self._expect_punct(";")
        self._user_types.add(name)
        return ast.TypedefDecl(name, aliased)

    def _struct(self) -> ast.StructDecl:
        self._expect_keyword("struct")
        name = self._expect_identifier()
        members = self._member_block()
        self._user_types.add(name)
        return ast.StructDecl(name, members)

    def _const(self) -> ast.ConstDecl:
        self._expect_keyword("const")
        idl_type = self._type()
        name = self._expect_identifier()
        self._expect_punct("=")
        value = self._literal(idl_type)
        self._expect_punct(";")
        if not check_value(idl_type, value):
            raise QIDLSemanticError(
                f"const {name!r}: value {value!r} does not conform to "
                f"{idl_type!r}"
            )
        return ast.ConstDecl(name, idl_type, value)

    def _literal(self, idl_type: str) -> object:
        token = self._next()
        if token.kind == "number":
            if "." in token.value or idl_type in ("float", "double"):
                return float(token.value)
            return int(token.value)
        if token.kind == "string":
            return token.value
        if token.kind == "identifier" and token.value in ("TRUE", "FALSE"):
            return token.value == "TRUE"
        raise self._error(f"expected a literal, found {token.value!r}", token)

    def _enum(self) -> ast.EnumDecl:
        self._expect_keyword("enum")
        name = self._expect_identifier()
        self._expect_punct("{")
        members = [self._expect_identifier()]
        while self._peek().is_punct(","):
            self._next()
            member = self._expect_identifier()
            if member in members:
                raise QIDLSemanticError(f"duplicate enum member {member!r}")
            members.append(member)
        self._expect_punct("}")
        self._optional_semicolon()
        self._user_types.add(name)
        return ast.EnumDecl(name, members)

    def _exception(self) -> ast.ExceptionDecl:
        self._expect_keyword("exception")
        name = self._expect_identifier()
        members = self._member_block()
        return ast.ExceptionDecl(name, members)

    def _member_block(self) -> List[Tuple[str, str]]:
        self._expect_punct("{")
        members: List[Tuple[str, str]] = []
        seen: set = set()
        while not self._peek().is_punct("}"):
            idl_type = self._type()
            member_name = self._expect_identifier()
            if member_name in seen:
                raise QIDLSemanticError(f"duplicate member {member_name!r}")
            seen.add(member_name)
            members.append((idl_type, member_name))
            self._expect_punct(";")
        self._expect_punct("}")
        self._optional_semicolon()
        return members

    # -- interface / qos bodies --------------------------------------------

    def _members(
        self, allow_category: bool
    ) -> Tuple[List[ast.Attribute], List[ast.Operation]]:
        attributes: List[ast.Attribute] = []
        operations: List[ast.Operation] = []
        seen: set = set()
        while not self._peek().is_punct("}"):
            token = self._peek()
            if token.is_keyword("readonly", "attribute"):
                for attribute in self._attribute():
                    if attribute.name in seen:
                        raise QIDLSemanticError(
                            f"duplicate member {attribute.name!r}"
                        )
                    seen.add(attribute.name)
                    attributes.append(attribute)
            else:
                operation = self._operation(allow_category)
                if operation.name in seen:
                    raise QIDLSemanticError(f"duplicate member {operation.name!r}")
                seen.add(operation.name)
                operations.append(operation)
        return attributes, operations

    def _attribute(self) -> List[ast.Attribute]:
        readonly = False
        if self._peek().is_keyword("readonly"):
            self._next()
            readonly = True
        self._expect_keyword("attribute")
        idl_type = self._type()
        names = [self._expect_identifier()]
        while self._peek().is_punct(","):
            self._next()
            names.append(self._expect_identifier())
        self._expect_punct(";")
        return [ast.Attribute(idl_type, name, readonly) for name in names]

    def _operation(self, allow_category: bool) -> ast.Operation:
        category = "management"
        if self._peek().is_keyword(*_CATEGORIES):
            token = self._next()
            if not allow_category:
                raise QIDLSemanticError(
                    f"responsibility qualifier {token.value!r} is only "
                    f"allowed inside qos declarations"
                )
            category = token.value
        oneway = False
        idempotent = False
        if self._peek().is_keyword("oneway"):
            self._next()
            oneway = True
        elif self._peek().is_keyword("idempotent"):
            self._next()
            idempotent = True
        result_type = self._type()
        name = self._expect_identifier()
        self._expect_punct("(")
        parameters: List[ast.Parameter] = []
        seen: set = set()
        while not self._peek().is_punct(")"):
            if parameters:
                self._expect_punct(",")
            direction_token = self._expect_keyword("in", "out", "inout")
            idl_type = self._type()
            param_name = self._expect_identifier()
            if param_name in seen:
                raise QIDLSemanticError(f"duplicate parameter {param_name!r}")
            seen.add(param_name)
            parameters.append(
                ast.Parameter(direction_token.value, idl_type, param_name)
            )
        self._expect_punct(")")
        raises: List[str] = []
        if self._peek().is_keyword("raises"):
            self._next()
            self._expect_punct("(")
            raises.append(self._expect_identifier())
            while self._peek().is_punct(","):
                self._next()
                raises.append(self._expect_identifier())
            self._expect_punct(")")
        self._expect_punct(";")
        if oneway and (
            result_type != "void" or any(p.direction != "in" for p in parameters)
        ):
            raise QIDLSemanticError(
                f"oneway operation {name!r} must return void with in-params only"
            )
        return ast.Operation(
            name, result_type, parameters, raises, oneway, category, idempotent
        )

    # -- types -------------------------------------------------------------

    def _type(self) -> str:
        token = self._peek()
        if token.is_keyword("sequence"):
            self._next()
            self._expect_punct("<")
            inner = self._type()
            self._expect_punct(">")
            return f"sequence<{inner}>"
        if token.is_keyword("unsigned"):
            self._next()
            width = self._expect_keyword("short", "long")
            if width.value == "long" and self._peek().is_keyword("long"):
                self._next()
                return "unsigned long long"
            return f"unsigned {width.value}"
        if token.is_keyword("long"):
            self._next()
            if self._peek().is_keyword("long"):
                self._next()
                return "long long"
            return "long"
        if token.is_keyword(*_PRIMITIVE_STARTERS):
            self._next()
            return token.value
        if token.kind == "identifier":
            self._next()
            if token.value not in self._user_types:
                raise QIDLSemanticError(f"unknown type {token.value!r}")
            return token.value
        raise self._error(f"expected a type, found {token.value!r}", token)

    def _optional_semicolon(self) -> None:
        if self._peek().is_punct(";"):
            self._next()


def parse(source: str) -> ast.Specification:
    """Parse QIDL source text into a specification AST."""
    return Parser(source).parse()
