"""Command-line QIDL compiler.

Usage::

    python -m repro.qidl [--with-characteristics] spec.qidl [out.py]

Compiles a QIDL file to Python source.  With no output path the
generated source is written to stdout.  ``--with-characteristics``
prepends the registered QoS characteristic declarations (what
:func:`repro.qos.weave` does), so ``provides FaultTolerance`` etc.
resolve.
"""

from __future__ import annotations

import argparse
import sys

from repro.qidl.compiler import compile_qidl_to_source
from repro.qidl.errors import QIDLError


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.qidl",
        description="Compile QIDL to Python (the MAQS aspect weaver).",
    )
    parser.add_argument("spec", help="QIDL source file")
    parser.add_argument(
        "output", nargs="?", help="output .py file (default: stdout)"
    )
    parser.add_argument(
        "--with-characteristics",
        action="store_true",
        help="prepend the registered QoS characteristic declarations",
    )
    args = parser.parse_args(argv)

    with open(args.spec, "r", encoding="utf-8") as handle:
        source = handle.read()
    if args.with_characteristics:
        from repro.qos import qidl_prelude

        source = qidl_prelude() + "\n\n" + source

    try:
        generated = compile_qidl_to_source(source)
    except QIDLError as error:
        print(f"qidl: {error}", file=sys.stderr)
        return 1

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(generated)
    else:
        sys.stdout.write(generated)
    return 0


if __name__ == "__main__":
    sys.exit(main())
