"""The shard-tier traffic program: ON/OFF sessions as handler events.

The same harpoon-style heavy-tailed sessions
(:mod:`repro.scenario.traffic`) expressed against the parallel
kernel's handler API, so a scenario spec with ``tier = "shard"`` runs
unchanged on the sharded kernel (any shard count, inline or process
backend), its serial fallback, or a plain event kernel through
:class:`~repro.netsim.parallel.shard.SerialScenarioDriver`.

Determinism across shard counts is the whole point, so the program
follows the two rules the sharded kernel imposes:

- **all randomness is drawn in ``boot``** from the per-host stream
  (seeded by ``(seed, host)`` only): the entire session plan — starts,
  sizes, servers — exists before the first probe fires, so the draw
  order cannot depend on how events from different hosts interleave;
- **flows are recorded on the source host** via ``ctx.record`` with
  shard-independent ids, and read back from the kernel's canonically
  sorted trace by :func:`repro.scenario.flowexport.flows_from_trace` —
  never from per-host state, which the process backend does not
  return.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.netsim.parallel.plan import LinkSpec, TopologySpec
from repro.netsim.parallel.shard import ShardContext
from repro.scenario.flowexport import TRACE_TAG
from repro.scenario.traffic import bounded_pareto

__all__ = ["shard_config", "schedule_traffic", "topology_from_spec"]

#: Ack payload size (bytes): a thin GIOP-reply-sized frame.
ACK_BYTES = 64


def topology_from_spec(spec: Any) -> TopologySpec:
    """The picklable topology of a spec (hosts, cohorts, clusters)."""
    hosts: List[str] = list(spec.host_names())
    links: List[LinkSpec] = [
        LinkSpec(link.a, link.b, link.latency, link.bandwidth_bps)
        for link in spec.links
    ]
    for cohort in spec.cohorts:
        links.extend(
            LinkSpec(client, cohort.gateway, cohort.latency, cohort.bandwidth_bps)
            for client in cohort.client_names()
        )
    if spec.clusters is not None:
        layout = spec.clusters
        gateways = []
        for c in range(layout.clusters):
            members = [
                f"c{c:02d}h{h:02d}" for h in range(layout.hosts_per_cluster)
            ]
            gateways.append(members[0])
            for i, a in enumerate(members):
                links.extend(
                    LinkSpec(a, b, layout.intra_latency, layout.bandwidth_bps)
                    for b in members[i + 1:]
                )
        for c in range(1, len(gateways)):
            links.append(
                LinkSpec(
                    gateways[c - 1], gateways[c],
                    layout.inter_latency, layout.bandwidth_bps,
                )
            )
        if len(gateways) > 2:
            links.append(
                LinkSpec(
                    gateways[-1], gateways[0],
                    layout.inter_latency, layout.bandwidth_bps,
                )
            )
    return TopologySpec(hosts, links)


def shard_config(spec: Any) -> Dict[str, Any]:
    """Plain-data (picklable) per-host parameters from a spec."""
    traffic = spec.traffic
    return {
        "servers": list(spec.group.hosts),
        "duration": float(spec.duration),
        "burst_rate": float(traffic.burst_rate),
        "on_alpha": float(traffic.on_alpha),
        "on_min": float(traffic.on_min),
        "on_max": float(traffic.on_max),
        "off_mu": float(traffic.off_mu),
        "off_sigma": float(traffic.off_sigma),
        "payload": int(traffic.payload),
        "klass": sorted(traffic.classes)[0],
    }


def schedule_traffic(kernel: Any, spec: Any) -> None:
    """Seed ``boot`` on every traffic source (pre-run, time zero)."""
    cfg = shard_config(spec)
    for host in spec.traffic.sources:
        kernel.schedule_at(0.0, host, boot, cfg)


# -- handlers (module-level: spawn-safe) --------------------------------


def boot(ctx: ShardContext, cfg: Dict[str, Any]) -> None:
    """Draw the host's whole session plan and schedule every request.

    Everything random happens here, from the per-host stream, before
    any cross-host event can interleave — the invariant that makes the
    trace identical at every shard count.
    """
    rng = ctx.rng()
    duration = cfg["duration"]
    gap = 1.0 / cfg["burst_rate"]
    servers = cfg["servers"]
    payload = cfg["payload"]
    state = ctx.state
    state["flows"] = {}
    now = rng.lognormvariate(cfg["off_mu"], cfg["off_sigma"])
    session = 0
    while now < duration:
        size = max(
            1,
            round(
                bounded_pareto(
                    rng.random(), cfg["on_alpha"], cfg["on_min"], cfg["on_max"]
                )
            ),
        )
        dst = servers[rng.randrange(len(servers))]
        requests = 0
        for index in range(size):
            at = now + index * gap
            if at >= duration:
                break
            requests += 1
        if requests:
            flow_id = f"{ctx.host}:{session:04d}"
            state["flows"][flow_id] = {
                "dst": dst,
                "klass": cfg["klass"],
                "start": now,
                "expected": requests,
                "acked": 0,
                "nbytes": requests * payload,
            }
            for index in range(requests):
                ctx.schedule(
                    now + index * gap,
                    ctx.host,
                    probe_send,
                    (flow_id, dst, payload),
                )
            session += 1
        now += size * gap
        now += rng.lognormvariate(cfg["off_mu"], cfg["off_sigma"])


def probe_send(ctx: ShardContext, payload: Any) -> None:
    """One request departs: ship it to the flow's server."""
    flow_id, dst, nbytes = payload
    ctx.send(dst, probe, (ctx.host, flow_id), nbytes=nbytes)


def probe(ctx: ShardContext, payload: Any) -> None:
    """Server side: count the request, ack back to the source."""
    src, flow_id = payload
    state = ctx.state
    state["served"] = state.get("served", 0) + 1
    ctx.send(src, ack, flow_id, nbytes=ACK_BYTES)


def ack(ctx: ShardContext, flow_id: str) -> None:
    """Source side: the flow completes on its final ack."""
    flow = ctx.state["flows"][flow_id]
    flow["acked"] += 1
    if flow["acked"] == flow["expected"]:
        ctx.record(
            TRACE_TAG,
            flow_id,
            flow["klass"],
            flow["dst"],
            flow["nbytes"],
            flow["start"],
            ctx.now,
            flow["expected"],
            0,  # drops: the shard tier models a loss-free fabric
            0,  # retries: no reliability layer below the ORB tier
        )
