"""Chaos campaigns: timed fault scripts, replayable by seed.

A :class:`Campaign` is an ordered list of :class:`ChaosEvent` actions
(crash, recover, partition, heal, loss) layered on
:class:`~repro.netsim.faults.FaultInjector`.  Spec files describe
either literal events or seeded *generators* (``crash_wave``,
``loss_ramp``) that expand deterministically, and every campaign has a
canonical line form whose SHA-256 digest is the replay oracle: same
spec + same seed -> same digest -> same injected fault sequence.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Campaign", "ChaosEvent", "ChaosError"]

#: Event kinds a campaign may contain after expansion.
KINDS = ("crash", "recover", "partition", "heal", "loss")


class ChaosError(ValueError):
    """A chaos script that cannot be what the author meant."""


@dataclass(frozen=True)
class ChaosEvent:
    """One timed fault action.  ``args`` is kind-specific and canonical."""

    at: float
    kind: str
    args: Tuple[Any, ...] = ()

    def canonical(self) -> str:
        return f"{self.at:.9f} {self.kind} {self.args!r}"


def _crash_wave(
    entry: Dict[str, Any], seed: int, index: int
) -> List[ChaosEvent]:
    """Expand a seeded wave of crash/recover pairs rolling over hosts."""
    hosts = list(entry["hosts"])
    start = float(entry["at"])
    interval = float(entry.get("interval", 0.05))
    downtime = float(entry.get("downtime", 0.04))
    waves = int(entry.get("waves", 1))
    if interval <= 0.0 or downtime <= 0.0:
        raise ChaosError(
            f"chaos[{index}]: crash_wave interval/downtime must be positive "
            f"(got interval={interval}, downtime={downtime})"
        )
    rng = random.Random(f"{seed}:crash_wave:{index}")
    events: List[ChaosEvent] = []
    t = start
    for _wave in range(waves):
        order = list(hosts)
        rng.shuffle(order)
        for host in order:
            events.append(ChaosEvent(round(t, 9), "crash", (host,)))
            events.append(ChaosEvent(round(t + downtime, 9), "recover", (host,)))
            t += interval
    return events


def _loss_ramp(entry: Dict[str, Any], index: int) -> List[ChaosEvent]:
    """Expand a stepwise loss ramp on one link, ending healed."""
    link = tuple(entry["link"])
    start = float(entry["at"])
    steps = int(entry.get("steps", 4))
    step_every = float(entry.get("step_every", 0.1))
    max_rate = float(entry.get("max_rate", 0.2))
    if steps < 1 or step_every <= 0.0:
        raise ChaosError(
            f"chaos[{index}]: loss_ramp needs steps >= 1 and step_every > 0"
        )
    if not 0.0 < max_rate < 1.0:
        raise ChaosError(
            f"chaos[{index}]: loss_ramp max_rate must be in (0, 1): {max_rate}"
        )
    events = [
        ChaosEvent(
            round(start + step * step_every, 9),
            "loss",
            (link, round(max_rate * (step + 1) / steps, 9)),
        )
        for step in range(steps)
    ]
    events.append(
        ChaosEvent(round(start + steps * step_every, 9), "loss", (link, 0.0))
    )
    return events


class Campaign:
    """An expanded, validated, digestible fault script."""

    def __init__(self, events: Iterable[ChaosEvent], seed: int = 0) -> None:
        self.events: List[ChaosEvent] = sorted(
            events, key=lambda e: (e.at, KINDS.index(e.kind), e.args)
        )
        self.seed = seed

    # -- construction ----------------------------------------------------

    @classmethod
    def from_dicts(
        cls,
        entries: Sequence[Dict[str, Any]],
        seed: int = 0,
        hosts: Optional[Sequence[str]] = None,
        duration: Optional[float] = None,
    ) -> "Campaign":
        """Expand spec-file entries into a validated campaign.

        Literal kinds: ``crash``/``recover`` (``host``), ``partition``
        (``groups``), ``heal``, ``loss`` (``link``, ``rate``).  Seeded
        generators: ``crash_wave``, ``loss_ramp``.
        """
        events: List[ChaosEvent] = []
        for index, entry in enumerate(entries):
            kind = entry.get("kind")
            if kind is None:
                raise ChaosError(f"chaos[{index}]: missing 'kind'")
            if "at" not in entry:
                raise ChaosError(f"chaos[{index}] ({kind}): missing 'at'")
            at = float(entry["at"])
            if at < 0.0:
                raise ChaosError(
                    f"chaos[{index}] ({kind}): 'at' must be non-negative, got {at}"
                )
            if kind in ("crash", "recover"):
                if "host" not in entry:
                    raise ChaosError(f"chaos[{index}] ({kind}): missing 'host'")
                events.append(ChaosEvent(at, kind, (entry["host"],)))
            elif kind == "partition":
                groups = entry.get("groups")
                if not groups or not all(group for group in groups):
                    raise ChaosError(
                        f"chaos[{index}] (partition): needs non-empty 'groups' "
                        "(a list of host lists)"
                    )
                canonical = tuple(tuple(sorted(group)) for group in groups)
                events.append(ChaosEvent(at, "partition", canonical))
            elif kind == "heal":
                events.append(ChaosEvent(at, "heal", ()))
            elif kind == "loss":
                link = entry.get("link")
                if not link or len(link) != 2:
                    raise ChaosError(
                        f"chaos[{index}] (loss): 'link' must name two hosts"
                    )
                rate = float(entry.get("rate", 0.0))
                if not 0.0 <= rate < 1.0:
                    raise ChaosError(
                        f"chaos[{index}] (loss): rate must be in [0, 1): {rate}"
                    )
                events.append(ChaosEvent(at, "loss", (tuple(link), rate)))
            elif kind == "crash_wave":
                if not entry.get("hosts"):
                    raise ChaosError(
                        f"chaos[{index}] (crash_wave): needs non-empty 'hosts'"
                    )
                events.extend(_crash_wave(entry, seed, index))
            elif kind == "loss_ramp":
                if not entry.get("link") or len(entry["link"]) != 2:
                    raise ChaosError(
                        f"chaos[{index}] (loss_ramp): 'link' must name two hosts"
                    )
                events.extend(_loss_ramp(entry, index))
            else:
                raise ChaosError(
                    f"chaos[{index}]: unknown kind {kind!r}; expected one of "
                    f"{KINDS + ('crash_wave', 'loss_ramp')}"
                )
        campaign = cls(events, seed=seed)
        campaign.validate(hosts=hosts, duration=duration)
        return campaign

    # -- validation -------------------------------------------------------

    def validate(
        self,
        hosts: Optional[Sequence[str]] = None,
        duration: Optional[float] = None,
    ) -> None:
        """Reject scripts that cannot be what the author meant."""
        known = set(hosts) if hosts is not None else None
        partition_open: Optional[float] = None
        partitions_seen = 0
        down: Dict[str, float] = {}
        for event in self.events:
            if duration is not None and event.at > duration:
                raise ChaosError(
                    f"chaos event {event.canonical()!r} fires after the "
                    f"scenario ends at {duration}s"
                )
            if known is not None:
                for name in self._host_refs(event):
                    if name not in known:
                        raise ChaosError(
                            f"chaos event {event.canonical()!r} references "
                            f"unknown host {name!r} (known: {sorted(known)})"
                        )
            if event.kind == "partition":
                if partition_open is not None:
                    raise ChaosError(
                        f"overlapping chaos windows: partition at {event.at} "
                        f"starts while the partition from {partition_open} is "
                        "still open; heal it first"
                    )
                partition_open = event.at
                partitions_seen += 1
            elif event.kind == "heal":
                if partition_open is None:
                    raise ChaosError(
                        f"heal at {event.at} precedes every partition"
                        + (
                            ""
                            if not partitions_seen
                            else " still open at that instant"
                        )
                        + "; schedule the partition first"
                    )
                partition_open = None
            elif event.kind == "crash":
                host = event.args[0]
                if host in down:
                    raise ChaosError(
                        f"overlapping chaos windows: {host!r} crashes at "
                        f"{event.at} but is already down since {down[host]} "
                        "(no recover in between)"
                    )
                down[host] = event.at
            elif event.kind == "recover":
                host = event.args[0]
                if host not in down:
                    raise ChaosError(
                        f"recover of {host!r} at {event.at} precedes its crash"
                    )
                del down[host]
        if partition_open is not None:
            raise ChaosError(
                f"partition at {partition_open} is never healed; add a heal "
                "event (an unhealed partition outlives the scenario)"
            )

    @staticmethod
    def _host_refs(event: ChaosEvent) -> List[str]:
        if event.kind in ("crash", "recover"):
            return [event.args[0]]
        if event.kind == "partition":
            return [name for group in event.args for name in group]
        if event.kind == "loss":
            return list(event.args[0])
        return []

    # -- identity ---------------------------------------------------------

    def canonical_lines(self) -> List[str]:
        return [event.canonical() for event in self.events]

    def digest(self) -> str:
        """SHA-256 over the canonical script: the replay oracle."""
        blob = "\n".join(self.canonical_lines()).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def __len__(self) -> int:
        return len(self.events)

    # -- installation -------------------------------------------------------

    def install(self, injector: Any, network: Any) -> int:
        """Schedule every event on the injector's kernel; returns count."""
        for event in self.events:
            if event.kind == "crash":
                injector.crash_at(event.at, event.args[0])
            elif event.kind == "recover":
                injector.recover_at(event.at, event.args[0])
            elif event.kind == "partition":
                injector.partition_at(event.at, *[list(g) for g in event.args])
            elif event.kind == "heal":
                injector.heal_at(event.at)
            elif event.kind == "loss":
                (a, b), rate = event.args
                injector.set_loss_at(event.at, network.link_between(a, b), rate)
            else:  # pragma: no cover - guarded by from_dicts
                raise ChaosError(f"cannot install kind {event.kind!r}")
        return len(self.events)
