"""Flow-export-style per-flow telemetry (JSONL) for offline analysis.

Every scenario run emits one :class:`FlowRecord` per logical flow —
an open-loop request, a transaction, or an ON burst on the sharded
kernel — in a canonical JSONL encoding: keys sorted, floats rounded to
nanosecond precision, records ordered by ``(start, flow_id)``.  The
canonical form is what makes the determinism gates byte-exact: the
same seed must produce the same bytes whether the scenario ran on the
serial kernel or on four shards.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["FlowExporter", "FlowRecord", "flows_from_trace"]

#: Marker used by sharded-kernel handlers: ``ctx.record("flow", ...)``.
TRACE_TAG = "flow"


def _canon(value: float) -> float:
    """Floats at nanosecond precision: the byte-stability contract."""
    return round(float(value), 9)


@dataclass
class FlowRecord:
    """One flow's life, in the style of a router's flow export record."""

    flow_id: str
    klass: str
    src: str
    dst: str
    nbytes: int
    start: float
    end: float
    requests: int = 1
    drops: int = 0
    retries: int = 0
    status: str = "ok"

    def duration(self) -> float:
        return self.end - self.start

    def to_json(self) -> str:
        data = asdict(self)
        data["start"] = _canon(data["start"])
        data["end"] = _canon(data["end"])
        return json.dumps(data, sort_keys=True, separators=(",", ":"))


class FlowExporter:
    """Collects flow records; writes canonical JSONL and digests it."""

    def __init__(self, records: Optional[Iterable[FlowRecord]] = None) -> None:
        self.records: List[FlowRecord] = list(records or [])

    def add(self, record: FlowRecord) -> None:
        self.records.append(record)

    def extend(self, records: Iterable[FlowRecord]) -> None:
        self.records.extend(records)

    def __len__(self) -> int:
        return len(self.records)

    def lines(self) -> List[str]:
        """Canonically ordered JSONL lines (sharding-independent)."""
        ordered = sorted(
            self.records, key=lambda r: (_canon(r.start), r.flow_id)
        )
        return [record.to_json() for record in ordered]

    def dumps(self) -> str:
        lines = self.lines()
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path: str) -> int:
        """Write the JSONL file; returns the number of records."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dumps())
        return len(self.records)

    def digest(self) -> str:
        """SHA-256 of the canonical JSONL bytes."""
        return hashlib.sha256(self.dumps().encode("utf-8")).hexdigest()

    def summary(self) -> Dict[str, float]:
        records = self.records
        failed = sum(1 for r in records if r.status != "ok")
        return {
            "flows": float(len(records)),
            "requests": float(sum(r.requests for r in records)),
            "bytes": float(sum(r.nbytes for r in records)),
            "drops": float(sum(r.drops for r in records)),
            "retries": float(sum(r.retries for r in records)),
            "failed": float(failed),
        }


def flows_from_trace(
    entries: Sequence[Tuple[float, str, str, str]],
) -> List[FlowRecord]:
    """Parse ``ctx.record("flow", ...)`` entries of a sharded-kernel trace.

    The payload of a ``record`` trace entry is ``repr(fields)`` where
    ``fields`` is ``("flow", flow_id, klass, dst, nbytes, start, end,
    requests, drops, retries)`` emitted by
    :mod:`repro.scenario.shardtraffic`; the recording host is the flow
    source.  Entries come from
    :meth:`~repro.netsim.parallel.kernel.ShardedKernel.trace_entries`,
    whose canonical sort makes the result independent of shard count.
    """
    flows: List[FlowRecord] = []
    for _time, host, ref, payload in entries:
        if ref != "record":
            continue
        fields = ast.literal_eval(payload)
        if not fields or fields[0] != TRACE_TAG:
            continue
        (_tag, flow_id, klass, dst, nbytes, start, end, requests, drops,
         retries) = fields
        flows.append(
            FlowRecord(
                flow_id=flow_id,
                klass=klass,
                src=host,
                dst=dst,
                nbytes=int(nbytes),
                start=float(start),
                end=float(end),
                requests=int(requests),
                drops=int(drops),
                retries=int(retries),
                status="ok" if not drops else "degraded",
            )
        )
    return flows
