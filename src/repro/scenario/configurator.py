"""Instantiate a live deployment from a declarative :class:`Spec`.

The configurator is the bridge between the spec tree and the running
pieces: it builds the :class:`~repro.orb.world.World` topology (hosts,
links, cohorts, clustered fabrics), incarnates the serving group
(a :class:`ReplicaGroupManager` of compute servants for open-loop
traffic, a ledger group with duplicate-commit accounting for
transactional traffic), installs the request scheduler and QoS-module
stacks, schedules the chaos campaign and the fluid background — all
from data.  A :class:`StackConfig` overlays one matrix axis
(scheduler policy, reliability on/off, compression codec, replica
count) on top of the spec without editing it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.orb import World
from repro.orb.ior import GROUP_TAG, IOR, TaggedComponent
from repro.orb.modules.base import binding_key
from repro.orb.request import reset_request_ids
from repro.orb.servant import Servant
from repro.orb.stub import Stub
from repro.perf import COUNTERS
from repro.qos.fault_tolerance.replica_group import ReplicaGroupManager
from repro.scenario.spec import Spec, SpecError
from repro.workloads.apps import make_compute_servant_class

__all__ = ["Deployment", "StackConfig", "build_deployment", "DEFAULT_STACKS"]


@dataclass(frozen=True)
class StackConfig:
    """One matrix axis: overrides applied on top of a spec.

    ``None`` fields inherit the spec's own setting; ``codec=""``
    explicitly strips any compression stack the spec declares.
    """

    name: str
    sched: Optional[str] = None
    reliability: Optional[bool] = None
    codec: Optional[str] = None
    replicas: Optional[int] = None

    def resolve(self, spec: Spec) -> "ResolvedStack":
        policy = self.sched if self.sched is not None else spec.sched.policy
        rel = (
            self.reliability
            if self.reliability is not None
            else spec.reliability.enabled
        )
        if self.codec is None:
            codec = spec.modules[0].codec if spec.modules else None
        else:
            codec = self.codec or None
        replicas = (
            self.replicas if self.replicas is not None else len(spec.group.hosts)
        )
        if not 1 <= replicas <= len(spec.group.hosts):
            raise SpecError(
                f"stack {self.name!r}: replicas={replicas} but spec "
                f"{spec.name!r} declares {len(spec.group.hosts)} group "
                f"host(s) ({spec.group.hosts}); add hosts or lower replicas"
            )
        return ResolvedStack(
            name=self.name,
            policy=policy,
            reliability=rel,
            codec=codec,
            group_hosts=list(spec.group.hosts[:replicas]),
        )


@dataclass(frozen=True)
class ResolvedStack:
    """A stack after merging with one spec: what actually gets built."""

    name: str
    policy: str
    reliability: bool
    codec: Optional[str]
    group_hosts: List[str]

    def describe(self) -> str:
        parts = [self.policy, "rel" if self.reliability else "bare"]
        if self.codec:
            parts.append(self.codec)
        parts.append(f"x{len(self.group_hosts)}")
        return "+".join(parts)


#: The default matrix axes: scheduler x reliability x compression x size.
DEFAULT_STACKS = (
    StackConfig("fifo-bare", sched="fifo", reliability=False, codec=""),
    StackConfig("wfq-reliable", sched="wfq", reliability=True),
    StackConfig("wfq-reliable-rle", sched="wfq", reliability=True, codec="rle"),
    # A single replica cannot fail over, so the solo axis runs bare —
    # chaos scenarios' reliability-gated SLOs correctly skip it.
    StackConfig("fifo-bare-solo", sched="fifo", reliability=False, codec="",
                replicas=1),
)

#: The CI quick subset: one bare FIFO axis and one full WFQ axis.
QUICK_STACKS = DEFAULT_STACKS[:2]


def make_ledger_servant_class(service_time: float) -> type:
    """A transactional servant: idempotent ``process``, counted ``commit``."""

    class LedgerServant(Servant):
        _repo_id = "IDL:scenario/Ledger:1.0"
        _default_service_time = service_time

        def __init__(self):
            self.processed = 0
            #: token -> times the non-idempotent commit ran here.
            self.commits: Dict[str, int] = {}

        def process(self, token):
            self.processed += 1
            return token

        def commit(self, token):
            self.commits[token] = self.commits.get(token, 0) + 1
            return self.commits[token]

        # Integration operations (state transfer / load probes).
        def get_state(self):
            return {"processed": self.processed, "commits": dict(self.commits)}

        def set_state(self, state):
            self.processed = state["processed"]
            self.commits = dict(state["commits"])

        def current_load(self):
            return self.processed

    return LedgerServant


class LedgerStub(Stub):
    _idempotent_ops = frozenset({"process"})

    def process(self, token):
        return self._call("process", token)

    def commit(self, token):
        return self._call("commit", token)


class Deployment:
    """A spec + stack, instantiated: topology, group, stacks, chaos."""

    def __init__(self, spec: Spec, stack: ResolvedStack) -> None:
        reset_request_ids()
        COUNTERS.reset()
        self.spec = spec
        self.stack = stack
        self.world = World()
        self.manager: Optional[ReplicaGroupManager] = None
        self.servants: Dict[str, Any] = {}
        self.member_iors: List[IOR] = []
        self.group_ior: Optional[IOR] = None
        self.schedulers: Dict[str, Any] = {}
        self.cohorts: List[Any] = []
        self.campaign = spec.campaign()
        self._build_topology()
        self._build_group()
        self._assign_modules()
        self._install_campaign()
        self._install_fluid()

    # -- topology -----------------------------------------------------

    def _build_topology(self) -> None:
        spec = self.spec
        for host in spec.hosts:
            self.world.add_host(host.name, cpu_factor=host.cpu_factor)
        for link in spec.links:
            self.world.connect(
                link.a, link.b, link.latency, link.bandwidth_bps,
                link.loss_rate, seed=spec.seed,
            )
        for cohort in spec.cohorts:
            for client in cohort.client_names():
                self.world.add_host(client)
                self.world.connect(
                    client, cohort.gateway, cohort.latency, cohort.bandwidth_bps
                )
        if spec.clusters is not None:
            self._build_clusters(spec.clusters)

    def _build_clusters(self, layout: Any) -> None:
        """The soak fabric: intra-cluster LANs, gateway (h00) ring."""
        gateways = []
        for c in range(layout.clusters):
            names = [
                f"c{c:02d}h{h:02d}" for h in range(layout.hosts_per_cluster)
            ]
            self.world.lan(
                names,
                latency=layout.intra_latency,
                bandwidth_bps=layout.bandwidth_bps,
            )
            gateways.append(names[0])
        for index, gateway in enumerate(gateways):
            nxt = gateways[(index + 1) % len(gateways)]
            if gateway != nxt:
                try:
                    self.world.network.link_between(gateway, nxt)
                except Exception:
                    self.world.connect(
                        gateway, nxt, layout.inter_latency, layout.bandwidth_bps
                    )

    # -- serving group --------------------------------------------------

    def _install_scheduler(self, host: str) -> None:
        orb = self.world.orb(host)
        scheduler = orb.install_scheduler(
            policy=self.stack.policy, max_depth=self.spec.sched.max_depth
        )
        for name in self.spec.traffic.classes:
            params = dict(self.spec.sched.classes.get(name, {}))
            params.setdefault("weight", 1.0)
            params.setdefault("priority", 5)
            scheduler.define_class(name, **params)
        self.schedulers[host] = scheduler

    def _build_group(self) -> None:
        spec, stack = self.spec, self.stack
        for host in stack.group_hosts:
            self._install_scheduler(host)
        if spec.traffic.mode == "open":
            self.manager = ReplicaGroupManager(
                self.world,
                spec.group.name,
                make_compute_servant_class(unit_cost=spec.group.service_time),
            )
            for host in stack.group_hosts:
                self.manager.add_replica(host)
                self.servants[host] = self.manager.replica(host)
            self.member_iors = self.manager.member_iors()
            self.group_ior = self.manager.group_ior("first")
        else:  # txn
            servant_class = make_ledger_servant_class(spec.group.service_time)
            for host in stack.group_hosts:
                servant = servant_class()
                self.servants[host] = servant
                self.member_iors.append(
                    self.world.orb(host).poa.activate_object(
                        servant, object_key=f"{spec.group.name}-{host}"
                    )
                )
            primary = self.member_iors[0]
            self.group_ior = IOR(
                primary.type_id,
                primary.profile,
                [
                    TaggedComponent(
                        GROUP_TAG,
                        {
                            "group": spec.group.name,
                            "members": [
                                ior.to_string() for ior in self.member_iors
                            ],
                            "policy": "first",
                        },
                    )
                ],
            )

    def make_txn_stub(self, source: str) -> Any:
        """A (possibly reliable) ledger stub bound on a traffic source."""
        if self.spec.traffic.mode != "txn":
            raise SpecError(
                f"{self.spec.name}: make_txn_stub needs traffic.mode = 'txn'"
            )
        client = self.world.orb(source)
        stub = LedgerStub(client, self.group_ior)
        if self.stack.reliability:
            from repro.reliability import ReliabilityPolicy, reliable

            rel = self.spec.reliability
            stub = reliable(
                stub,
                ReliabilityPolicy(
                    max_retries=rel.max_retries,
                    base_backoff=rel.base_backoff,
                    jitter=rel.jitter,
                    breaker_threshold=rel.breaker_threshold,
                    breaker_cooldown=rel.breaker_cooldown,
                    seed=self.spec.seed,
                ),
            )
        return stub

    def duplicate_commits(self) -> int:
        """Non-idempotent commits that executed more than once anywhere."""
        total = 0
        for servant in self.servants.values():
            commits = getattr(servant, "commits", None)
            if commits:
                total += sum(1 for count in commits.values() if count > 1)
        return total

    # -- router (open-loop) -------------------------------------------------

    def route_least_backlog(self, arrival: Any, depart: float) -> IOR:
        """Route to the live member with the shortest queue at departure.

        With every member crashed the primary is returned — the call
        then fails and is counted against the scenario's failure SLO,
        which is the honest outcome of a full outage.
        """
        best: Optional[IOR] = None
        best_backlog = float("inf")
        for ior in self.member_iors:
            host = self.world.network.host(ior.profile.host)
            if host.crashed:
                continue
            backlog = host.backlog(depart)
            if backlog < best_backlog:
                best, best_backlog = ior, backlog
        return best if best is not None else self.member_iors[0]

    # -- QoS modules ----------------------------------------------------

    def _assign_modules(self) -> None:
        """Client-side compression on every source, keyed per target.

        Only transactional traffic rides the module path —
        ``open_loop_fanout`` drives :meth:`ORB.round_trip` below the
        QoS transport, so the codec is assigned (harmlessly) but never
        exercised there.  Both the group reference and every member
        reference get the codec so reliability failovers stay
        compressed.
        """
        codec = self.stack.codec
        if not codec:
            return
        targets = list(self.member_iors)
        if self.group_ior is not None:
            targets.append(self.group_ior)
        for source in self.spec.traffic.sources:
            client = self.world.orb(source)
            module = None
            for target in targets:
                client.qos_transport.assign(target, "compression")
                module = client.qos_transport.module("compression")
                module.set_codec(binding_key(target), codec)

    # -- chaos / background -----------------------------------------------

    def _install_campaign(self) -> None:
        if not len(self.campaign):
            return
        try:
            self.campaign.install(self.world.faults, self.world.network)
        except Exception as error:
            raise SpecError(
                f"{self.spec.name}: chaos campaign cannot install on this "
                f"topology: {error}"
            ) from error

    def _install_fluid(self) -> None:
        fluid = self.spec.fluid
        if fluid is None:
            return
        from repro.netsim.fluid.tier import FluidFlowExecutor
        from repro.workloads.fluid import FluidCohort

        tier = FluidFlowExecutor(self.world.network, self.world.kernel)
        cohort = FluidCohort(
            tier,
            fluid.src,
            fluid.dst,
            fluid.n_clients,
            flowlets_per_client=fluid.flowlets_per_client,
            seed=self.spec.seed,
            max_flowlets=fluid.max_flowlets,
        )
        cohort.install(self.spec.duration)
        self.cohorts.append(cohort)


def build_deployment(spec: Spec, stack: Optional[StackConfig] = None) -> Deployment:
    """Instantiate ``spec`` with ``stack`` overrides (spec-as-is default)."""
    if stack is None:
        stack = StackConfig(name="spec")
    return Deployment(spec, stack.resolve(spec))
