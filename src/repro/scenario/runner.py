"""Execute one scenario (spec x stack) and judge its SLOs.

Three execution paths, selected by the spec:

- **orb / open** — open-loop arrivals fanned out through the real
  GIOP/round-trip datapath with the chaos campaign and fluid
  background interleaving on the same kernel; requests route to the
  least-backlogged live replica at each departure.
- **orb / txn** — paced multi-call transactions through the full
  stub/mediator/QoS-module path (ending in one non-idempotent
  ``commit``), which is where reliability, compression stacks and the
  duplicate-commit invariant are exercised.
- **shard** — the ON/OFF handler program on the sharded kernel; flows
  come back through the canonically sorted trace, so the flow export
  is byte-identical at every shard count.

Every path fills a :class:`ScenarioResult` with per-class latency
series, a :class:`~repro.scenario.flowexport.FlowExporter`, the chaos
campaign digest and the list of SLO violations (empty = pass).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.orb import giop
from repro.orb.exceptions import SystemException
from repro.orb.request import Request
from repro.perf import COUNTERS
from repro.scenario.configurator import (
    Deployment,
    StackConfig,
    build_deployment,
)
from repro.scenario.flowexport import FlowExporter, FlowRecord, flows_from_trace
from repro.scenario.spec import Spec, SpecError
from repro.scenario.traffic import (
    diurnal_arrivals,
    flash_crowd_arrivals,
    onoff_arrivals,
)
from repro.sched import CLASS_CONTEXT
from repro.workloads.drivers import ClosedLoopResult
from repro.workloads.generators import poisson_arrivals, uniform_arrivals

__all__ = ["ScenarioResult", "arrival_times", "run_scenario"]


@dataclass
class ScenarioResult:
    """Everything a matrix row needs about one scenario execution."""

    spec_name: str
    stack_name: str
    tier: str
    offered: int = 0
    served: int = 0
    failures: int = 0
    duplicate_commits: int = 0
    elapsed: float = 0.0
    retries: int = 0
    campaign_digest: str = ""
    latencies: Dict[str, List[float]] = field(default_factory=dict)
    exporter: FlowExporter = field(default_factory=FlowExporter)
    violations: List[str] = field(default_factory=list)
    kernel_stats: Dict[str, Any] = field(default_factory=dict)

    def all_latencies(self) -> List[float]:
        merged: List[float] = []
        for series in self.latencies.values():
            merged.extend(series)
        return merged

    def latency_summary(self) -> Dict[str, Dict[str, float]]:
        report: Dict[str, Dict[str, float]] = {}
        for klass, series in sorted(self.latencies.items()):
            stats = ClosedLoopResult(series, 0, self.elapsed)
            report[klass] = {
                "count": float(stats.count),
                "p50_ms": round(stats.p50() * 1e3, 3),
                "p95_ms": round(stats.p95() * 1e3, 3),
                "p99_ms": round(stats.p99() * 1e3, 3),
            }
        return report

    def goodput(self, contract_s: Optional[float] = None) -> float:
        """Fraction of offered work that completed (within the contract)."""
        if not self.offered:
            return 0.0
        if contract_s is None:
            return self.served / self.offered
        good = sum(
            1
            for series in self.latencies.values()
            for latency in series
            if latency <= contract_s
        )
        return good / self.offered

    def ok(self) -> bool:
        return not self.violations


# -- arrival processes ----------------------------------------------------


def arrival_times(spec: Spec) -> List[float]:
    """The spec's arrival instants (seconds from run start), seeded."""
    traffic = spec.traffic
    if traffic.kind == "poisson":
        return poisson_arrivals(traffic.rate, spec.duration, seed=spec.seed)
    if traffic.kind == "uniform":
        return uniform_arrivals(traffic.rate, spec.duration)
    if traffic.kind == "onoff":
        return onoff_arrivals(
            spec.duration,
            sources=traffic.onoff_sources,
            burst_rate=traffic.burst_rate,
            on_alpha=traffic.on_alpha,
            on_min=traffic.on_min,
            on_max=traffic.on_max,
            off_mu=traffic.off_mu,
            off_sigma=traffic.off_sigma,
            seed=spec.seed,
        )
    if traffic.kind == "diurnal":
        return diurnal_arrivals(
            traffic.rate,
            spec.duration,
            period=traffic.period,
            amplitude=traffic.amplitude,
            phase=traffic.phase,
            seed=spec.seed,
        )
    if traffic.kind == "flash_crowd":
        return flash_crowd_arrivals(
            spec.duration,
            traffic.base_rate,
            traffic.peak_rate,
            traffic.ramp_at,
            ramp=traffic.ramp,
            hold=traffic.hold,
            decay=traffic.decay,
            seed=spec.seed,
        )
    raise SpecError(f"unknown traffic kind {traffic.kind!r}")  # pragma: no cover


def _classify(spec: Spec, count: int) -> List[str]:
    """A deterministic class label per arrival, honouring the shares."""
    import random

    classes = sorted(spec.traffic.classes.items())
    names = [name for name, _ in classes]
    weights = [share for _, share in classes]
    rng = random.Random(f"{spec.seed}:classes")
    return [
        names[0] if len(names) == 1
        else rng.choices(names, weights=weights)[0]
        for _ in range(count)
    ]


# -- execution paths -------------------------------------------------------


def _run_open(spec: Spec, deployment: Deployment) -> ScenarioResult:
    """Open-loop fan-out over the replica group, per-source client ORBs.

    The same time-explicit loop as
    :func:`repro.workloads.drivers.open_loop_fanout`, with one twist:
    each arrival departs from *its own* source host's ORB, so cohort
    and slow-link scenarios price the client-side path correctly.
    The kernel is drained to each departure, interleaving the chaos
    campaign and any fluid background in simulated-time order.
    """
    world = deployment.world
    result = ScenarioResult(spec.name, deployment.stack.name, spec.tier)
    times = arrival_times(spec)
    labels = _classify(spec, len(times))
    sources = spec.traffic.sources
    operation = spec.traffic.operation
    args: Tuple[Any, ...] = (spec.traffic.units,)
    clock = world.clock
    kernel = world.kernel
    base = clock.now
    last_finish = base
    result.offered = len(times)
    for klass in spec.traffic.classes:
        result.latencies.setdefault(klass, [])
    for index, offset in enumerate(times):
        depart = base + offset
        kernel.run_until(depart)
        source = sources[index % len(sources)]
        orb = world.orb(source)
        klass = labels[index]
        target = deployment.route_least_backlog(None, depart)
        request = Request(
            target, operation, args,
            service_contexts={CLASS_CONTEXT: klass},
        )
        wire = giop.encode_request(request, pools=getattr(orb, "pools", None))
        depart += orb.marshal_cost(len(wire))
        flow = FlowRecord(
            flow_id=f"{source}:{index:05d}",
            klass=klass,
            src=source,
            dst=target.profile.host,
            nbytes=len(wire),
            start=base + offset,
            end=base + offset,
        )
        try:
            reply_wire, finish = orb.round_trip(target.profile.host, wire, depart)
            finish += orb.marshal_cost(len(reply_wire))
            reply = giop.decode_reply(reply_wire)
            flow.end = finish
            flow.nbytes += len(reply_wire)
            if reply.exception is not None:
                result.failures += 1
                flow.drops = 1
                flow.status = "failed"
            else:
                result.served += 1
                result.latencies[klass].append(finish - (base + offset))
            last_finish = max(last_finish, finish)
        except SystemException:
            result.failures += 1
            flow.drops = 1
            flow.status = "failed"
        result.exporter.add(flow)
    clock.advance_to(last_finish)
    if clock.now < base + spec.duration:
        kernel.run_until(base + spec.duration)  # let the campaign finish
    result.elapsed = clock.now - base
    return result


def _run_txn(spec: Spec, deployment: Deployment) -> ScenarioResult:
    """Paced transactions through the stub/mediator/module path."""
    world = deployment.world
    result = ScenarioResult(spec.name, deployment.stack.name, spec.tier)
    times = arrival_times(spec)
    labels = _classify(spec, len(times))
    sources = spec.traffic.sources
    stubs = {source: deployment.make_txn_stub(source) for source in sources}
    calls = spec.traffic.txn_calls
    clock = world.clock
    kernel = world.kernel
    base = clock.now
    result.offered = len(times)
    for klass in spec.traffic.classes:
        result.latencies.setdefault(klass, [])
    primary_host = deployment.member_iors[0].profile.host
    for index, offset in enumerate(times):
        arrival = base + offset
        if arrival > clock.now:
            kernel.run_until(arrival)
        source = sources[index % len(sources)]
        stub = stubs[source]
        klass = labels[index]
        started = clock.now
        retries_before = COUNTERS.rel_retries
        ok = True
        try:
            for call in range(calls - 1):
                stub.process(f"{index}.{call}")
            stub.commit(f"txn{index}")
        except SystemException:
            ok = False
        txn_retries = COUNTERS.rel_retries - retries_before
        result.retries += txn_retries
        if ok:
            result.served += 1
            result.latencies[klass].append(clock.now - started)
        else:
            result.failures += 1
        result.exporter.add(
            FlowRecord(
                flow_id=f"{source}:txn{index:05d}",
                klass=klass,
                src=source,
                dst=primary_host,
                nbytes=spec.traffic.payload * calls,
                start=arrival,
                end=clock.now,
                requests=calls,
                drops=0 if ok else 1,
                retries=txn_retries,
                status="ok" if ok else "failed",
            )
        )
    if clock.now < base + spec.duration:
        kernel.run_until(base + spec.duration)  # let the campaign finish
    result.elapsed = clock.now - base
    result.duplicate_commits = deployment.duplicate_commits()
    return result


def _run_shard(
    spec: Spec, stack_name: str, shards: int, backend: str
) -> ScenarioResult:
    """The ON/OFF handler program on the sharded kernel."""
    from repro.netsim.parallel.kernel import ShardedKernel
    from repro.scenario import shardtraffic

    topology = shardtraffic.topology_from_spec(spec)
    kernel = ShardedKernel(
        topology, shards=shards, backend=backend, seed=spec.seed, trace=True
    )
    shardtraffic.schedule_traffic(kernel, spec)
    kernel.run()
    result = ScenarioResult(spec.name, stack_name, spec.tier)
    flows = flows_from_trace(kernel.trace_entries())
    result.exporter.extend(flows)
    result.offered = len(flows)
    result.served = sum(1 for flow in flows if flow.status == "ok")
    result.failures = result.offered - result.served
    result.elapsed = spec.duration
    result.kernel_stats = kernel.stats()
    klass = sorted(spec.traffic.classes)[0]
    result.latencies[klass] = [flow.duration() for flow in flows]
    return result


# -- SLO judgement ---------------------------------------------------------


def evaluate_slo(
    spec: Spec, result: ScenarioResult, reliability: bool
) -> List[str]:
    """The spec's SLO clauses against one result; [] means pass.

    Latency/goodput clauses marked ``requires_reliability`` only bind
    on stacks that run the reliability layer — a chaos scenario is
    *expected* to hurt a bare stack; the invariants (duplicate
    commits) bind everywhere.
    """
    slo = spec.slo
    violations: List[str] = []
    performance_binds = not slo.requires_reliability or reliability
    if performance_binds:
        merged = ClosedLoopResult(result.all_latencies(), 0, result.elapsed)
        if slo.p95_ms is not None and merged.count:
            p95 = merged.p95() * 1e3
            if p95 > slo.p95_ms:
                violations.append(
                    f"p95 latency {p95:.3f}ms exceeds SLO {slo.p95_ms}ms"
                )
        if slo.p99_ms is not None and merged.count:
            p99 = merged.p99() * 1e3
            if p99 > slo.p99_ms:
                violations.append(
                    f"p99 latency {p99:.3f}ms exceeds SLO {slo.p99_ms}ms"
                )
        if slo.goodput_floor is not None:
            contract = slo.contract_ms / 1e3 if slo.contract_ms else None
            goodput = result.goodput(contract)
            if goodput < slo.goodput_floor:
                within = (
                    f" within {slo.contract_ms}ms" if slo.contract_ms else ""
                )
                violations.append(
                    f"goodput {goodput:.4f}{within} below floor "
                    f"{slo.goodput_floor}"
                )
        if slo.max_failure_ratio is not None and result.offered:
            ratio = result.failures / result.offered
            if ratio > slo.max_failure_ratio:
                violations.append(
                    f"failure ratio {ratio:.4f} exceeds cap "
                    f"{slo.max_failure_ratio}"
                )
    if slo.zero_duplicate_commits and result.duplicate_commits:
        violations.append(
            f"{result.duplicate_commits} non-idempotent commit(s) executed "
            "more than once"
        )
    if slo.min_flows is not None and len(result.exporter) < slo.min_flows:
        violations.append(
            f"only {len(result.exporter)} flow(s) exported; SLO requires "
            f"at least {slo.min_flows}"
        )
    return violations


# -- entry point -------------------------------------------------------------


def run_scenario(
    spec: Spec,
    stack: Optional[StackConfig] = None,
    shards: int = 1,
    backend: str = "inline",
) -> ScenarioResult:
    """Run one scenario under one stack; returns the judged result."""
    if spec.tier == "shard":
        name = stack.name if stack is not None else "spec"
        result = _run_shard(spec, name, shards, backend)
        reliability = False
    else:
        deployment = build_deployment(spec, stack)
        if spec.traffic.mode == "txn":
            result = _run_txn(spec, deployment)
        else:
            result = _run_open(spec, deployment)
        reliability = deployment.stack.reliability
    result.campaign_digest = spec.campaign().digest()
    result.violations = evaluate_slo(spec, result, reliability)
    return result
