"""Declarative scenario specs: topology, stacks, traffic, chaos, SLOs.

A :class:`Spec` is the whole experiment in one artifact, loadable from
a TOML file under ``scenarios/`` or a plain dict — the RAFDA move of
keeping distribution *policy* outside application logic.  The
configurator (:mod:`repro.scenario.configurator`) instantiates the
network, ORB bindings, replica groups, scheduler and control settings
from it; nothing about a scenario lives in code.

Validation is strict and the errors are actionable: dangling host
references, negative rates, overlapping chaos windows and unknown keys
all fail at load time with a message naming the offending field.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.scenario.chaos import Campaign, ChaosError

__all__ = [
    "CohortSpec",
    "ClusterSpec",
    "GroupSpec",
    "HostSpec",
    "LinkSpec",
    "ReliabilitySpec",
    "SchedSpec",
    "SLOSpec",
    "Spec",
    "SpecError",
    "TrafficSpec",
    "FluidSpec",
    "load_spec",
]

TRAFFIC_KINDS = ("poisson", "uniform", "onoff", "diurnal", "flash_crowd")
TRAFFIC_MODES = ("open", "txn")
SCHED_POLICIES = ("fifo", "priority", "wfq")
TIERS = ("orb", "shard")


class SpecError(ValueError):
    """A scenario spec that cannot be instantiated as written."""


def _check_keys(section: str, data: Dict[str, Any], allowed: Sequence[str]) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise SpecError(
            f"{section}: unknown key(s) {unknown}; allowed: {sorted(allowed)}"
        )


def _positive(section: str, name: str, value: float) -> float:
    value = float(value)
    if value <= 0.0:
        raise SpecError(f"{section}.{name} must be positive, got {value}")
    return value


def _non_negative(section: str, name: str, value: float) -> float:
    value = float(value)
    if value < 0.0:
        raise SpecError(f"{section}.{name} must be non-negative, got {value}")
    return value


# -- topology -------------------------------------------------------------


@dataclass
class HostSpec:
    name: str
    cpu_factor: float = 1.0


@dataclass
class LinkSpec:
    a: str
    b: str
    latency: float = 0.0005
    bandwidth_bps: float = 100e6
    loss_rate: float = 0.0


@dataclass
class CohortSpec:
    """``clients`` hosts named ``<name>00..`` behind one gateway link.

    A slow-link cohort is a cohort with high ``latency`` / low
    ``bandwidth_bps``; a regional cohort is one whose gateway sits on
    the far side of a partitionable trunk.
    """

    name: str
    clients: int
    gateway: str
    latency: float = 0.0005
    bandwidth_bps: float = 100e6

    def client_names(self) -> List[str]:
        return [f"{self.name}{i:02d}" for i in range(self.clients)]


@dataclass
class ClusterSpec:
    """Shorthand for the clustered soak topology (shard-tier friendly)."""

    clusters: int = 4
    hosts_per_cluster: int = 4
    intra_latency: float = 0.0005
    inter_latency: float = 0.004
    bandwidth_bps: float = 100e6


# -- stacks ---------------------------------------------------------------


@dataclass
class GroupSpec:
    name: str = "svc"
    hosts: List[str] = field(default_factory=list)
    service_time: float = 0.004


@dataclass
class SchedSpec:
    policy: str = "fifo"
    max_depth: int = 10_000
    classes: Dict[str, Dict[str, Any]] = field(default_factory=dict)


@dataclass
class ReliabilitySpec:
    enabled: bool = False
    max_retries: int = 3
    base_backoff: float = 0.0005
    jitter: float = 0.0
    breaker_threshold: int = 8
    breaker_cooldown: float = 0.002


@dataclass
class ModuleSpec:
    kind: str = "compression"
    codec: str = "rle"


@dataclass
class FluidSpec:
    n_clients: int = 10_000
    src: str = ""
    dst: str = ""
    flowlets_per_client: float = 0.05
    max_flowlets: int = 50_000


# -- traffic --------------------------------------------------------------


@dataclass
class TrafficSpec:
    kind: str = "poisson"
    mode: str = "open"
    rate: float = 100.0
    sources: List[str] = field(default_factory=lambda: ["client"])
    operation: str = "busy_work"
    units: int = 1
    payload: int = 64
    classes: Dict[str, float] = field(default_factory=lambda: {"std": 1.0})
    # onoff
    onoff_sources: int = 4
    burst_rate: float = 400.0
    on_alpha: float = 1.5
    on_min: float = 2.0
    on_max: float = 20_000.0
    off_mu: float = -3.0
    off_sigma: float = 0.7
    # diurnal
    amplitude: float = 0.6
    period: Optional[float] = None
    phase: float = 0.0
    # flash crowd
    base_rate: float = 100.0
    peak_rate: float = 400.0
    ramp_at: float = 0.5
    ramp: float = 0.2
    hold: float = 0.3
    decay: float = 0.3
    # txn
    txn_calls: int = 5


# -- SLOs -----------------------------------------------------------------


@dataclass
class SLOSpec:
    """Per-scenario service-level assertions the matrix enforces."""

    p95_ms: Optional[float] = None
    p99_ms: Optional[float] = None
    #: Fraction of offered work that must complete (within contract_ms
    #: when that is set, at all otherwise).
    goodput_floor: Optional[float] = None
    contract_ms: Optional[float] = None
    max_failure_ratio: Optional[float] = None
    zero_duplicate_commits: bool = True
    #: Latency/goodput clauses only bind on stacks with reliability on
    #: (chaos scenarios are *expected* to fail without recovery).
    requires_reliability: bool = False
    min_flows: Optional[int] = None


# -- the spec ---------------------------------------------------------------


@dataclass
class Spec:
    name: str
    seed: int = 0
    duration: float = 1.0
    tier: str = "orb"
    hosts: List[HostSpec] = field(default_factory=list)
    links: List[LinkSpec] = field(default_factory=list)
    cohorts: List[CohortSpec] = field(default_factory=list)
    clusters: Optional[ClusterSpec] = None
    group: GroupSpec = field(default_factory=GroupSpec)
    sched: SchedSpec = field(default_factory=SchedSpec)
    reliability: ReliabilitySpec = field(default_factory=ReliabilitySpec)
    modules: List[ModuleSpec] = field(default_factory=list)
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    fluid: Optional[FluidSpec] = None
    chaos: List[Dict[str, Any]] = field(default_factory=list)
    slo: SLOSpec = field(default_factory=SLOSpec)

    # -- derived views -----------------------------------------------------

    def host_names(self) -> List[str]:
        """Every host the spec declares, shorthands expanded."""
        names = [host.name for host in self.hosts]
        for cohort in self.cohorts:
            names.extend(cohort.client_names())
        if self.clusters is not None:
            spec = self.clusters
            names.extend(
                f"c{c:02d}h{h:02d}"
                for c in range(spec.clusters)
                for h in range(spec.hosts_per_cluster)
            )
        return names

    def expand_hosts(self, patterns: Sequence[str], section: str) -> List[str]:
        """Resolve host names, expanding ``*``/``?`` globs, order-stable."""
        known = self.host_names()
        result: List[str] = []
        for pattern in patterns:
            if any(ch in pattern for ch in "*?["):
                matches = sorted(fnmatch.filter(known, pattern))
                if not matches:
                    raise SpecError(
                        f"{section}: pattern {pattern!r} matches no host "
                        f"(known: {sorted(known)})"
                    )
                result.extend(m for m in matches if m not in result)
            else:
                if pattern not in known:
                    raise SpecError(
                        f"{section}: unknown host {pattern!r} "
                        f"(known: {sorted(known)})"
                    )
                if pattern not in result:
                    result.append(pattern)
        return result

    def campaign(self) -> Campaign:
        """The expanded, validated chaos campaign (may be empty)."""
        try:
            return Campaign.from_dicts(
                self.chaos,
                seed=self.seed,
                hosts=self.host_names(),
                duration=self.duration,
            )
        except ChaosError as error:
            raise SpecError(f"{self.name}: {error}") from error

    # -- construction -----------------------------------------------------

    @classmethod
    def from_dict(cls, data: Dict[str, Any], name: Optional[str] = None) -> "Spec":
        data = dict(data)
        _check_keys(
            "spec",
            data,
            [
                "name", "seed", "duration", "tier", "topology", "group",
                "sched", "reliability", "modules", "traffic", "fluid",
                "chaos", "slo",
            ],
        )
        spec_name = data.get("name", name)
        if not spec_name:
            raise SpecError("spec: missing 'name'")
        spec = cls(name=str(spec_name))
        spec.seed = int(data.get("seed", 0))
        spec.duration = _positive("spec", "duration", data.get("duration", 1.0))
        spec.tier = str(data.get("tier", "orb"))
        if spec.tier not in TIERS:
            raise SpecError(f"spec.tier must be one of {TIERS}: {spec.tier!r}")

        spec._parse_topology(data.get("topology", {}))
        spec._parse_group(data.get("group", {}))
        spec._parse_sched(data.get("sched", {}))
        spec._parse_reliability(data.get("reliability", {}))
        spec._parse_modules(data.get("modules", []))
        spec._parse_traffic(data.get("traffic", {}))
        spec._parse_fluid(data.get("fluid"))
        chaos = data.get("chaos", [])
        if not isinstance(chaos, list):
            raise SpecError("chaos: must be a list of event tables")
        spec.chaos = [dict(entry) for entry in chaos]
        spec._parse_slo(data.get("slo", {}))
        spec.validate()
        return spec

    @classmethod
    def from_toml(cls, path: str) -> "Spec":
        try:
            import tomllib
        except ImportError as error:  # pragma: no cover - py<3.11 only
            raise SpecError(
                "TOML specs need Python 3.11+ (tomllib); load a dict via "
                "Spec.from_dict instead"
            ) from error
        with open(path, "rb") as handle:
            try:
                data = tomllib.load(handle)
            except tomllib.TOMLDecodeError as error:
                raise SpecError(f"{path}: invalid TOML: {error}") from error
        import os

        default_name = os.path.splitext(os.path.basename(path))[0]
        return cls.from_dict(data, name=default_name)

    # -- section parsers ----------------------------------------------------

    def _parse_topology(self, data: Dict[str, Any]) -> None:
        _check_keys(
            "topology", data, ["hosts", "links", "lan", "cohorts", "clusters"]
        )
        for entry in data.get("hosts", []):
            if isinstance(entry, str):
                self.hosts.append(HostSpec(entry))
            else:
                _check_keys("topology.hosts[]", entry, ["name", "cpu_factor"])
                self.hosts.append(
                    HostSpec(
                        entry["name"],
                        _positive(
                            "topology.hosts[]", "cpu_factor",
                            entry.get("cpu_factor", 1.0),
                        ),
                    )
                )
        lan = data.get("lan")
        if lan:
            _check_keys("topology.lan", lan, ["hosts", "latency", "bandwidth_mbps"])
            names = list(lan["hosts"])
            latency = _non_negative(
                "topology.lan", "latency", lan.get("latency", 0.0005)
            )
            bw = _positive(
                "topology.lan", "bandwidth_mbps", lan.get("bandwidth_mbps", 100.0)
            ) * 1e6
            known = {host.name for host in self.hosts}
            for name in names:
                if name not in known:
                    self.hosts.append(HostSpec(name))
                    known.add(name)
            for i, a in enumerate(names):
                for b in names[i + 1:]:
                    self.links.append(LinkSpec(a, b, latency, bw))
        for entry in data.get("links", []):
            _check_keys(
                "topology.links[]", entry,
                ["a", "b", "latency", "bandwidth_mbps", "loss_rate"],
            )
            loss = float(entry.get("loss_rate", 0.0))
            if not 0.0 <= loss < 1.0:
                raise SpecError(
                    f"topology.links[] loss_rate must be in [0, 1): {loss}"
                )
            self.links.append(
                LinkSpec(
                    entry["a"],
                    entry["b"],
                    _non_negative(
                        "topology.links[]", "latency", entry.get("latency", 0.0005)
                    ),
                    _positive(
                        "topology.links[]", "bandwidth_mbps",
                        entry.get("bandwidth_mbps", 100.0),
                    ) * 1e6,
                    loss,
                )
            )
        for entry in data.get("cohorts", []):
            _check_keys(
                "topology.cohorts[]", entry,
                ["name", "clients", "gateway", "latency", "bandwidth_mbps"],
            )
            clients = int(entry.get("clients", 0))
            if clients < 1:
                raise SpecError(
                    f"topology.cohorts[] {entry.get('name')!r}: clients must "
                    f"be >= 1, got {clients}"
                )
            self.cohorts.append(
                CohortSpec(
                    entry["name"],
                    clients,
                    entry["gateway"],
                    _non_negative(
                        "topology.cohorts[]", "latency", entry.get("latency", 0.0005)
                    ),
                    _positive(
                        "topology.cohorts[]", "bandwidth_mbps",
                        entry.get("bandwidth_mbps", 100.0),
                    ) * 1e6,
                )
            )
        clusters = data.get("clusters")
        if clusters:
            _check_keys(
                "topology.clusters", clusters,
                ["clusters", "hosts_per_cluster", "intra_latency",
                 "inter_latency", "bandwidth_mbps"],
            )
            self.clusters = ClusterSpec(
                clusters=int(clusters.get("clusters", 4)),
                hosts_per_cluster=int(clusters.get("hosts_per_cluster", 4)),
                intra_latency=_non_negative(
                    "topology.clusters", "intra_latency",
                    clusters.get("intra_latency", 0.0005),
                ),
                inter_latency=_positive(
                    "topology.clusters", "inter_latency",
                    clusters.get("inter_latency", 0.004),
                ),
                bandwidth_bps=_positive(
                    "topology.clusters", "bandwidth_mbps",
                    clusters.get("bandwidth_mbps", 100.0),
                ) * 1e6,
            )
            if self.clusters.clusters < 1 or self.clusters.hosts_per_cluster < 1:
                raise SpecError(
                    "topology.clusters: need at least one cluster and one host"
                )

    def _parse_group(self, data: Dict[str, Any]) -> None:
        _check_keys("group", data, ["name", "hosts", "service_time"])
        self.group = GroupSpec(
            name=str(data.get("name", "svc")),
            hosts=list(data.get("hosts", [])),
            service_time=_positive(
                "group", "service_time", data.get("service_time", 0.004)
            ),
        )

    def _parse_sched(self, data: Dict[str, Any]) -> None:
        _check_keys("sched", data, ["policy", "max_depth", "classes"])
        policy = str(data.get("policy", "fifo"))
        if policy not in SCHED_POLICIES:
            raise SpecError(
                f"sched.policy must be one of {SCHED_POLICIES}: {policy!r}"
            )
        classes = {
            str(name): dict(params)
            for name, params in data.get("classes", {}).items()
        }
        self.sched = SchedSpec(
            policy=policy,
            max_depth=int(data.get("max_depth", 10_000)),
            classes=classes,
        )

    def _parse_reliability(self, data: Dict[str, Any]) -> None:
        _check_keys(
            "reliability", data,
            ["enabled", "max_retries", "base_backoff", "jitter",
             "breaker_threshold", "breaker_cooldown"],
        )
        self.reliability = ReliabilitySpec(
            enabled=bool(data.get("enabled", False)),
            max_retries=int(data.get("max_retries", 3)),
            base_backoff=_positive(
                "reliability", "base_backoff", data.get("base_backoff", 0.0005)
            ),
            jitter=_non_negative("reliability", "jitter", data.get("jitter", 0.0)),
            breaker_threshold=int(data.get("breaker_threshold", 8)),
            breaker_cooldown=_positive(
                "reliability", "breaker_cooldown",
                data.get("breaker_cooldown", 0.002),
            ),
        )

    def _parse_modules(self, entries: List[Dict[str, Any]]) -> None:
        for entry in entries:
            _check_keys("modules[]", entry, ["kind", "codec"])
            kind = str(entry.get("kind", "compression"))
            if kind != "compression":
                raise SpecError(
                    f"modules[].kind: only 'compression' stacks are "
                    f"spec-driven today, got {kind!r}"
                )
            self.modules.append(
                ModuleSpec(kind=kind, codec=str(entry.get("codec", "rle")))
            )

    def _parse_traffic(self, data: Dict[str, Any]) -> None:
        _check_keys(
            "traffic", data,
            ["kind", "mode", "rate", "sources", "operation", "units",
             "payload", "classes", "onoff_sources", "burst_rate", "on_alpha",
             "on_min", "on_max", "off_mu", "off_sigma", "amplitude", "period",
             "phase", "base_rate", "peak_rate", "ramp_at", "ramp", "hold",
             "decay", "txn_calls"],
        )
        kind = str(data.get("kind", "poisson"))
        if kind not in TRAFFIC_KINDS:
            raise SpecError(
                f"traffic.kind must be one of {TRAFFIC_KINDS}: {kind!r}"
            )
        mode = str(data.get("mode", "open"))
        if mode not in TRAFFIC_MODES:
            raise SpecError(
                f"traffic.mode must be one of {TRAFFIC_MODES}: {mode!r}"
            )
        classes = {
            str(name): float(share)
            for name, share in data.get("classes", {"std": 1.0}).items()
        }
        if not classes or any(share <= 0.0 for share in classes.values()):
            raise SpecError("traffic.classes shares must all be positive")
        traffic = TrafficSpec(kind=kind, mode=mode, classes=classes)
        traffic.rate = _positive("traffic", "rate", data.get("rate", 100.0))
        traffic.sources = list(data.get("sources", ["client"]))
        traffic.operation = str(data.get("operation", "busy_work"))
        traffic.units = int(data.get("units", 1))
        traffic.payload = int(
            _positive("traffic", "payload", data.get("payload", 64))
        )
        traffic.onoff_sources = int(data.get("onoff_sources", 4))
        traffic.burst_rate = _positive(
            "traffic", "burst_rate", data.get("burst_rate", 400.0)
        )
        traffic.on_alpha = _positive(
            "traffic", "on_alpha", data.get("on_alpha", 1.5)
        )
        traffic.on_min = _positive("traffic", "on_min", data.get("on_min", 2.0))
        traffic.on_max = _positive(
            "traffic", "on_max", data.get("on_max", 20_000.0)
        )
        if traffic.on_max <= traffic.on_min:
            raise SpecError(
                f"traffic.on_max ({traffic.on_max}) must exceed on_min "
                f"({traffic.on_min})"
            )
        traffic.off_mu = float(data.get("off_mu", -3.0))
        traffic.off_sigma = _non_negative(
            "traffic", "off_sigma", data.get("off_sigma", 0.7)
        )
        amplitude = float(data.get("amplitude", 0.6))
        if not 0.0 <= amplitude < 1.0:
            raise SpecError(
                f"traffic.amplitude must be in [0, 1): {amplitude}"
            )
        traffic.amplitude = amplitude
        period = data.get("period")
        traffic.period = (
            _positive("traffic", "period", period) if period is not None else None
        )
        traffic.phase = float(data.get("phase", 0.0))
        traffic.base_rate = _positive(
            "traffic", "base_rate", data.get("base_rate", 100.0)
        )
        traffic.peak_rate = _positive(
            "traffic", "peak_rate", data.get("peak_rate", 400.0)
        )
        if traffic.peak_rate < traffic.base_rate:
            raise SpecError(
                f"traffic.peak_rate ({traffic.peak_rate}) must be at least "
                f"base_rate ({traffic.base_rate})"
            )
        traffic.ramp_at = _non_negative(
            "traffic", "ramp_at", data.get("ramp_at", 0.5)
        )
        traffic.ramp = _non_negative("traffic", "ramp", data.get("ramp", 0.2))
        traffic.hold = _non_negative("traffic", "hold", data.get("hold", 0.3))
        traffic.decay = _non_negative("traffic", "decay", data.get("decay", 0.3))
        traffic.txn_calls = int(data.get("txn_calls", 5))
        if traffic.txn_calls < 1:
            raise SpecError(
                f"traffic.txn_calls must be >= 1, got {traffic.txn_calls}"
            )
        self.traffic = traffic

    def _parse_fluid(self, data: Optional[Dict[str, Any]]) -> None:
        if not data:
            self.fluid = None
            return
        _check_keys(
            "fluid", data,
            ["n_clients", "src", "dst", "flowlets_per_client", "max_flowlets"],
        )
        if "src" not in data or "dst" not in data:
            raise SpecError("fluid: needs both 'src' and 'dst' hosts")
        self.fluid = FluidSpec(
            n_clients=int(
                _positive("fluid", "n_clients", data.get("n_clients", 10_000))
            ),
            src=str(data["src"]),
            dst=str(data["dst"]),
            flowlets_per_client=_positive(
                "fluid", "flowlets_per_client",
                data.get("flowlets_per_client", 0.05),
            ),
            max_flowlets=int(
                _positive("fluid", "max_flowlets", data.get("max_flowlets", 50_000))
            ),
        )

    def _parse_slo(self, data: Dict[str, Any]) -> None:
        _check_keys(
            "slo", data,
            ["p95_ms", "p99_ms", "goodput_floor", "contract_ms",
             "max_failure_ratio", "zero_duplicate_commits",
             "requires_reliability", "min_flows"],
        )
        slo = SLOSpec()
        for name in ("p95_ms", "p99_ms", "contract_ms"):
            value = data.get(name)
            if value is not None:
                setattr(slo, name, _positive("slo", name, value))
        floor = data.get("goodput_floor")
        if floor is not None:
            floor = float(floor)
            if not 0.0 < floor <= 1.0:
                raise SpecError(
                    f"slo.goodput_floor must be in (0, 1]: {floor}"
                )
            slo.goodput_floor = floor
        ratio = data.get("max_failure_ratio")
        if ratio is not None:
            ratio = float(ratio)
            if not 0.0 <= ratio <= 1.0:
                raise SpecError(
                    f"slo.max_failure_ratio must be in [0, 1]: {ratio}"
                )
            slo.max_failure_ratio = ratio
        slo.zero_duplicate_commits = bool(data.get("zero_duplicate_commits", True))
        slo.requires_reliability = bool(data.get("requires_reliability", False))
        min_flows = data.get("min_flows")
        if min_flows is not None:
            slo.min_flows = int(_positive("slo", "min_flows", min_flows))
        self.slo = slo

    # -- whole-spec validation -----------------------------------------------

    def validate(self) -> None:
        names = self.host_names()
        if not names:
            raise SpecError(f"{self.name}: topology declares no hosts")
        seen = set()
        for name in names:
            if name in seen:
                raise SpecError(f"{self.name}: duplicate host name {name!r}")
            seen.add(name)
        for link in self.links:
            for endpoint in (link.a, link.b):
                if endpoint not in seen:
                    raise SpecError(
                        f"{self.name}: link {link.a!r}<->{link.b!r} references "
                        f"unknown host {endpoint!r} (known: {sorted(seen)})"
                    )
            if link.a == link.b:
                raise SpecError(
                    f"{self.name}: link connects {link.a!r} to itself"
                )
        for cohort in self.cohorts:
            if cohort.gateway not in seen:
                raise SpecError(
                    f"{self.name}: cohort {cohort.name!r} gateway "
                    f"{cohort.gateway!r} is not a declared host"
                )
        if not self.group.hosts:
            raise SpecError(
                f"{self.name}: group.hosts must name at least one serving host"
            )
        self.group.hosts = self.expand_hosts(self.group.hosts, "group.hosts")
        self.traffic.sources = self.expand_hosts(
            self.traffic.sources, "traffic.sources"
        )
        overlap = set(self.traffic.sources) & set(self.group.hosts)
        if overlap:
            raise SpecError(
                f"{self.name}: hosts {sorted(overlap)} are both traffic "
                "sources and group servers; separate them"
            )
        if self.fluid is not None:
            for name, value in (("src", self.fluid.src), ("dst", self.fluid.dst)):
                if value not in seen:
                    raise SpecError(
                        f"{self.name}: fluid.{name} {value!r} is not a "
                        "declared host"
                    )
        if self.tier == "shard":
            if self.traffic.kind != "onoff":
                raise SpecError(
                    f"{self.name}: the shard tier runs the ON/OFF handler "
                    f"program only; traffic.kind {self.traffic.kind!r} needs "
                    "tier = 'orb'"
                )
            for section, present in (
                ("chaos", bool(self.chaos)),
                ("fluid", self.fluid is not None),
                ("modules", bool(self.modules)),
                ("reliability", self.reliability.enabled),
            ):
                if present:
                    raise SpecError(
                        f"{self.name}: {section} requires the orb tier "
                        "(tier = 'orb'); the shard tier drives bare handler "
                        "traffic"
                    )
        # Expanding the campaign validates windows and host references.
        self.campaign()


def load_spec(path_or_dict: Any, name: Optional[str] = None) -> Spec:
    """Load a spec from a TOML path or a plain dict."""
    if isinstance(path_or_dict, dict):
        return Spec.from_dict(path_or_dict, name=name)
    return Spec.from_toml(str(path_or_dict))
