"""The scenario matrix: N specs x M stacks, SLO-gated.

:class:`ScenarioMatrix` replays every spec under every stack override
and collects one judged :class:`~repro.scenario.runner.ScenarioResult`
per cell.  :meth:`ScenarioMatrix.assert_slos` turns the collected
violations into one actionable failure — this is what the tier-1 test
suite and the CI quick job gate on; the full matrix runs behind
``--full`` in ``benchmarks/run_scenario_bench.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.scenario.configurator import (
    DEFAULT_STACKS,
    QUICK_STACKS,
    StackConfig,
)
from repro.scenario.runner import ScenarioResult, run_scenario
from repro.scenario.spec import Spec

__all__ = ["MatrixCell", "ScenarioMatrix", "DEFAULT_STACKS", "QUICK_STACKS"]


@dataclass
class MatrixCell:
    spec: Spec
    stack: StackConfig
    result: ScenarioResult

    def key(self) -> str:
        return f"{self.spec.name}/{self.stack.name}"

    def to_payload(self) -> Dict[str, Any]:
        result = self.result
        return {
            "spec": self.spec.name,
            "stack": self.stack.name,
            "tier": self.spec.tier,
            "offered": result.offered,
            "served": result.served,
            "failures": result.failures,
            "retries": result.retries,
            "duplicate_commits": result.duplicate_commits,
            "goodput": round(result.goodput(), 4),
            "flows": len(result.exporter),
            "flow_digest": result.exporter.digest(),
            "campaign_digest": result.campaign_digest,
            "latency": result.latency_summary(),
            "violations": list(result.violations),
        }


class ScenarioMatrix:
    """Run every (spec, stack) cell; judge, collect, gate."""

    def __init__(
        self,
        specs: Sequence[Spec],
        stacks: Sequence[StackConfig] = DEFAULT_STACKS,
    ) -> None:
        if not specs:
            raise ValueError("a scenario matrix needs at least one spec")
        if not stacks:
            raise ValueError("a scenario matrix needs at least one stack")
        self.specs = list(specs)
        self.stacks = list(stacks)
        self.cells: List[MatrixCell] = []

    def run(
        self, progress: Optional[Any] = None
    ) -> List[MatrixCell]:
        """Execute the full cross product; returns the judged cells.

        Shard-tier specs run once per matrix sweep (their stacks are
        ORB-tier concerns), under the first stack's name.
        """
        self.cells = []
        for spec in self.specs:
            stacks = self.stacks if spec.tier == "orb" else self.stacks[:1]
            for stack in stacks:
                result = run_scenario(spec, stack)
                self.cells.append(MatrixCell(spec, stack, result))
                if progress is not None:
                    progress(self.cells[-1])
        return self.cells

    # -- gating -----------------------------------------------------------

    def violations(self) -> Dict[str, List[str]]:
        return {
            cell.key(): list(cell.result.violations)
            for cell in self.cells
            if cell.result.violations
        }

    def assert_slos(self) -> None:
        """Raise one AssertionError naming every violated cell."""
        broken = self.violations()
        if broken:
            lines = [
                f"  {key}: {'; '.join(problems)}"
                for key, problems in sorted(broken.items())
            ]
            raise AssertionError(
                f"{len(broken)} scenario cell(s) violated their SLOs:\n"
                + "\n".join(lines)
            )

    # -- reporting ----------------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        return {
            "specs": [spec.name for spec in self.specs],
            "stacks": [stack.name for stack in self.stacks],
            "cells": [cell.to_payload() for cell in self.cells],
            "violations": self.violations(),
        }
