"""CLI: run or validate scenario specs.

Usage::

    python -m repro.scenario run scenarios/flash_crowd.toml
        [--stack NAME] [--shards N] [--flowexport out.jsonl]
    python -m repro.scenario validate scenarios/*.toml
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.scenario.configurator import DEFAULT_STACKS, StackConfig
from repro.scenario.runner import run_scenario
from repro.scenario.spec import Spec, SpecError


def _find_stack(name: Optional[str]) -> Optional[StackConfig]:
    if name is None:
        return None
    for stack in DEFAULT_STACKS:
        if stack.name == name:
            return stack
    known = ", ".join(stack.name for stack in DEFAULT_STACKS)
    raise SystemExit(f"unknown stack {name!r}; known stacks: {known}")


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        spec = Spec.from_toml(args.spec)
    except (SpecError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    result = run_scenario(
        spec, stack=_find_stack(args.stack), shards=args.shards
    )
    print(f"scenario  {result.spec_name} (tier={result.tier}, "
          f"stack={result.stack_name})")
    print(f"offered   {result.offered}  served {result.served}  "
          f"failures {result.failures}  retries {result.retries}")
    print(f"goodput   {result.goodput():.4f}")
    for klass, stats in result.latency_summary().items():
        print(f"latency   {klass}: p50 {stats['p50_ms']}ms  "
              f"p95 {stats['p95_ms']}ms  p99 {stats['p99_ms']}ms "
              f"(n={int(stats['count'])})")
    print(f"flows     {len(result.exporter)}  "
          f"digest {result.exporter.digest()[:16]}…")
    if result.campaign_digest:
        print(f"campaign  digest {result.campaign_digest[:16]}…")
    if args.flowexport:
        count = result.exporter.write(args.flowexport)
        print(f"flowexport wrote {count} record(s) to {args.flowexport}")
    if result.violations:
        print("SLO VIOLATIONS:")
        for violation in result.violations:
            print(f"  - {violation}")
        return 1
    print("SLOs: pass")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    status = 0
    for path in args.specs:
        try:
            spec = Spec.from_toml(path)
        except (SpecError, OSError) as error:
            print(f"FAIL {path}: {error}")
            status = 1
            continue
        campaign = spec.campaign()
        print(f"ok   {path}: {spec.name} (tier={spec.tier}, "
              f"{len(spec.host_names())} hosts, {len(campaign)} chaos events)")
    return status


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenario",
        description=__doc__.splitlines()[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one scenario spec")
    run_p.add_argument("spec", help="path to a TOML spec")
    run_p.add_argument("--stack", default=None,
                       help="stack override by name (default: spec as-is)")
    run_p.add_argument("--shards", type=int, default=1,
                       help="shard count for tier='shard' specs (default 1)")
    run_p.add_argument("--flowexport", default=None,
                       help="write flow-export JSONL to this path")
    run_p.set_defaults(func=_cmd_run)

    val_p = sub.add_parser("validate", help="validate specs without running")
    val_p.add_argument("specs", nargs="+", help="paths to TOML specs")
    val_p.set_defaults(func=_cmd_validate)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
