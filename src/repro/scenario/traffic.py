"""Harpoon-style traffic: heavy-tailed ON/OFF sessions, load curves.

Three generator families, all seeded and all emitting through the
arrival API of :mod:`repro.workloads.generators` (sorted absolute
arrival instants), so the same curve can drive a packet-tier
open-loop driver and a :class:`~repro.workloads.fluid.FluidCohort`
background:

- **ON/OFF sessions** (:func:`onoff_sessions` / :func:`onoff_arrivals`)
  — the harpoon model: each source alternates an ON burst whose size
  (requests) is bounded-Pareto distributed with a lognormal OFF gap.
  Aggregating many such sources is what produces the self-similar,
  heavy-tailed load real middleware sees.
- **Diurnal curves** (:func:`diurnal_rate` / :func:`diurnal_arrivals`)
  — a sinusoidal day/night rate whose integral over whole periods is
  exactly ``mean_rate * duration``.
- **Flash crowds** (:func:`flash_crowd_rate` /
  :func:`flash_crowd_arrivals`) — a piecewise ramp from a base rate to
  a peak, a hold, and a decay back.

The curves are sampled by thinning
(:func:`repro.workloads.generators.thinned_arrivals`); identical seeds
give identical arrival lists.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.workloads.generators import thinned_arrivals

__all__ = [
    "Session",
    "bounded_pareto",
    "diurnal_arrivals",
    "diurnal_rate",
    "flash_crowd_arrivals",
    "flash_crowd_rate",
    "hill_estimator",
    "onoff_arrivals",
    "onoff_sessions",
]


# -- heavy-tailed sampling ----------------------------------------------


def bounded_pareto(u: float, alpha: float, lo: float, hi: float) -> float:
    """Inverse-CDF sample of a bounded Pareto from ``u`` in [0, 1).

    ``alpha`` is the tail index, ``[lo, hi]`` the support.  The
    truncation keeps a single draw from dominating a whole run while
    preserving the tail shape below the cap — the standard trick of
    empirical web/file-size models.
    """
    if alpha <= 0.0:
        raise ValueError(f"alpha must be positive: {alpha}")
    if not 0.0 < lo < hi:
        raise ValueError(f"need 0 < lo < hi, got lo={lo} hi={hi}")
    if not 0.0 <= u < 1.0:
        raise ValueError(f"u must be in [0, 1): {u}")
    scale = 1.0 - (lo / hi) ** alpha
    return lo / (1.0 - u * scale) ** (1.0 / alpha)


def hill_estimator(values: Sequence[float], k: Optional[int] = None) -> float:
    """Hill estimate of the tail index from the ``k`` largest values.

    The property tests use this to check generated ON sizes against
    the configured Pareto ``alpha``.  ``k`` defaults to the top 10%.
    """
    ordered = sorted(values, reverse=True)
    if k is None:
        k = max(10, len(ordered) // 10)
    if len(ordered) <= k or k < 2:
        raise ValueError(f"need more than k={k} samples, got {len(ordered)}")
    threshold = ordered[k]
    if threshold <= 0.0:
        raise ValueError("hill estimator needs positive samples")
    total = 0.0
    for value in ordered[:k]:
        total += math.log(value / threshold)
    return k / total


# -- ON/OFF sessions -----------------------------------------------------


@dataclass
class Session:
    """One ON burst of a source: ``size`` requests paced at the burst rate."""

    source: int
    start: float
    size: int
    arrivals: List[float] = field(default_factory=list)


def onoff_sessions(
    duration: float,
    sources: int = 4,
    burst_rate: float = 400.0,
    on_alpha: float = 1.5,
    on_min: float = 2.0,
    on_max: float = 20_000.0,
    off_mu: float = -3.0,
    off_sigma: float = 0.7,
    seed: int = 0,
    start: float = 0.0,
) -> List[Session]:
    """Harpoon-style ON/OFF sessions for ``sources`` independent sources.

    Each source draws an ON size (requests) from a bounded Pareto with
    tail index ``on_alpha`` on ``[on_min, on_max]``, emits the burst at
    ``burst_rate`` requests/second, then sleeps a lognormal(``off_mu``,
    ``off_sigma``) OFF gap.  Each source's stream is seeded by
    ``(seed, source)`` only, so streams are stable under recomposition.
    """
    if duration < 0.0:
        raise ValueError(f"duration must be non-negative: {duration}")
    if sources < 1:
        raise ValueError(f"need at least one source: {sources}")
    if burst_rate <= 0.0:
        raise ValueError(f"burst_rate must be positive: {burst_rate}")
    if off_sigma < 0.0:
        raise ValueError(f"off_sigma must be non-negative: {off_sigma}")
    sessions: List[Session] = []
    end = start + duration
    for source in range(sources):
        rng = random.Random(f"{seed}:onoff:{source}")
        # An initial OFF gap de-synchronises the sources.
        t = start + rng.lognormvariate(off_mu, off_sigma)
        while t < end:
            size = max(
                1, int(round(bounded_pareto(rng.random(), on_alpha, on_min, on_max)))
            )
            arrivals: List[float] = []
            for index in range(size):
                at = t + index / burst_rate
                if at >= end:
                    break
                arrivals.append(at)
            if arrivals:
                sessions.append(Session(source, t, size, arrivals))
                t = arrivals[-1]
            t += 1.0 / burst_rate + rng.lognormvariate(off_mu, off_sigma)
    return sessions


def onoff_arrivals(duration: float, **config) -> List[float]:
    """Merged, sorted arrival instants of :func:`onoff_sessions`."""
    times: List[float] = []
    for session in onoff_sessions(duration, **config):
        times.extend(session.arrivals)
    times.sort()
    return times


# -- diurnal curves ------------------------------------------------------


def diurnal_rate(
    tau: float,
    mean_rate: float,
    period: float,
    amplitude: float = 0.6,
    phase: float = 0.0,
) -> float:
    """The instantaneous rate ``tau`` seconds into a diurnal cycle.

    ``mean_rate * (1 + amplitude * sin(2*pi*tau/period + phase))`` —
    the sinusoid integrates to zero over whole periods, so the curve
    integrates to exactly ``mean_rate * duration`` there (the property
    the tests pin).  ``amplitude`` must stay below 1 so the rate never
    goes negative.
    """
    if mean_rate <= 0.0:
        raise ValueError(f"mean_rate must be positive: {mean_rate}")
    if period <= 0.0:
        raise ValueError(f"period must be positive: {period}")
    if not 0.0 <= amplitude < 1.0:
        raise ValueError(f"amplitude must be in [0, 1): {amplitude}")
    return mean_rate * (1.0 + amplitude * math.sin(2.0 * math.pi * tau / period + phase))


def diurnal_arrivals(
    mean_rate: float,
    duration: float,
    period: Optional[float] = None,
    amplitude: float = 0.6,
    phase: float = 0.0,
    seed: int = 0,
    start: float = 0.0,
) -> List[float]:
    """Seeded arrivals under a diurnal curve (defaults to one full cycle)."""
    if period is None:
        period = duration
    diurnal_rate(0.0, mean_rate, period, amplitude, phase)  # validate params
    peak = mean_rate * (1.0 + amplitude)
    return thinned_arrivals(
        lambda tau: diurnal_rate(tau, mean_rate, period, amplitude, phase),
        peak,
        duration,
        seed=seed,
        start=start,
    )


# -- flash crowds --------------------------------------------------------


def flash_crowd_rate(
    tau: float,
    base_rate: float,
    peak_rate: float,
    ramp_at: float,
    ramp: float = 0.2,
    hold: float = 0.3,
    decay: float = 0.3,
) -> float:
    """Piecewise flash-crowd rate: base, linear ramp, hold, linear decay."""
    if base_rate <= 0.0:
        raise ValueError(f"base_rate must be positive: {base_rate}")
    if peak_rate < base_rate:
        raise ValueError(
            f"peak_rate ({peak_rate}) must be at least base_rate ({base_rate})"
        )
    if ramp_at < 0.0 or ramp < 0.0 or hold < 0.0 or decay < 0.0:
        raise ValueError("flash-crowd phase durations must be non-negative")
    if tau < ramp_at:
        return base_rate
    if ramp > 0.0 and tau < ramp_at + ramp:
        return base_rate + (peak_rate - base_rate) * (tau - ramp_at) / ramp
    if tau < ramp_at + ramp + hold:
        return peak_rate
    if decay > 0.0 and tau < ramp_at + ramp + hold + decay:
        fall = (tau - ramp_at - ramp - hold) / decay
        return peak_rate - (peak_rate - base_rate) * fall
    return base_rate


def flash_crowd_arrivals(
    duration: float,
    base_rate: float,
    peak_rate: float,
    ramp_at: float,
    ramp: float = 0.2,
    hold: float = 0.3,
    decay: float = 0.3,
    seed: int = 0,
    start: float = 0.0,
) -> List[float]:
    """Seeded arrivals under a flash-crowd ramp."""
    rate: Callable[[float], float] = lambda tau: flash_crowd_rate(
        tau, base_rate, peak_rate, ramp_at, ramp, hold, decay
    )
    return thinned_arrivals(rate, peak_rate, duration, seed=seed, start=start)
