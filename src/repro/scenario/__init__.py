"""Scenario fleet: declarative specs, chaos campaigns, SLO matrices.

The experiment layer on top of the MAQS reproduction: a scenario is a
TOML/dict :class:`~repro.scenario.spec.Spec` (topology, QoS stacks,
traffic shape, chaos script, SLOs), the configurator instantiates it,
the runner executes and judges it, and the matrix sweeps specs x
stacks as a CI gate.  ``python -m repro.scenario run <spec.toml>``
drives a single scenario from the command line.
"""

from repro.scenario.chaos import Campaign, ChaosError, ChaosEvent
from repro.scenario.configurator import (
    DEFAULT_STACKS,
    QUICK_STACKS,
    Deployment,
    StackConfig,
    build_deployment,
)
from repro.scenario.flowexport import FlowExporter, FlowRecord, flows_from_trace
from repro.scenario.matrix import MatrixCell, ScenarioMatrix
from repro.scenario.runner import ScenarioResult, arrival_times, run_scenario
from repro.scenario.spec import Spec, SpecError, load_spec

__all__ = [
    "Campaign",
    "ChaosError",
    "ChaosEvent",
    "DEFAULT_STACKS",
    "Deployment",
    "FlowExporter",
    "FlowRecord",
    "MatrixCell",
    "QUICK_STACKS",
    "ScenarioMatrix",
    "ScenarioResult",
    "Spec",
    "SpecError",
    "StackConfig",
    "arrival_times",
    "build_deployment",
    "flows_from_trace",
    "load_spec",
    "run_scenario",
]
