"""Deterministic exponential backoff with seeded jitter.

Delays are pure simulated time — the retry loop *advances the clock*
by them instead of sleeping — and the jitter stream comes from a
dedicated ``random.Random(seed)``, so a run is bit-for-bit repeatable
under the same seed and call order (the chaos suite's identical-seeds
→ identical-traces invariant rests on this).
"""

from __future__ import annotations

import random

from repro.reliability.policy import ReliabilityPolicy


class BackoffSchedule:
    """The delay sequence one mediator draws its retry waits from."""

    __slots__ = ("_policy", "_rng", "draws")

    def __init__(self, policy: ReliabilityPolicy) -> None:
        self._policy = policy
        self._rng = random.Random(policy.seed)
        self.draws = 0

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based), jittered.

        ``base * multiplier**(attempt-1)`` capped at ``max_backoff``,
        then spread by ±``jitter`` — the spread is what keeps a fleet
        of recovering clients from re-converging on the same instant.
        """
        if attempt < 1:
            raise ValueError(f"attempt is 1-based: {attempt}")
        policy = self._policy
        raw = policy.base_backoff * policy.backoff_multiplier ** (attempt - 1)
        raw = min(raw, policy.max_backoff)
        self.draws += 1
        if policy.jitter:
            raw *= 1.0 + policy.jitter * self._rng.uniform(-1.0, 1.0)
        return raw

    def reseed(self, seed: int) -> None:
        """Restart the jitter stream (chaos-suite replay hygiene)."""
        self._rng = random.Random(seed)
        self.draws = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BackoffSchedule(draws={self.draws})"
