"""Replica failover: rotating through a GROUP_TAG member list.

A group reference published by
:class:`~repro.qos.fault_tolerance.replica_group.ReplicaGroupManager`
carries every member as a stringified IOR in its ``GROUP_TAG``
component.  The rotation walks that list on fail-stop errors and
*persists* the re-binding: once the mediator moves off a dead primary,
subsequent calls go straight to the member that answered, instead of
re-probing the corpse every call.
"""

from __future__ import annotations

from typing import List

from repro.orb.ior import IOR
from repro.perf.counters import COUNTERS


class FailoverRotation:
    """The (circular) candidate targets of one reliability-bound stub."""

    __slots__ = ("members", "index", "failovers")

    def __init__(self, ior: IOR) -> None:
        members: List[IOR] = ior.group_members()
        #: Singleton references rotate over themselves: retry stays on
        #: the only host there is.
        self.members = members if members else [ior]
        self.index = 0
        self.failovers = 0

    @property
    def active(self) -> IOR:
        return self.members[self.index]

    def __len__(self) -> int:
        return len(self.members)

    def advance(self) -> IOR:
        """Re-bind to the next member (wrap-around); returns it."""
        self.index = (self.index + 1) % len(self.members)
        self.failovers += 1
        COUNTERS.rel_failovers += 1
        return self.active

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FailoverRotation({len(self.members)} members, "
            f"active={self.active.profile.host!r})"
        )
