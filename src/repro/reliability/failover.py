"""Replica failover: rotating through a GROUP_TAG member list.

A group reference published by
:class:`~repro.qos.fault_tolerance.replica_group.ReplicaGroupManager`
carries every member as a stringified IOR in its ``GROUP_TAG``
component.  The rotation walks that list on fail-stop errors and
*persists* the re-binding: once the mediator moves off a dead primary,
subsequent calls go straight to the member that answered, instead of
re-probing the corpse every call.

The control plane (:mod:`repro.control`) mutates rotations at runtime:
:meth:`FailoverRotation.update` publishes a new member list (grow,
shrink, rebalance) and a *draining* set — members being retired that
must not receive any new request while their in-flight work completes.
Draining members are skipped both on re-bind (:meth:`advance`) and
when a stale active pointer lands on one, so the "no new dispatch
after drain begins" guarantee is structural, not best-effort.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional

from repro.orb.ior import IOR
from repro.perf.counters import COUNTERS


class FailoverRotation:
    """The (circular) candidate targets of one reliability-bound stub."""

    __slots__ = ("members", "index", "failovers", "draining", "updates")

    def __init__(self, ior: IOR, start: int = 0) -> None:
        members: List[IOR] = ior.group_members()
        #: Singleton references rotate over themselves: retry stays on
        #: the only host there is.
        self.members = members if members else [ior]
        self.index = start % len(self.members)
        self.failovers = 0
        #: Binding keys of members currently draining (being retired).
        self.draining: FrozenSet[str] = frozenset()
        #: Membership views published over this rotation's lifetime.
        self.updates = 0

    @property
    def active(self) -> IOR:
        return self.members[self.index]

    def __len__(self) -> int:
        return len(self.members)

    def serving_members(self) -> List[IOR]:
        """Members eligible for new requests (not draining)."""
        return [m for m in self.members if m.binding_key() not in self.draining]

    def advance(self) -> IOR:
        """Re-bind to the next non-draining member (wrap-around).

        Draining members are passed over; with every member draining the
        plain circular step applies so the rotation is never empty-handed
        (the breaker layer above still refuses the actual dispatch).
        """
        size = len(self.members)
        for step in range(1, size + 1):
            candidate = (self.index + step) % size
            if self.members[candidate].binding_key() not in self.draining:
                self.index = candidate
                break
        else:
            self.index = (self.index + 1) % size
        self.failovers += 1
        COUNTERS.rel_failovers += 1
        return self.active

    def update(
        self,
        members: Iterable[IOR],
        draining: Iterable[str] = (),
        prefer: Optional[int] = None,
    ) -> IOR:
        """Publish a new membership view; returns the new active member.

        The active binding is kept when it survives the update and is
        not draining (persistent re-bind semantics); otherwise the
        rotation moves to the first serving member, biased by
        ``prefer`` — the control plane spreads its clients across the
        group by handing each a different preferred start index.
        """
        new_members = list(members)
        if not new_members:
            raise ValueError("a rotation cannot be updated to zero members")
        draining_keys = frozenset(draining)
        active_key = self.active.binding_key()
        self.members = new_members
        self.draining = draining_keys
        self.updates += 1
        size = len(new_members)
        keys = [member.binding_key() for member in new_members]
        if active_key in keys and active_key not in draining_keys and prefer is None:
            self.index = keys.index(active_key)
            return self.active
        start = (prefer or 0) % size
        for step in range(size):
            candidate = (start + step) % size
            if keys[candidate] not in draining_keys:
                self.index = candidate
                return self.active
        self.index = start
        return self.active

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FailoverRotation({len(self.members)} members, "
            f"active={self.active.profile.host!r}, "
            f"draining={len(self.draining)})"
        )
