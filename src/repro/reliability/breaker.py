"""Per-binding circuit breaker: closed / open / half-open.

A binding that keeps failing stops being called at all: after
``threshold`` consecutive failures the breaker *opens* and calls
fast-fail locally (no wire traffic, no timeout burn) until a cooldown
on the simulated clock elapses; the breaker then goes *half-open* and
admits exactly one probe call, whose outcome closes or re-opens it.
All time is simulated time — deterministic under replay.
"""

from __future__ import annotations

from repro.perf.counters import COUNTERS

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure accounting for one client/server binding."""

    __slots__ = ("threshold", "cooldown", "state", "failures", "opened_at")

    def __init__(self, threshold: int, cooldown: float) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = CLOSED
        #: Consecutive failures since the last success.
        self.failures = 0
        self.opened_at = 0.0

    def allow(self, now: float) -> bool:
        """May a call go out on this binding at ``now``?

        An open breaker whose cooldown has elapsed transitions to
        half-open and admits the caller as its probe.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now - self.opened_at < self.cooldown:
                return False
            self.state = HALF_OPEN
            COUNTERS.rel_breaker_probes += 1
            return True
        # Half-open: the probe is already in flight; hold everyone
        # else off until its outcome lands.
        return False

    def record_success(self) -> None:
        self.failures = 0
        self.state = CLOSED

    def record_failure(self, now: float) -> None:
        self.failures += 1
        if self.state == HALF_OPEN or self.failures >= self.threshold:
            if self.state != OPEN:
                COUNTERS.rel_breaker_opens += 1
            self.state = OPEN
            self.opened_at = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CircuitBreaker({self.state}, failures={self.failures})"
