"""Reliability policy: the knobs of the client-side recovery layer.

One :class:`ReliabilityPolicy` parameterises everything the
:class:`~repro.reliability.mediator.ReliabilityMediator` does for a
binding — the deadline budget, the retry/backoff schedule, the circuit
breaker and failover.  Policies are plain value objects: share one
across many stubs bound to the same service class, or build one per
binding.

At-most-once discipline: a failed call is retried only when that
provably cannot duplicate an execution — the operation is declared
``idempotent`` (in QIDL, or here via ``idempotent_ops``), or the error
is known to have struck *before* the servant ran (see
:func:`repro.orb.exceptions.is_unexecuted`: forward-leg transport
failures and scheduler OVERLOAD rejections).
"""

from __future__ import annotations

from typing import Iterable, Optional

#: Service-context key carrying the call's *absolute* simulated-time
#: deadline.  The server's scheduler reads it (see
#: :data:`repro.sched.scheduler.DEADLINE_CONTEXT` — the literal is
#: repeated there so repro.sched never imports upward) and sheds
#: requests whose caller will have timed out before completion.
DEADLINE_CONTEXT = "maqs.reliability.deadline"

#: TRANSIENT minor code of a circuit-breaker fast-fail.
BREAKER_OPEN_MINOR = 0x0B0


class ReliabilityPolicy:
    """Configuration of one reliability-mediated binding."""

    __slots__ = (
        "deadline",
        "max_retries",
        "base_backoff",
        "backoff_multiplier",
        "max_backoff",
        "jitter",
        "seed",
        "breaker_threshold",
        "breaker_cooldown",
        "failover",
        "idempotent_ops",
    )

    def __init__(
        self,
        deadline: Optional[float] = None,
        max_retries: int = 3,
        base_backoff: float = 1e-3,
        backoff_multiplier: float = 2.0,
        max_backoff: float = 0.25,
        jitter: float = 0.1,
        seed: int = 0,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 0.05,
        failover: bool = True,
        idempotent_ops: Iterable[str] = (),
    ) -> None:
        if deadline is not None and deadline <= 0.0:
            raise ValueError(f"deadline must be positive: {deadline}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0: {max_retries}")
        if base_backoff < 0.0 or max_backoff < 0.0:
            raise ValueError("backoff bounds must be non-negative")
        if backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff_multiplier must be >= 1: {backoff_multiplier}"
            )
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1): {jitter}")
        if breaker_threshold < 1:
            raise ValueError(f"breaker_threshold must be >= 1: {breaker_threshold}")
        if breaker_cooldown < 0.0:
            raise ValueError(f"breaker_cooldown must be >= 0: {breaker_cooldown}")
        #: Per-call time budget in simulated seconds (None = unbounded).
        self.deadline = deadline
        #: Re-issues allowed after the first attempt.
        self.max_retries = max_retries
        self.base_backoff = base_backoff
        self.backoff_multiplier = backoff_multiplier
        self.max_backoff = max_backoff
        #: Fractional spread around each backoff delay (±jitter).
        self.jitter = jitter
        #: Seeds the jitter RNG: identical seeds replay identical delays.
        self.seed = seed
        #: Consecutive failures that open a binding's breaker.
        self.breaker_threshold = breaker_threshold
        #: Seconds an open breaker waits before a half-open probe.
        self.breaker_cooldown = breaker_cooldown
        #: Re-bind to the next GROUP_TAG member on fail-stop errors.
        self.failover = failover
        #: Operations retriable-by-declaration beyond the stub's own
        #: QIDL ``idempotent`` set.
        self.idempotent_ops = frozenset(idempotent_ops)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReliabilityPolicy(deadline={self.deadline}, "
            f"retries={self.max_retries}, failover={self.failover})"
        )
