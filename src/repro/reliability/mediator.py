"""The reliability mediator: deadlines, retry, breaker, failover.

The MAQS mediator is the designated client-side interception point
(Section 3.3); :class:`ReliabilityMediator` uses it to turn raw
transport failures into recovery:

- **deadlines** — each call gets an absolute simulated-time budget,
  propagated in the :data:`~repro.reliability.policy.DEADLINE_CONTEXT`
  service context so the server's scheduler sheds work the caller will
  no longer wait for; local expiry raises
  :class:`~repro.orb.exceptions.TIMEOUT`.
- **retry with backoff** — failed calls are re-issued under the
  at-most-once rule (idempotent, or provably unexecuted), pausing in
  simulated time per the seeded
  :class:`~repro.reliability.retry.BackoffSchedule` merged with the
  server's retry-after hints via
  :meth:`~repro.sched.backpressure.Backpressure.retry_delay`.
- **circuit breaking** — a per-binding
  :class:`~repro.reliability.breaker.CircuitBreaker` fast-fails calls
  to a binding that keeps dying, with half-open probes.
- **replica failover** — fail-stop errors re-bind to the next member
  of a ``GROUP_TAG`` reference
  (:class:`~repro.reliability.failover.FailoverRotation`); the
  re-binding persists across calls.

Deferred (AMI) calls get the same treatment through
:class:`ReliableReplyFuture`: the underlying future rides the pipeline
untouched, and if its window dies mid-flush the wrapper replays the
call synchronously — only *unacknowledged* futures replay; a future
whose reply was correlated can never be re-issued.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.core.mediator import Mediator
from repro.orb import giop
from repro.orb.ami import ReplyFuture
from repro.orb.exceptions import (
    COMM_FAILURE,
    OVERLOAD,
    SystemException,
    TIMEOUT,
    TRANSIENT,
    is_unexecuted,
    mark_unexecuted,
)
from repro.orb.ior import IOR
from repro.perf.counters import COUNTERS
from repro.reliability.breaker import CircuitBreaker
from repro.reliability.failover import FailoverRotation
from repro.reliability.policy import (
    BREAKER_OPEN_MINOR,
    DEADLINE_CONTEXT,
    ReliabilityPolicy,
)
from repro.reliability.retry import BackoffSchedule

#: Errors that may be worth re-issuing at all (OVERLOAD is a TRANSIENT
#: subclass); everything else — BAD_OPERATION, MARSHAL, user errors —
#: is deterministic and retrying it would only repeat the answer.
RETRIABLE = (COMM_FAILURE, TRANSIENT)


class ReliabilityMediator(Mediator):
    """Client-side recovery for one (or a chain of) bindings."""

    characteristic = "__reliability__"

    def __init__(self, policy: Optional[ReliabilityPolicy] = None) -> None:
        super().__init__()
        self.policy = policy if policy is not None else ReliabilityPolicy()
        self.backoff = BackoffSchedule(self.policy)
        #: binding_key -> CircuitBreaker (one per physical target).
        self._breakers: Dict[str, CircuitBreaker] = {}
        #: original binding_key -> FailoverRotation (persistent re-bind).
        self._rotations: Dict[str, FailoverRotation] = {}
        #: One-shot per-call deadline override (seconds), see
        #: :meth:`deadline_for_next_call`.
        self._next_deadline: Optional[float] = None
        self.retries_used = 0
        self.deadlines_expired = 0

    # -- configuration ----------------------------------------------------

    def deadline_for_next_call(self, seconds: Optional[float]) -> "ReliabilityMediator":
        """Set a one-shot deadline overriding the policy's for one call."""
        if seconds is not None and seconds <= 0.0:
            raise ValueError(f"deadline must be positive: {seconds}")
        self._next_deadline = seconds
        return self

    # -- interception -----------------------------------------------------

    def invoke(self, stub: Any, operation: str, args: Tuple[Any, ...]) -> Any:
        self.calls_intercepted += 1
        deadline_at = self._deadline_at(stub)
        if getattr(stub, "_deferred_depth", 0):
            return self._invoke_deferred(stub, operation, args, deadline_at)
        return self._run(stub, operation, args, deadline_at, attempt=0, error=None)

    # -- the recovery loop ------------------------------------------------

    def _run(
        self,
        stub: Any,
        operation: str,
        args: Tuple[Any, ...],
        deadline_at: Optional[float],
        attempt: int,
        error: Optional[SystemException],
    ) -> Any:
        """Issue (or, with ``error`` set, re-issue) until settled.

        Entered at ``attempt=0, error=None`` for a fresh call, or with
        the failure of an already-issued attempt (the AMI replay path).
        Returns the operation result or raises the terminal exception.
        """
        orb = stub._orb
        while True:
            if error is None:
                self._check_deadline(stub, deadline_at)
                target: Optional[IOR] = None
                try:
                    target = self._select_target(stub, orb.time_source.now())
                    return_value = self._issue(
                        stub, operation, args, target, deadline_at
                    )
                except SystemException as exc:
                    if target is not None:
                        self._breaker(target).record_failure(orb.time_source.now())
                    error = exc
                else:
                    self._breaker(target).record_success()
                    return return_value
            if not self.may_retry(stub, operation, error):
                raise error
            if attempt >= self.policy.max_retries:
                COUNTERS.rel_retry_exhausted += 1
                raise error
            attempt += 1
            self.retries_used += 1
            COUNTERS.rel_retries += 1
            self._pause_and_rebind(stub, error, attempt, deadline_at)
            error = None

    def may_retry(self, stub: Any, operation: str, error: Exception) -> bool:
        """At-most-once gate: is re-issuing ``operation`` safe and useful?"""
        if not isinstance(error, RETRIABLE):
            return False
        if operation in getattr(stub, "_idempotent_ops", frozenset()):
            return True
        if operation in self.policy.idempotent_ops:
            return True
        return is_unexecuted(error)

    def _issue(
        self,
        stub: Any,
        operation: str,
        args: Tuple[Any, ...],
        target: IOR,
        deadline_at: Optional[float],
    ) -> Any:
        contexts = (
            {DEADLINE_CONTEXT: deadline_at} if deadline_at is not None else None
        )
        return stub._invoke(operation, args, contexts, target)

    def _check_deadline(self, stub: Any, deadline_at: Optional[float]) -> None:
        if deadline_at is not None and stub._orb.time_source.now() >= deadline_at:
            self.deadlines_expired += 1
            COUNTERS.rel_deadline_expired += 1
            raise TIMEOUT(
                f"reliability deadline {deadline_at:.6f}s expired before issue"
            )

    def _pause_and_rebind(
        self,
        stub: Any,
        error: SystemException,
        attempt: int,
        deadline_at: Optional[float],
    ) -> None:
        """Wait out the backoff (simulated time) and/or fail over."""
        orb = stub._orb
        rotation = self._rotation(stub)
        failing_host = rotation.active.profile.host
        fail_over = (
            self.policy.failover
            and len(rotation) > 1
            # An overloaded server is alive — stay and back off; a
            # breaker fast-fail means every member looked dead, so
            # rotating again buys nothing over waiting the cooldown.
            and not isinstance(error, OVERLOAD)
            and getattr(error, "minor", 0) != BREAKER_OPEN_MINOR
        )
        if fail_over:
            # Re-bind immediately: a retry-after hint binds the host
            # being left, not the next member (still record it so a
            # later rotation back sees it).
            retry_after = getattr(error, "retry_after", None)
            if retry_after:
                orb.backpressure.note(
                    failing_host, float(retry_after), orb.time_source.now()
                )
            rotation.advance()
            delay = 0.0
        else:
            delay = orb.backpressure.retry_delay(
                failing_host, error, orb.time_source.now(), self.backoff.delay(attempt)
            )
        if deadline_at is not None and orb.time_source.now() + delay >= deadline_at:
            self.deadlines_expired += 1
            COUNTERS.rel_deadline_expired += 1
            raise TIMEOUT(
                f"backoff of {delay:.6f}s would overrun the deadline "
                f"{deadline_at:.6f}s"
            ) from error
        if delay > 0.0:
            orb.time_source.wait(delay)

    # -- deferred (AMI) calls ---------------------------------------------

    def _invoke_deferred(
        self,
        stub: Any,
        operation: str,
        args: Tuple[Any, ...],
        deadline_at: Optional[float],
    ) -> "ReliableReplyFuture":
        future = ReliableReplyFuture(self, stub, operation, args, deadline_at)
        orb = stub._orb
        target: Optional[IOR] = None
        try:
            self._check_deadline(stub, deadline_at)
            target = self._select_target(stub, orb.time_source.now())
            inner = self._issue(stub, operation, args, target, deadline_at)
        except SystemException as exc:
            if target is not None:
                self._breaker(target).record_failure(orb.time_source.now())
            future._complete_with_recovery(exc, attempt=0)
            return future
        future._adopt(inner, target)
        return future

    def _recover_deferred(
        self,
        stub: Any,
        operation: str,
        args: Tuple[Any, ...],
        deadline_at: Optional[float],
        error: SystemException,
        attempt: int,
    ) -> Any:
        """Run the synchronous recovery loop on a deferred call's behalf.

        The deferred flag is parked so re-issues run the synchronous
        path (a replay must settle now, not join another window).
        """
        owner = getattr(stub, "_stub", stub)  # unwrap a chain view
        saved = owner._deferred_depth
        owner._deferred_depth = 0
        try:
            return self._run(stub, operation, args, deadline_at, attempt, error)
        finally:
            owner._deferred_depth = saved

    # -- control-plane membership updates ---------------------------------

    def update_group(
        self,
        stub: Any,
        members: Any,
        draining: Any = (),
        prefer: Optional[int] = None,
    ) -> IOR:
        """Publish a new replica-group view for ``stub``'s rotation.

        Called by the control plane (:mod:`repro.control`) when it
        grows, shrinks or rebalances the group behind a reference:
        ``members`` is the new member list, ``draining`` the binding
        keys of members being retired — the rotation stops selecting
        those immediately, so no new request is dispatched to a
        retiring member after its drain begins.  ``prefer`` biases the
        re-bind so a fleet of clients can be spread deterministically
        across the members.  Returns the (possibly re-bound) active
        member.
        """
        return self.rotation_for(stub).update(members, draining, prefer)

    def rotation_for(self, stub: Any) -> FailoverRotation:
        """The (lazily created) rotation backing ``stub``'s binding."""
        return self._rotation(stub)

    # -- bookkeeping ------------------------------------------------------

    def _deadline_at(self, stub: Any) -> Optional[float]:
        seconds = (
            self._next_deadline
            if self._next_deadline is not None
            else self.policy.deadline
        )
        self._next_deadline = None
        if seconds is None:
            return None
        return stub._orb.time_source.now() + seconds

    def _rotation(self, stub: Any) -> FailoverRotation:
        key = stub._ior.binding_key()
        rotation = self._rotations.get(key)
        if rotation is None:
            rotation = FailoverRotation(stub._ior)
            self._rotations[key] = rotation
        return rotation

    def _breaker(self, target: IOR) -> CircuitBreaker:
        key = target.binding_key()
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(
                self.policy.breaker_threshold, self.policy.breaker_cooldown
            )
            self._breakers[key] = breaker
        return breaker

    def _select_target(self, stub: Any, now: float) -> IOR:
        """The member to call: the active binding, breaker permitting.

        With failover on, members whose breaker is open are skipped
        (persistently re-binding); when every member is dark the call
        fast-fails locally with a breaker-tagged TRANSIENT — marked
        unexecuted, since nothing was sent.
        """
        rotation = self._rotation(stub)
        for _ in range(len(rotation)):
            target = rotation.active
            if self._breaker(target).allow(now):
                return target
            if self.policy.failover and len(rotation) > 1:
                rotation.advance()
            else:
                break
        COUNTERS.rel_breaker_fast_fails += 1
        raise mark_unexecuted(
            TRANSIENT(
                f"circuit breaker open for {rotation.active.binding_key()}",
                minor=BREAKER_OPEN_MINOR,
            )
        )


class ReliableReplyFuture(ReplyFuture):
    """A deferred call's handle with recovery woven in.

    Wraps the pipeline's own :class:`~repro.orb.ami.ReplyFuture`: while
    the window is healthy this is a transparent pass-through (same
    request id, same ready time, same reply bytes).  If the inner
    future fails — the window died mid-flush, the server shed the
    request — the wrapper replays the call through the mediator's
    synchronous recovery loop and resolves exactly once with the final
    outcome.  Futures whose reply arrived are *acknowledged* and are
    never replayed.
    """

    __slots__ = (
        "_mediator",
        "_stub",
        "_operation",
        "_args",
        "_deadline_at",
        "_inner",
        "_target",
    )

    def __init__(
        self,
        mediator: ReliabilityMediator,
        stub: Any,
        operation: str,
        args: Tuple[Any, ...],
        deadline_at: Optional[float],
    ) -> None:
        super().__init__(stub._orb, 0, stub._ior.profile.host, None)
        self._mediator = mediator
        self._stub = stub
        self._operation = operation
        self._args = args
        self._deadline_at = deadline_at
        self._inner: Optional[ReplyFuture] = None
        self._target: Optional[IOR] = None

    def _adopt(self, inner: ReplyFuture, target: IOR) -> None:
        self._inner = inner
        self._target = target
        self.request_id = inner.request_id
        self.dest_host = inner.dest_host
        inner.add_done_callback(self._on_inner_done)

    def flush(self) -> "ReliableReplyFuture":
        inner = self._inner
        if not self._done and inner is not None:
            inner.flush()
        return self

    def _on_inner_done(self, inner: ReplyFuture) -> None:
        if self._done:
            return
        error = inner.error
        orb = self._orb
        known_at = max(orb.time_source.now(), inner.ready_time)
        breaker = self._mediator._breaker(self._target)
        if error is None:
            # Acknowledged: the reply correlated back — never replayed.
            breaker.record_success()
            self._resolve(inner._reply, None, inner.ready_time)
            return
        breaker.record_failure(known_at)
        COUNTERS.rel_replays += 1
        orb.time_source.wait_until(known_at)
        self._complete_with_recovery(error, attempt=0)

    def _complete_with_recovery(
        self, error: SystemException, attempt: int
    ) -> None:
        """Settle this future by running the synchronous recovery loop."""
        orb = self._orb
        try:
            value = self._mediator._recover_deferred(
                self._stub,
                self._operation,
                self._args,
                self._deadline_at,
                error,
                attempt,
            )
        except SystemException as final:
            self._resolve(
                None,
                final,
                orb.time_source.now(),
                transport=bool(getattr(final, "unexecuted", False)),
            )
        else:
            reply = giop.Reply(self.request_id, {}, value, None)
            self._resolve(reply, None, orb.time_source.now())
