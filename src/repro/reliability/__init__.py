"""Client-side reliability: deadlines, retry/backoff, breaker, failover.

The recovery half of the fault-tolerance QoS category (Section 2):
:mod:`repro.netsim.faults` *injects* failures and
:mod:`repro.qos.fault_tolerance` *masks* them server-side; this
package makes the client survive the residue.  Everything runs on the
simulated clock and seeded RNGs, so every recovery trace is
deterministic and replayable — the property the chaos suite
(`tests/reliability/`) checks.

Quick start::

    from repro.reliability import ReliabilityPolicy, reliable

    stub = reliable(
        CounterStub(client_orb, group_ior),
        deadline=0.5, max_retries=4, seed=7,
    )
    stub.increment(1)   # retried / failed over / deadline-bounded
"""

from __future__ import annotations

from typing import Any, Optional

from repro.reliability.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.reliability.failover import FailoverRotation
from repro.reliability.mediator import (
    RETRIABLE,
    ReliabilityMediator,
    ReliableReplyFuture,
)
from repro.reliability.policy import (
    BREAKER_OPEN_MINOR,
    DEADLINE_CONTEXT,
    ReliabilityPolicy,
)
from repro.reliability.retry import BackoffSchedule

__all__ = [
    "BREAKER_OPEN_MINOR",
    "BackoffSchedule",
    "CLOSED",
    "CircuitBreaker",
    "DEADLINE_CONTEXT",
    "FailoverRotation",
    "HALF_OPEN",
    "OPEN",
    "RETRIABLE",
    "ReliabilityMediator",
    "ReliabilityPolicy",
    "ReliableReplyFuture",
    "reliable",
]


def reliable(
    stub: Any, policy: Optional[ReliabilityPolicy] = None, **overrides: Any
) -> Any:
    """Install a :class:`ReliabilityMediator` on ``stub``; returns it.

    Pass a ready :class:`ReliabilityPolicy`, or policy fields as
    keyword arguments (``deadline=0.5, max_retries=4, ...``).
    """
    if policy is not None and overrides:
        raise ValueError("pass either a policy object or field overrides, not both")
    ReliabilityMediator(policy or ReliabilityPolicy(**overrides)).install(stub)
    return stub
