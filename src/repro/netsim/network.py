"""Hosts, links and the transfer-time model.

The model is analytic and deterministic: sending ``n`` bytes over a
path costs, per link, ``latency + n * 8 / effective_bandwidth``.  The
effective bandwidth of a flow on a link is its reserved rate if the
flow holds a reservation (see :mod:`repro.netsim.resources`), and the
link's unreserved capacity otherwise.  A small best-effort floor keeps
unreserved traffic from starving completely, mirroring how reservation
schemes of the paper's era (RSVP/IntServ) left a best-effort class.
"""

from __future__ import annotations

import heapq
import random
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.netsim.clock import Clock

#: Fraction of a link's capacity always left to best-effort traffic.
BEST_EFFORT_FLOOR = 0.05


class NetworkError(Exception):
    """Base class for all simulated communication failures."""


class HostCrashed(NetworkError):
    """The source or destination host is crashed."""


class NoRoute(NetworkError):
    """No path exists between the hosts (unknown host or partition)."""


class PacketLost(NetworkError):
    """The message was dropped by a lossy link."""


#: Sentinel distinguishing "no cache entry" from a cached ``None``
#: (= no route exists) in the route cache.
_ROUTE_MISS = object()


class Host:
    """A named machine in the simulated network.

    ``cpu_factor`` scales servant service times (2.0 = twice as fast).
    ``busy_until`` implements a single-server FIFO queue used by the
    load-balancing experiments: work is serialised per host.
    """

    __slots__ = ("name", "cpu_factor", "crashed", "busy_until", "load")

    def __init__(self, name: str, cpu_factor: float = 1.0) -> None:
        if cpu_factor <= 0.0:
            raise ValueError(f"cpu_factor must be positive: {cpu_factor}")
        self.name = name
        self.cpu_factor = cpu_factor
        self.crashed = False
        self.busy_until = 0.0
        #: Completed work units, used by least-loaded balancing policies.
        self.load = 0

    def occupy(self, now: float, service_time: float) -> float:
        """Queue ``service_time`` seconds of work; return its completion time.

        Work starts when the host becomes free (FIFO) and is scaled by
        the host's CPU factor.
        """
        if service_time < 0.0:
            raise ValueError(f"service_time must be non-negative: {service_time}")
        start = max(now, self.busy_until)
        completion = start + service_time / self.cpu_factor
        self.busy_until = completion
        self.load += 1
        return completion

    def commit_completion(self, completion: float) -> None:
        """Record externally scheduled work finishing at ``completion``.

        The request scheduler plans start/finish times itself (its
        policies reorder work that plain :meth:`occupy` would serve
        FIFO) but still owns this host's CPU: unscheduled dispatch on
        the same host must queue behind scheduled work, so the single-
        server ``busy_until`` is pulled forward to the committed
        completion.
        """
        if completion > self.busy_until:
            self.busy_until = completion
        self.load += 1

    def backlog(self, now: float) -> float:
        """Seconds of committed work still queued at ``now``.

        The placement signal the control plane ranks candidate hosts
        by: zero on an idle host, the residual busy period otherwise.
        """
        return self.busy_until - now if self.busy_until > now else 0.0

    def reset(self) -> None:
        """Clear queue state and failure status (used between runs)."""
        self.crashed = False
        self.busy_until = 0.0
        self.load = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "crashed" if self.crashed else "up"
        return f"Host({self.name!r}, {state})"


class WorkLedger:
    """Committed-work accounting for one virtual server.

    The analytic counterpart of :attr:`Host.busy_until` for a *share*
    of a host: the request scheduler keeps one ledger per QoS class
    and commits each admitted request's (possibly share-expanded)
    service demand at arrival time.  Deterministic by construction —
    the same arrival sequence always produces the same start/finish
    instants, which is what the simulated-time scheduler tests rely
    on.
    """

    __slots__ = ("busy_until", "committed", "completions")

    def __init__(self) -> None:
        self.busy_until = 0.0
        #: Total seconds of work ever committed (for utilisation stats).
        self.committed = 0.0
        #: Number of commits (requests planned onto this ledger).
        self.completions = 0

    def remaining(self, now: float) -> float:
        """Backlog still to be served at ``now``, in seconds."""
        return self.busy_until - now if self.busy_until > now else 0.0

    def commit(self, now: float, seconds: float) -> Tuple[float, float]:
        """Append ``seconds`` of work; returns ``(start, completion)``."""
        if seconds < 0.0:
            raise ValueError(f"work must be non-negative: {seconds}")
        start = max(now, self.busy_until)
        completion = start + seconds
        self.busy_until = completion
        self.committed += seconds
        self.completions += 1
        return start, completion

    def reset(self) -> None:
        self.busy_until = 0.0
        self.committed = 0.0
        self.completions = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkLedger(busy_until={self.busy_until:.6f})"


class Link:
    """A bidirectional link with latency, capacity and optional loss."""

    __slots__ = (
        "a",
        "b",
        "latency",
        "_capacity_bps",
        "reserved_bps",
        "background_flows",
        "fluid_bps",
        "fluid_flows",
        "fluid_bytes",
        "loss_rate",
        "_rng",
        "bytes_carried",
        "messages_carried",
        "messages_lost",
    )

    def __init__(
        self,
        a: Host,
        b: Host,
        latency: float,
        bandwidth_bps: float,
        loss_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        if latency < 0.0:
            raise ValueError(f"latency must be non-negative: {latency}")
        if bandwidth_bps <= 0.0:
            raise ValueError(f"bandwidth must be positive: {bandwidth_bps}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1): {loss_rate}")
        self.a = a
        self.b = b
        self.latency = latency
        self._capacity_bps = float(bandwidth_bps)
        self.reserved_bps = 0.0
        #: Competing best-effort cross-traffic flows sharing this link.
        #: Reserved flows are isolated from them — the IntServ value
        #: proposition the bandwidth experiments demonstrate.
        self.background_flows = 0
        #: Aggregate rate of active fluid-tier flows (bps) and their
        #: count — the coupling point between the analytic flow tier
        #: and the per-message tier: packet messages see fluid demand
        #: subtracted from their best-effort share, and fluid flows see
        #: reservations held by packet-tier bindings.
        self.fluid_bps = 0.0
        self.fluid_flows = 0
        #: Total bytes moved by fluid flows over this link.
        self.fluid_bytes = 0
        self.loss_rate = loss_rate
        self._rng = random.Random(seed)
        self.bytes_carried = 0
        self.messages_carried = 0
        self.messages_lost = 0

    @property
    def capacity_bps(self) -> float:
        """Raw capacity of the link in bits per second."""
        return self._capacity_bps

    def set_capacity(self, bandwidth_bps: float) -> None:
        """Change the link capacity (used by availability traces)."""
        if bandwidth_bps <= 0.0:
            raise ValueError(f"bandwidth must be positive: {bandwidth_bps}")
        self._capacity_bps = float(bandwidth_bps)

    def effective_bandwidth(self, reserved_rate: Optional[float]) -> float:
        """Bandwidth seen by one flow.

        ``reserved_rate`` is the flow's reservation on this link, or
        None for best-effort traffic.  Reserved flows get exactly their
        rate (capped by capacity), isolated from cross traffic;
        best-effort flows share the unreserved capacity fairly with any
        ``background_flows``, never dropping below the best-effort
        floor.
        """
        if reserved_rate is not None:
            return min(reserved_rate, self._capacity_bps)
        free = self._capacity_bps - self.reserved_bps - self.fluid_bps
        if free < 0.0:
            free = 0.0
        share = free / (1 + self.background_flows)
        floor = self._capacity_bps * BEST_EFFORT_FLOOR
        return max(share, floor)

    def fluid_share(self) -> float:
        """Per-flow rate available to one active fluid flow.

        Fluid flows split the unreserved capacity equally among
        themselves (processor sharing), isolated from reservations the
        same way best-effort packet traffic is, and never below the
        best-effort floor.  The count includes the asking flow, so a
        caller must register itself (``fluid_flows += 1``) first.
        """
        free = self._capacity_bps - self.reserved_bps
        if free < 0.0:
            free = 0.0
        share = free / max(1, self.fluid_flows)
        floor = self._capacity_bps * BEST_EFFORT_FLOOR
        return max(share, floor)

    def sample_loss(self) -> bool:
        """Deterministically (per seed) decide whether a message is lost."""
        if self.loss_rate <= 0.0:
            return False
        return self._rng.random() < self.loss_rate

    def endpoints(self) -> Tuple[str, str]:
        return (self.a.name, self.b.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Link({self.a.name}<->{self.b.name}, "
            f"{self.latency * 1e3:.2f}ms, {self._capacity_bps / 1e6:.2f}Mbps)"
        )


class Network:
    """Topology plus the failure and transfer-time model.

    Routing is shortest-path by latency (Dijkstra), recomputed lazily
    whenever the topology or the partition state changes.
    """

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock = clock if clock is not None else Clock()
        self.hosts: Dict[str, Host] = {}
        self._adjacency: Dict[str, Dict[str, Link]] = {}
        self._partition_groups: List[Set[str]] = []
        self._route_cache: Dict[Tuple[str, str], Optional[List[Link]]] = {}
        self.messages_sent = 0
        self.bytes_sent = 0
        #: Bytes of same-host (loopback) messages, which touch no link.
        self.loopback_bytes = 0
        self.route_cache_hits = 0
        self.route_cache_misses = 0

    # -- topology -----------------------------------------------------

    def add_host(self, name: str, cpu_factor: float = 1.0) -> Host:
        """Create and register a host; names must be unique."""
        if name in self.hosts:
            raise ValueError(f"duplicate host name: {name!r}")
        host = Host(name, cpu_factor)
        self.hosts[name] = host
        self._adjacency[name] = {}
        self._route_cache.clear()
        return host

    def host(self, name: str) -> Host:
        """Look up a host by name."""
        try:
            return self.hosts[name]
        except KeyError:
            raise NoRoute(f"unknown host: {name!r}") from None

    def connect(
        self,
        a: str,
        b: str,
        latency: float = 0.001,
        bandwidth_bps: float = 100e6,
        loss_rate: float = 0.0,
        seed: int = 0,
    ) -> Link:
        """Create a bidirectional link between two existing hosts."""
        if a == b:
            raise ValueError("cannot connect a host to itself")
        link = Link(self.host(a), self.host(b), latency, bandwidth_bps, loss_rate, seed)
        self._adjacency[a][b] = link
        self._adjacency[b][a] = link
        self._route_cache.clear()
        return link

    def link_between(self, a: str, b: str) -> Link:
        """Return the direct link between ``a`` and ``b``."""
        try:
            return self._adjacency[a][b]
        except KeyError:
            raise NoRoute(f"no direct link {a!r} <-> {b!r}") from None

    def links(self) -> Iterable[Link]:
        """Iterate over every distinct link once."""
        seen = set()
        for neighbours in self._adjacency.values():
            for link in neighbours.values():
                key = id(link)
                if key not in seen:
                    seen.add(key)
                    yield link

    # -- partitions ---------------------------------------------------

    def set_partitions(self, groups: Iterable[Iterable[str]]) -> None:
        """Partition the network into the given host groups.

        Hosts in different groups cannot communicate.  Hosts not named
        in any group form an implicit extra group together.  An empty
        list heals all partitions.
        """
        self._partition_groups = [set(group) for group in groups]
        self._route_cache.clear()

    def heal_partitions(self) -> None:
        """Remove all partitions."""
        self.set_partitions([])

    @property
    def partitioned(self) -> bool:
        """True while any partition is active."""
        return bool(self._partition_groups)

    def _same_side(self, a: str, b: str) -> bool:
        if not self._partition_groups:
            return True
        group_of: Dict[str, int] = {}
        for index, group in enumerate(self._partition_groups):
            for name in group:
                group_of[name] = index
        implicit = len(self._partition_groups)
        return group_of.get(a, implicit) == group_of.get(b, implicit)

    # -- routing ------------------------------------------------------

    def route(self, src: str, dst: str) -> List[Link]:
        """Shortest-latency path from ``src`` to ``dst`` as a list of links.

        Raises :class:`NoRoute` if none exists (unknown hosts, missing
        connectivity, or an active partition separating the two).
        """
        key = (src, dst)
        path = self._route_cache.get(key, _ROUTE_MISS)
        if path is _ROUTE_MISS:
            self.route_cache_misses += 1
            self.host(src)
            self.host(dst)
            path = [] if src == dst else self._dijkstra(src, dst)
            self._route_cache[key] = path
        else:
            self.route_cache_hits += 1
        if path is None:
            raise NoRoute(f"no route from {src!r} to {dst!r}")
        return path

    def _dijkstra(self, src: str, dst: str) -> Optional[List[Link]]:
        distances: Dict[str, float] = {src: 0.0}
        previous: Dict[str, Tuple[str, Link]] = {}
        frontier: List[Tuple[float, str]] = [(0.0, src)]
        visited: Set[str] = set()
        while frontier:
            dist, node = heapq.heappop(frontier)
            if node in visited:
                continue
            visited.add(node)
            if node == dst:
                break
            for neighbour, link in self._adjacency[node].items():
                if not self._same_side(node, neighbour):
                    continue
                candidate = dist + link.latency
                if candidate < distances.get(neighbour, float("inf")):
                    distances[neighbour] = candidate
                    previous[neighbour] = (node, link)
                    heapq.heappush(frontier, (candidate, neighbour))
        if dst not in previous:
            return None
        path: List[Link] = []
        node = dst
        while node != src:
            node, link = previous[node]
            path.append(link)
        path.reverse()
        return path

    # -- transfer -----------------------------------------------------

    def transfer_delay(
        self,
        src: str,
        dst: str,
        nbytes: int,
        reservations: Optional[Dict[int, float]] = None,
    ) -> float:
        """Time to move ``nbytes`` from ``src`` to ``dst`` (store-and-forward).

        ``reservations`` maps ``id(link) -> reserved bps`` for links on
        which the sending flow holds a reservation.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative: {nbytes}")
        delay = 0.0
        for link in self.route(src, dst):
            reserved = reservations.get(id(link)) if reservations else None
            bandwidth = link.effective_bandwidth(reserved)
            delay += link.latency + (nbytes * 8.0) / bandwidth
        return delay

    def send(
        self,
        src: str,
        dst: str,
        nbytes: int,
        reservations: Optional[Dict[int, float]] = None,
    ) -> float:
        """Validate and account a message; return its transfer delay.

        Raises :class:`HostCrashed`, :class:`NoRoute` or
        :class:`PacketLost` on the corresponding simulated failures.
        The caller (the ORB) decides how the delay advances the clock,
        which allows both synchronous round-trips and one-way sends.
        """
        source, target = self.host(src), self.host(dst)
        if source.crashed:
            raise HostCrashed(f"source host {src!r} is crashed")
        if target.crashed:
            raise HostCrashed(f"destination host {dst!r} is crashed")
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative: {nbytes}")
        path = self.route(src, dst)
        for link in path:
            if link.loss_rate > 0.0 and link.sample_loss():
                link.messages_lost += 1
                raise PacketLost(f"message lost on {link!r}")
        # Inlined transfer_delay: one route lookup, one pass over the
        # path for both the delay model and the accounting.
        delay = 0.0
        nbits = nbytes * 8.0
        for link in path:
            reserved = reservations.get(id(link)) if reservations else None
            delay += link.latency + nbits / link.effective_bandwidth(reserved)
            link.bytes_carried += nbytes
            link.messages_carried += 1
        if not path:
            self.loopback_bytes += nbytes
        self.messages_sent += 1
        self.bytes_sent += nbytes
        return delay

    # -- reporting ----------------------------------------------------

    def path_metrics(self, src: str, dst: str) -> Tuple[List[Link], float, float]:
        """Route plus the figures the fluid tier's analytic models need.

        Returns ``(links, one_way_latency, loss_prob)`` where the loss
        probability is the chance a message survives none of the lossy
        links: ``1 - prod(1 - loss_rate)``.
        """
        links = self.route(src, dst)
        latency = 0.0
        survive = 1.0
        for link in links:
            latency += link.latency
            survive *= 1.0 - link.loss_rate
        return links, latency, 1.0 - survive

    def stats(self) -> Dict[str, float]:
        """Network instrument panel (merged into :func:`repro.perf.snapshot`)."""
        lookups = self.route_cache_hits + self.route_cache_misses
        fluid_bytes = 0
        fluid_active = 0
        for link in self.links():
            fluid_bytes += link.fluid_bytes
            fluid_active += link.fluid_flows
        return {
            "messages_sent": self.messages_sent,
            "bytes_sent": self.bytes_sent,
            "loopback_bytes": self.loopback_bytes,
            "route_cache_hits": self.route_cache_hits,
            "route_cache_misses": self.route_cache_misses,
            "route_cache_hit_rate": (
                self.route_cache_hits / lookups if lookups else 0.0
            ),
            "fluid_link_bytes": fluid_bytes,
            "fluid_active_flows": fluid_active,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Network(hosts={len(self.hosts)}, links={sum(1 for _ in self.links())})"
