"""The fluid execution tier and its packet-mode reference twin.

Both executors run flowlets over the *same* kernel, clock, network and
link-sharing model; they differ only in granularity:

- :class:`FluidFlowExecutor` schedules **one completion event per
  flowlet**.  The transfer time is computed analytically at start:
  per-link processor-sharing rate (``Link.fluid_share``), capped by the
  MSMO97 response curve for the path's RTT and loss, an expected
  ``1/(1-p)`` retransmission factor, plus the CSA00 slow-start excess.
  While active, the flow's average rate is registered as ``fluid_bps``
  demand on every link of its path, which is exactly what packet-tier
  best-effort messages subtract in ``Link.effective_bandwidth`` — the
  coupling that makes hybrid experiments honest.

- :class:`PacketFlowletExecutor` schedules **one event per MSS
  segment**: each segment pays per-link latency plus serialisation at
  the same shared rate, with per-segment sampled loss and
  retransmission.  It is the ground truth the calibration suite holds
  the fluid tier to, and costs O(bytes/MSS) events per flowlet.

Determinism: both executors fold every start and completion into a
running SHA-256 trace digest; identical seeds must give identical
digests, including in hybrid runs with packet-tier foreground traffic.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List

from repro.netsim.fluid.flowlet import Flowlet
from repro.netsim.fluid.models import (
    DEFAULT_MSS,
    DEFAULT_RWND,
    msmo97_throughput,
    startup_excess,
)
from repro.netsim.kernel import EventKernel
from repro.netsim.network import Link, Network
from repro.perf import COUNTERS

#: RTT floor so loopback-ish paths never degenerate the TCP models.
MIN_RTT = 1e-4


class ClassStats:
    """Per-class delay/goodput accumulator shared by both executors."""

    __slots__ = ("started", "completed", "bytes", "total_delay",
                 "first_start", "last_finish")

    def __init__(self) -> None:
        self.started = 0
        self.completed = 0
        self.bytes = 0
        self.total_delay = 0.0
        self.first_start = float("inf")
        self.last_finish = 0.0

    def mean_delay(self) -> float:
        return self.total_delay / self.completed if self.completed else 0.0

    def goodput_bps(self) -> float:
        """Delivered bits over the class's active window."""
        window = self.last_finish - self.first_start
        return self.bytes * 8.0 / window if window > 0.0 else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "started": float(self.started),
            "completed": float(self.completed),
            "bytes": float(self.bytes),
            "mean_delay": self.mean_delay(),
            "goodput_bps": self.goodput_bps(),
        }


class _ExecutorBase:
    """Stats, trace digest and link registration common to both tiers."""

    def __init__(self, network: Network, kernel: EventKernel,
                 mss: int = DEFAULT_MSS, rwnd: int = DEFAULT_RWND) -> None:
        self.network = network
        self.kernel = kernel
        self.mss = mss
        self.rwnd = rwnd
        self.active = 0
        self.active_peak = 0
        self.flowlets_started = 0
        self.flowlets_completed = 0
        self.bytes_completed = 0
        self.classes: Dict[str, ClassStats] = {}
        self._digest = hashlib.sha256()

    # -- bookkeeping --------------------------------------------------

    def _class(self, name: str) -> ClassStats:
        stats = self.classes.get(name)
        if stats is None:
            stats = self.classes[name] = ClassStats()
        return stats

    def _note_start(self, flowlet: Flowlet) -> None:
        now = self.kernel.clock.now
        self.flowlets_started += 1
        self.active += 1
        if self.active > self.active_peak:
            self.active_peak = self.active
            COUNTERS.note_fluid_active(self.active)
        stats = self._class(flowlet.klass)
        stats.started += 1
        if now < stats.first_start:
            stats.first_start = now
        self._digest.update(
            f"S,{now:.9f},{flowlet.klass},{flowlet.nbytes};".encode()
        )
        COUNTERS.fluid_flowlets += 1
        COUNTERS.fluid_flowlet_bytes += flowlet.nbytes

    def _note_completion(self, flowlet: Flowlet, started_at: float) -> None:
        now = self.kernel.clock.now
        self.flowlets_completed += 1
        self.active -= 1
        self.bytes_completed += flowlet.nbytes
        stats = self._class(flowlet.klass)
        stats.completed += 1
        stats.bytes += flowlet.nbytes
        stats.total_delay += now - started_at
        if now > stats.last_finish:
            stats.last_finish = now
        self._digest.update(
            f"C,{now:.9f},{flowlet.klass},{flowlet.nbytes};".encode()
        )
        COUNTERS.fluid_completions += 1

    def trace_digest(self) -> str:
        """Hex digest of every start/completion seen so far, in order."""
        return self._digest.hexdigest()

    def class_summaries(self) -> Dict[str, Dict[str, float]]:
        return {name: stats.summary() for name, stats in self.classes.items()}

    def _path(self, flowlet: Flowlet):
        links, latency, loss = self.network.path_metrics(flowlet.src, flowlet.dst)
        rtt = max(2.0 * latency, MIN_RTT)
        return links, latency, loss, rtt


class FluidFlowExecutor(_ExecutorBase):
    """Analytic tier: one event per flowlet (alias :class:`FluidTier`)."""

    def start(self, flowlet: Flowlet) -> float:
        """Begin a flowlet now; returns its computed completion time."""
        links, latency, loss, rtt = self._path(flowlet)
        for link in links:
            link.fluid_flows += 1

        model_cap = msmo97_throughput(self.mss, rtt, loss, self.rwnd)
        packets = max(1, -(-flowlet.nbytes // self.mss))
        # Expected transmissions per segment under per-segment loss:
        # every retransmission repeats the full per-link trip.
        expect = 1.0 / (1.0 - loss) if 0.0 < loss < 1.0 else 1.0
        nbits = flowlet.nbytes * 8.0
        duration = 0.0
        for link in links:
            rate = min(link.fluid_share(), model_cap)
            duration += expect * (packets * link.latency + nbits / rate)
        if not links:  # loopback: serialisation-free
            duration = MIN_RTT
        duration += startup_excess(
            flowlet.nbytes, self.mss, rtt, loss, self.rwnd
        )

        # Register the flow's life-averaged demand so packet-tier
        # messages crossing these links see the background load.
        demand = flowlet.nbytes * 8.0 / duration
        for link in links:
            link.fluid_bps += demand

        now = self.kernel.clock.now
        self._note_start(flowlet)
        self.kernel.schedule(
            duration, self._complete, flowlet, now, demand, links,
            label="fluid-complete",
        )
        return now + duration

    def _complete(self, flowlet: Flowlet, started_at: float,
                  demand: float, links: List[Link]) -> None:
        for link in links:
            link.fluid_bps = max(0.0, link.fluid_bps - demand)
            link.fluid_flows -= 1
            link.fluid_bytes += flowlet.nbytes
        self._note_completion(flowlet, started_at)


#: The name the rest of the system uses for the analytic tier.
FluidTier = FluidFlowExecutor


class PacketFlowletExecutor(_ExecutorBase):
    """Reference tier: one event per MSS segment, sampled loss.

    The calibration ground truth.  Each active flowlet registers in
    ``Link.fluid_flows`` exactly like a fluid flow, so concurrent
    flowlets contend through the same processor-sharing model; the
    startup excess and MSMO97 rate cap are applied identically.  Loss
    is *sampled* per segment (seeded per start ordinal), so expectations
    in the fluid tier are checked against realised randomness here.
    """

    def __init__(self, network: Network, kernel: EventKernel,
                 mss: int = DEFAULT_MSS, rwnd: int = DEFAULT_RWND,
                 seed: int = 0) -> None:
        super().__init__(network, kernel, mss, rwnd)
        self._seed = seed

    def start(self, flowlet: Flowlet) -> None:
        """Begin a flowlet now: segments go out one event at a time."""
        links, latency, loss, rtt = self._path(flowlet)
        for link in links:
            link.fluid_flows += 1
        self._note_start(flowlet)
        # Seed from the executor-local start ordinal, not the global
        # flowlet id: re-running the same schedule in a fresh process
        # (or after other tests minted flowlets) must replay the same
        # loss samples.
        state = {
            "flowlet": flowlet,
            "links": links,
            "loss": loss,
            "rtt": rtt,
            "remaining": max(1, -(-flowlet.nbytes // self.mss)),
            "started_at": self.kernel.clock.now,
            "rng": random.Random(self._seed ^ (self.flowlets_started * 0x9E3779B1)),
        }
        ramp = startup_excess(flowlet.nbytes, self.mss, rtt, loss, self.rwnd)
        self.kernel.schedule(ramp, self._send_segment, state,
                             label="pkt-segment")

    def _send_segment(self, state: dict) -> None:
        flowlet: Flowlet = state["flowlet"]
        links: List[Link] = state["links"]
        loss: float = state["loss"]
        model_cap = msmo97_throughput(self.mss, state["rtt"], loss, self.rwnd)
        nbits = min(self.mss, flowlet.nbytes) * 8.0
        trip = 0.0
        for link in links:
            rate = min(link.fluid_share(), model_cap)
            trip += link.latency + nbits / rate
        if not links:
            trip = MIN_RTT
        # Sampled geometric retransmissions: every lost copy repeats the
        # full trip (capped so a pathological seed cannot stall a run).
        rng = state["rng"]
        transmissions = 1
        while (
            0.0 < loss < 1.0
            and transmissions < 8
            and rng.random() < loss
        ):
            transmissions += 1
        delay = trip * transmissions
        state["remaining"] -= 1
        if state["remaining"] > 0:
            self.kernel.schedule(delay, self._send_segment, state,
                                 label="pkt-segment")
        else:
            self.kernel.schedule(delay, self._finish, state,
                                 label="pkt-complete")

    def _finish(self, state: dict) -> None:
        flowlet: Flowlet = state["flowlet"]
        for link in state["links"]:
            link.fluid_flows -= 1
            link.fluid_bytes += flowlet.nbytes
        self._note_completion(flowlet, state["started_at"])
