"""Flowlets: the unit of work in the fluid tier.

A flowlet is one burst of application traffic — "N bytes from src to
dst, belonging to QoS class C" — the granularity at which the fluid
tier models load, in the style of Sommers' *fs* simulator.  One flowlet
typically stands in for one client request/response exchange (or, with
cohort aggregation, for a whole batch of clients' exchanges).

:class:`FlowletGenerator` produces deterministic flowlet schedules:
Poisson arrivals with per-class heavy-tailed (bounded-Pareto) or fixed
sizes, everything seeded.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Optional, Sequence, Tuple


class Flowlet:
    """One analytically modelled traffic burst."""

    _ids = itertools.count(1)

    __slots__ = ("flowlet_id", "src", "dst", "nbytes", "klass", "clients")

    def __init__(
        self,
        src: str,
        dst: str,
        nbytes: int,
        klass: str = "be",
        clients: int = 1,
    ) -> None:
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive: {nbytes}")
        self.flowlet_id = next(Flowlet._ids)
        self.src = src
        self.dst = dst
        self.nbytes = nbytes
        #: QoS class label, used for per-class calibration statistics.
        self.klass = klass
        #: How many logical clients this flowlet aggregates (cohorts
        #: merge many clients' bursts into one fluid flow).
        self.clients = clients

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Flowlet(#{self.flowlet_id} {self.src}->{self.dst} "
            f"{self.nbytes}B {self.klass!r})"
        )


class FlowletClass:
    """Size model for one traffic class.

    ``alpha`` > 0 selects a bounded Pareto over ``[min_bytes,
    max_bytes]`` (heavy-tailed bulk transfers); ``alpha`` = 0 yields
    the fixed size ``min_bytes`` (interactive request/response).
    """

    __slots__ = ("name", "share", "min_bytes", "max_bytes", "alpha")

    def __init__(
        self,
        name: str,
        share: float,
        min_bytes: int,
        max_bytes: Optional[int] = None,
        alpha: float = 0.0,
    ) -> None:
        if share <= 0.0:
            raise ValueError(f"share must be positive: {share}")
        if min_bytes <= 0:
            raise ValueError(f"min_bytes must be positive: {min_bytes}")
        self.name = name
        self.share = share
        self.min_bytes = min_bytes
        self.max_bytes = max_bytes if max_bytes is not None else min_bytes
        if self.max_bytes < min_bytes:
            raise ValueError("max_bytes must be >= min_bytes")
        self.alpha = alpha

    def sample_bytes(self, rng: random.Random) -> int:
        """Draw one flowlet size."""
        if self.alpha <= 0.0 or self.max_bytes == self.min_bytes:
            return self.min_bytes
        return bounded_pareto(rng, self.alpha, self.min_bytes, self.max_bytes)


def bounded_pareto(rng: random.Random, alpha: float, lo: int, hi: int) -> int:
    """One draw from a bounded Pareto(alpha) on ``[lo, hi]`` (inverse CDF)."""
    if not lo < hi:
        raise ValueError(f"need lo < hi: {lo}, {hi}")
    u = rng.random()
    la, ha = lo**alpha, hi**alpha
    x = (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / alpha)
    return int(min(max(x, lo), hi))


#: Default two-class mix: short interactive exchanges plus a
#: heavy-tailed bulk class, the canonical mice-and-elephants split.
DEFAULT_CLASSES: Tuple[FlowletClass, ...] = (
    FlowletClass("interactive", share=3.0, min_bytes=8_192),
    FlowletClass("bulk", share=1.0, min_bytes=30_000, max_bytes=2_000_000,
                 alpha=1.2),
)


class FlowletGenerator:
    """Deterministic, seeded flowlet schedules.

    Two generators built with the same seed and classes produce
    element-wise identical schedules (times, sizes, classes) — the
    property the determinism suite pins down.
    """

    def __init__(
        self,
        seed: int = 0,
        classes: Sequence[FlowletClass] = DEFAULT_CLASSES,
    ) -> None:
        if not classes:
            raise ValueError("need at least one flowlet class")
        self._rng = random.Random(seed)
        self.classes = tuple(classes)
        self._weights = [c.share for c in self.classes]

    def sample(self, src: str, dst: str, clients: int = 1) -> Flowlet:
        """Draw one flowlet: class by share weight, size by class model."""
        chosen = self._rng.choices(self.classes, weights=self._weights)[0]
        nbytes = chosen.sample_bytes(self._rng) * clients
        return Flowlet(src, dst, nbytes, chosen.name, clients)

    def poisson(
        self,
        src: str,
        dst: str,
        rate: float,
        duration: float,
        start: float = 0.0,
        clients: int = 1,
    ) -> List[Tuple[float, Flowlet]]:
        """A Poisson flowlet arrival schedule: ``[(time, flowlet), ...]``."""
        if rate <= 0.0:
            raise ValueError(f"rate must be positive: {rate}")
        schedule: List[Tuple[float, Flowlet]] = []
        now = start
        while True:
            now += self._rng.expovariate(rate)
            if now > start + duration:
                return schedule
            schedule.append((now, self.sample(src, dst, clients)))

    def class_mix(self) -> Dict[str, float]:
        """Normalised share of arrivals per class."""
        total = sum(self._weights)
        return {c.name: c.share / total for c in self.classes}
