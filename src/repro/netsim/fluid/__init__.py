"""Fluid (flow-level) simulation tier.

The packet tier models every GIOP message as a discrete event, which
caps experiments at thousands of clients.  This package adds the
coarse tier in the style of Sommers' *fs*: background traffic becomes
**flowlets** whose transfer times come from analytic TCP models
(MSMO97 response curve, CSA00 transfer-time model) — one kernel event
per flowlet instead of one per message — while foreground objects keep
the exact per-message path.  The tiers couple through the shared
links: fluid demand (``Link.fluid_bps``) is subtracted from packet
messages' best-effort bandwidth, and fluid flows see reservations held
by packet-tier bindings.

Public surface:

- :mod:`~repro.netsim.fluid.models` — ``msmo97_throughput``,
  ``csa00_transfer_time``, ``startup_excess``.
- :class:`~repro.netsim.fluid.flowlet.Flowlet`,
  :class:`~repro.netsim.fluid.flowlet.FlowletClass`,
  :class:`~repro.netsim.fluid.flowlet.FlowletGenerator`.
- :class:`~repro.netsim.fluid.tier.FluidTier` (the analytic executor)
  and :class:`~repro.netsim.fluid.tier.PacketFlowletExecutor` (the
  per-segment ground truth used for calibration).
- :func:`~repro.netsim.fluid.calibrate.calibrate` — the shared-scenario
  calibration suite.
"""

from repro.netsim.fluid.calibrate import (
    DEFAULT_TOLERANCE,
    Scenario,
    calibrate,
    compare_tiers,
    default_scenarios,
)
from repro.netsim.fluid.flowlet import (
    DEFAULT_CLASSES,
    Flowlet,
    FlowletClass,
    FlowletGenerator,
    bounded_pareto,
)
from repro.netsim.fluid.models import (
    DEFAULT_MSS,
    DEFAULT_RWND,
    csa00_transfer_time,
    msmo97_throughput,
    startup_excess,
)
from repro.netsim.fluid.tier import (
    FluidFlowExecutor,
    FluidTier,
    PacketFlowletExecutor,
)

__all__ = [
    "DEFAULT_CLASSES",
    "DEFAULT_MSS",
    "DEFAULT_RWND",
    "DEFAULT_TOLERANCE",
    "Flowlet",
    "FlowletClass",
    "FlowletGenerator",
    "FluidFlowExecutor",
    "FluidTier",
    "PacketFlowletExecutor",
    "Scenario",
    "bounded_pareto",
    "calibrate",
    "compare_tiers",
    "csa00_transfer_time",
    "default_scenarios",
    "msmo97_throughput",
    "startup_excess",
]
