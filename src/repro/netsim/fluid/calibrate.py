"""Calibration: hold the fluid tier to the packet tier's numbers.

A calibration scenario is a topology plus a seeded flowlet schedule.
The harness replays the *same* schedule through both executors —
:class:`~repro.netsim.fluid.tier.PacketFlowletExecutor` (per-segment
events, sampled loss: the ground truth) and
:class:`~repro.netsim.fluid.tier.FluidFlowExecutor` (one analytic event
per flowlet) — and compares per-class mean delay and goodput.  The
tier-1 suite asserts every error stays within
:data:`DEFAULT_TOLERANCE`; the fluid benchmark records the same report
in ``BENCH_fluid.json``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.netsim.fluid.flowlet import FlowletClass, FlowletGenerator
from repro.netsim.fluid.tier import (
    FluidFlowExecutor,
    PacketFlowletExecutor,
    _ExecutorBase,
)
from repro.netsim.kernel import EventKernel
from repro.netsim.network import Network
from repro.netsim.resources import ResourceManager

#: Maximum tolerated relative error on per-class mean delay and goodput.
DEFAULT_TOLERANCE = 0.15

#: Calibration traffic mix: mice and (bounded) elephants.  The bulk
#: ceiling is kept modest so the packet-mode ground truth stays cheap.
CALIBRATION_CLASSES: Tuple[FlowletClass, ...] = (
    FlowletClass("interactive", share=3.0, min_bytes=8_192),
    FlowletClass("bulk", share=1.0, min_bytes=30_000, max_bytes=300_000,
                 alpha=1.3),
)


class Scenario:
    """One shared calibration workload."""

    def __init__(
        self,
        name: str,
        build: Callable[[Network, ResourceManager], None],
        src: str,
        dst: str,
        rate: float,
        duration: float,
        seed: int = 0,
        classes: Sequence[FlowletClass] = CALIBRATION_CLASSES,
    ) -> None:
        self.name = name
        self.build = build
        self.src = src
        self.dst = dst
        self.rate = rate
        self.duration = duration
        self.seed = seed
        self.classes = tuple(classes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Scenario({self.name!r}, {self.rate}/s x {self.duration}s)"


def _lan_bottleneck(network: Network, resources: ResourceManager) -> None:
    network.add_host("client")
    network.add_host("server")
    network.connect("client", "server", latency=0.002, bandwidth_bps=20e6)


def _wan_lossy(network: Network, resources: ResourceManager) -> None:
    network.add_host("edge")
    network.add_host("core")
    network.connect("edge", "core", latency=0.020, bandwidth_bps=10e6,
                    loss_rate=0.02)


def _reserved_contention(network: Network, resources: ResourceManager) -> None:
    network.add_host("client")
    network.add_host("server")
    network.connect("client", "server", latency=0.005, bandwidth_bps=10e6)
    # A packet-tier binding holds half the link; fluid aggregates must
    # see the reservation (they split only the unreserved remainder).
    resources.reserve("client", "server", 5e6)


def _multi_hop(network: Network, resources: ResourceManager) -> None:
    network.add_host("client")
    network.add_host("router")
    network.add_host("server")
    network.connect("client", "router", latency=0.003, bandwidth_bps=50e6)
    network.connect("router", "server", latency=0.008, bandwidth_bps=15e6)


def default_scenarios() -> List[Scenario]:
    """The shared scenarios the acceptance criteria name (>= 3)."""
    return [
        Scenario("lan_bottleneck", _lan_bottleneck, "client", "server",
                 rate=12.0, duration=8.0, seed=11),
        Scenario("wan_lossy", _wan_lossy, "edge", "core",
                 rate=6.0, duration=8.0, seed=23),
        Scenario("reserved_contention", _reserved_contention,
                 "client", "server", rate=8.0, duration=8.0, seed=37),
        Scenario("multi_hop", _multi_hop, "client", "server",
                 rate=10.0, duration=8.0, seed=53),
    ]


def run_tier(
    scenario: Scenario, packet_mode: bool
) -> Tuple[Dict[str, Dict[str, float]], _ExecutorBase]:
    """Replay one scenario on one tier; returns per-class summaries."""
    kernel = EventKernel()
    network = Network(kernel.clock)
    resources = ResourceManager(network)
    scenario.build(network, resources)
    if packet_mode:
        executor: _ExecutorBase = PacketFlowletExecutor(
            network, kernel, seed=scenario.seed
        )
    else:
        executor = FluidFlowExecutor(network, kernel)
    generator = FlowletGenerator(scenario.seed, scenario.classes)
    schedule = generator.poisson(
        scenario.src, scenario.dst, scenario.rate, scenario.duration
    )
    for time, flowlet in schedule:
        kernel.schedule_at(time, executor.start, flowlet,
                           label="flowlet-arrival")
    kernel.run()
    return executor.class_summaries(), executor


def _relative_error(observed: float, reference: float) -> float:
    if reference == 0.0:
        return 0.0 if observed == 0.0 else float("inf")
    return abs(observed - reference) / reference


def compare_tiers(scenario: Scenario) -> Dict[str, object]:
    """Both tiers on one scenario, with per-class relative errors."""
    packet, packet_executor = run_tier(scenario, packet_mode=True)
    fluid, fluid_executor = run_tier(scenario, packet_mode=False)
    classes: Dict[str, Dict[str, float]] = {}
    worst = 0.0
    for name in sorted(set(packet) | set(fluid)):
        p = packet.get(name, {})
        f = fluid.get(name, {})
        delay_err = _relative_error(
            f.get("mean_delay", 0.0), p.get("mean_delay", 0.0)
        )
        goodput_err = _relative_error(
            f.get("goodput_bps", 0.0), p.get("goodput_bps", 0.0)
        )
        worst = max(worst, delay_err, goodput_err)
        classes[name] = {
            "packet_mean_delay": p.get("mean_delay", 0.0),
            "fluid_mean_delay": f.get("mean_delay", 0.0),
            "delay_error": delay_err,
            "packet_goodput_bps": p.get("goodput_bps", 0.0),
            "fluid_goodput_bps": f.get("goodput_bps", 0.0),
            "goodput_error": goodput_err,
            "flowlets": p.get("completed", 0.0),
        }
    return {
        "scenario": scenario.name,
        "classes": classes,
        "max_error": worst,
        "packet_events": packet_executor.kernel.events_fired,
        "fluid_events": fluid_executor.kernel.events_fired,
        "event_ratio": (
            packet_executor.kernel.events_fired
            / max(1, fluid_executor.kernel.events_fired)
        ),
    }


def calibrate(
    scenarios: Optional[Sequence[Scenario]] = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Dict[str, object]:
    """Run the whole calibration suite; ``ok`` iff every error fits."""
    results = [compare_tiers(s) for s in (scenarios or default_scenarios())]
    worst = max((r["max_error"] for r in results), default=0.0)
    return {
        "tolerance": tolerance,
        "scenarios": results,
        "max_error": worst,
        "ok": worst <= tolerance,
    }
