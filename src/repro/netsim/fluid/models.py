"""Analytic TCP throughput and transfer-time models.

Two classic results parameterise the fluid tier:

- **MSMO97** (Mathis, Semke, Mahdavi, Ott, *The Macroscopic Behavior of
  the TCP Congestion Avoidance Algorithm*, CCR 1997): the steady-state
  throughput response curve ``rate = (MSS/RTT) * C / sqrt(p)``, capped
  by the receive window.  The fluid tier uses it to bound a flow's rate
  on lossy paths, and the packet-mode reference executor applies the
  same cap per message so both tiers answer to one response curve.

- **CSA00** (Cardwell, Savage, Anderson, *Modeling TCP Latency*,
  INFOCOM 2000): expected transfer time for a *finite* flow, including
  the slow-start ramp and loss-recovery costs that dominate short
  transfers.  The fluid tier folds it in as a per-flowlet startup
  excess over the steady-rate approximation.

Unlike the original fs implementation, everything here is a
deterministic expectation — no sampled initial window — because the
calibration and determinism suites require identical inputs to yield
identical durations.
"""

from __future__ import annotations

from math import ceil, floor, log, sqrt

#: Default maximum segment size (Ethernet-ish), in bytes.
DEFAULT_MSS = 1460
#: Default receive window, in bytes.
DEFAULT_RWND = 1 << 20
#: Slow-start growth factor per RTT under delayed ACKs (CSA00's gamma).
GAMMA = 1.5
#: Deterministic initial congestion window, in segments.
INITIAL_WINDOW = 2
#: Mathis constant sqrt(3/2) for periodic-loss congestion avoidance.
_MATHIS_C = sqrt(1.5)
#: Loss probabilities above this are clamped: the CSA00 formulas lose
#: their domain (and TCP its throughput) long before p = 0.5.
_MAX_LOSS = 0.4


def _packets(nbytes: int, mss: int) -> int:
    """Number of MSS-sized segments needed for ``nbytes`` (at least 1)."""
    if nbytes <= 0:
        return 1
    return ceil(nbytes / mss)


def msmo97_throughput(
    mss: int,
    rtt: float,
    loss: float,
    rwnd: int = DEFAULT_RWND,
) -> float:
    """Steady-state TCP throughput in bits per second.

    The MSMO97 square-root response curve, capped by the receive
    window.  With zero loss the flow is purely window-limited.
    """
    if rtt <= 0.0:
        raise ValueError(f"rtt must be positive: {rtt}")
    if mss <= 0:
        raise ValueError(f"mss must be positive: {mss}")
    window_limit = rwnd * 8.0 / rtt
    if loss <= 0.0:
        return window_limit
    p = min(loss, _MAX_LOSS)
    rate = (mss * 8.0 / rtt) * _MATHIS_C / sqrt(p)
    return min(rate, window_limit)


def _slow_start_rounds(packets: int, initial_window: int, gamma: float) -> float:
    """RTT rounds to emit ``packets`` segments in exponential slow start.

    The window grows by ``gamma`` each round, so ``k`` rounds carry
    ``iw * (gamma**k - 1) / (gamma - 1)`` segments.
    """
    if packets <= initial_window:
        return 1.0
    return log(packets * (gamma - 1.0) / initial_window + 1.0, gamma)


def csa00_transfer_time(
    nbytes: int,
    mss: int,
    rtt: float,
    loss: float,
    rwnd: int = DEFAULT_RWND,
) -> float:
    """Expected time to transfer ``nbytes`` over one TCP flow, in seconds.

    CSA00's decomposition: slow-start time, expected loss-recovery
    cost, then the remaining data at the steady-state (MSMO97) rate.
    With zero loss the transfer is slow start up to the window limit
    followed by window-limited delivery.
    """
    if rtt <= 0.0:
        raise ValueError(f"rtt must be positive: {rtt}")
    d = _packets(nbytes, mss)
    wmax = max(1.0, rwnd / mss)
    iw = float(INITIAL_WINDOW)

    if loss <= 0.0:
        rounds_needed = _slow_start_rounds(d, INITIAL_WINDOW, GAMMA)
        rounds_to_wmax = (
            log(wmax / iw, GAMMA) if wmax > iw else 0.0
        )
        if rounds_needed <= rounds_to_wmax or rounds_to_wmax <= 0.0:
            return ceil(rounds_needed) * rtt
        sent_in_ramp = iw * (GAMMA ** rounds_to_wmax - 1.0) / (GAMMA - 1.0)
        remaining = max(0.0, d - sent_in_ramp)
        return ceil(rounds_to_wmax) * rtt + remaining / wmax * rtt

    p = min(loss, _MAX_LOSS)

    # Expected segments delivered in the initial slow-start phase (eq 5).
    edss = floor((1.0 - (1.0 - p) ** d) * (1.0 - p) / p + 1.0)
    edss = min(max(edss, 1.0), float(d))
    # Expected window at the end of slow start (eq 11).
    ewss = edss * (GAMMA - 1.0) / GAMMA + iw / GAMMA
    # Expected slow-start duration (eq 15).
    if ewss > wmax:
        etss = rtt * (
            log(wmax / iw, GAMMA)
            + 1.0
            + 1.0 / wmax * (edss - (GAMMA * wmax - iw) / (GAMMA - 1.0))
        )
    else:
        etss = rtt * log(edss * (GAMMA - 1.0) / iw + 1.0, GAMMA)
    etss = max(etss, rtt)

    # Probability slow start ends with a loss (eq 16) and the expected
    # recovery cost: either an RTO (eq 17-19) or a fast retransmit RTT.
    lss = 1.0 - (1.0 - p) ** d
    w = max(ewss, 4.0)
    q_denominator = (1.0 - (1.0 - p) ** w) / (1.0 - (1.0 - p) ** 3)
    q = min(
        1.0,
        (1.0 + (1.0 - p) ** 3 * (1.0 - (1.0 - p) ** (w - 3.0))) / q_denominator,
    )
    g = 1.0 + p + 2.0 * p**2 + 4.0 * p**3 + 8.0 * p**4 + 16.0 * p**5 + 32.0 * p**6
    rto = 2.0 * rtt
    ezto = g * rto / (1.0 - p)
    etloss = lss * (q * ezto + (1.0 - q) * rtt)

    # Remaining data drains at the steady-state response-curve rate.
    edca = max(0.0, d - edss)
    rate = msmo97_throughput(mss, rtt, p, rwnd)
    etca = edca * mss * 8.0 / rate

    return etss + etloss + etca


def startup_excess(
    nbytes: int,
    mss: int,
    rtt: float,
    loss: float = 0.0,
    rwnd: int = DEFAULT_RWND,
) -> float:
    """Ramp-up cost beyond the steady-rate fluid approximation, seconds.

    The fluid tier models a flowlet draining at its bottleneck share
    from the first instant; real TCP pays slow start first.  This is
    the CSA00 expected transfer time minus the time the same bytes
    would take at the steady-state rate — the per-flowlet correction
    both simulation tiers add, keeping them calibrated against the
    same response curve.
    """
    total = csa00_transfer_time(nbytes, mss, rtt, loss, rwnd)
    rate = msmo97_throughput(mss, rtt, loss, rwnd)
    steady = nbytes * 8.0 / rate if rate > 0.0 else 0.0
    return max(0.0, total - steady)
