"""Deterministic simulated network substrate.

The paper's MAQS framework was evaluated on real IP networks; this
package replaces that testbed with a deterministic simulation so that
every QoS effect the paper relies on — transfer time as a function of
bandwidth, multicast fan-out, reservation, crashes and partitions — is
reproducible in tests and benchmarks.

Public surface:

- :class:`~repro.netsim.clock.Clock` — the logical time base.
- :class:`~repro.netsim.kernel.EventKernel` — discrete-event scheduler.
- :class:`~repro.netsim.network.Network`, :class:`Host`, :class:`Link`
  — the topology and the transfer-time model.
- :class:`~repro.netsim.multicast.MulticastGroup` — group communication.
- :class:`~repro.netsim.resources.ResourceManager` — bandwidth
  reservation and time-varying capacity.
- :class:`~repro.netsim.faults.FaultInjector` — crash/recover,
  partitions and message-loss schedules.
"""

from repro.netsim.clock import Clock
from repro.netsim.kernel import EventKernel
from repro.netsim.network import (
    Host,
    HostCrashed,
    Link,
    Network,
    NetworkError,
    NoRoute,
    PacketLost,
)
from repro.netsim.multicast import MulticastGroup
from repro.netsim.resources import (
    InsufficientBandwidth,
    Reservation,
    ResourceManager,
)
from repro.netsim.faults import FaultInjector
from repro.netsim.fluid import (
    Flowlet,
    FlowletGenerator,
    FluidTier,
    PacketFlowletExecutor,
)

__all__ = [
    "Clock",
    "EventKernel",
    "FaultInjector",
    "Flowlet",
    "FlowletGenerator",
    "FluidTier",
    "PacketFlowletExecutor",
    "Host",
    "HostCrashed",
    "InsufficientBandwidth",
    "Link",
    "MulticastGroup",
    "Network",
    "NetworkError",
    "NoRoute",
    "PacketLost",
    "Reservation",
    "ResourceManager",
]
