"""Multicast group communication.

The paper reuses network-layer multicast for replica groups
("a multicast on network layer can be used for k-availability as well
as for diversity through majority votes", Section 6).  A
:class:`MulticastGroup` delivers one logical send to every live member
and reports per-member outcomes, so callers can implement both
best-effort fan-out and reliable (all-or-report) semantics.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.netsim.network import Network, NetworkError


class MulticastError(Exception):
    """Raised on invalid group operations (duplicate join, unknown member)."""


class DeliveryReport:
    """Outcome of one multicast send."""

    __slots__ = ("delays", "failures")

    def __init__(self, delays: Dict[str, float], failures: Dict[str, NetworkError]):
        #: member host name -> transfer delay for successful deliveries
        self.delays = delays
        #: member host name -> the failure that prevented delivery
        self.failures = failures

    @property
    def delivered(self) -> List[str]:
        return sorted(self.delays)

    @property
    def failed(self) -> List[str]:
        return sorted(self.failures)

    def all_delivered(self) -> bool:
        return not self.failures

    def max_delay(self) -> float:
        """Delay until the slowest successful delivery (0.0 if none)."""
        return max(self.delays.values(), default=0.0)


class MulticastGroup:
    """A named group of hosts reachable by one logical send.

    The group address is modelled as the member list; transfer costs
    are per-member unicast over the simulated topology, which matches
    how IP multicast trees degenerate in a small LAN testbed.
    """

    def __init__(self, network: Network, address: str) -> None:
        self.network = network
        self.address = address
        self._members: List[str] = []

    @property
    def members(self) -> List[str]:
        """Current members in join order."""
        return list(self._members)

    def join(self, host_name: str) -> None:
        """Add a host to the group."""
        self.network.host(host_name)  # validate existence
        if host_name in self._members:
            raise MulticastError(f"{host_name!r} already in group {self.address!r}")
        self._members.append(host_name)

    def leave(self, host_name: str) -> None:
        """Remove a host from the group."""
        try:
            self._members.remove(host_name)
        except ValueError:
            raise MulticastError(
                f"{host_name!r} not in group {self.address!r}"
            ) from None

    def send(self, src: str, nbytes: int, exclude_self: bool = True) -> DeliveryReport:
        """Deliver ``nbytes`` from ``src`` to every member.

        Members that cannot be reached (crashed, partitioned, lossy
        drop) appear in the report's ``failures`` instead of raising,
        so one dead replica never aborts the whole fan-out.
        """
        delays: Dict[str, float] = {}
        failures: Dict[str, NetworkError] = {}
        for member in self._members:
            if exclude_self and member == src:
                continue
            try:
                delays[member] = self.network.send(src, member, nbytes)
            except NetworkError as error:
                failures[member] = error
        return DeliveryReport(delays, failures)

    def live_members(self) -> List[str]:
        """Members whose hosts are currently up."""
        return [m for m in self._members if not self.network.host(m).crashed]

    def __len__(self) -> int:
        return len(self._members)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MulticastGroup({self.address!r}, members={self._members})"
