"""Fault injection: crashes, recoveries, partitions and loss.

Drives the fault-tolerance experiments (E4).  Faults can be applied
immediately or scheduled on an :class:`~repro.netsim.kernel.EventKernel`
so that crash/recover traces interleave deterministically with the
request workload.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.netsim.kernel import EventKernel
from repro.netsim.network import Link, Network


class FaultInjector:
    """Apply and schedule failures on a :class:`Network`."""

    def __init__(self, network: Network, kernel: Optional[EventKernel] = None):
        self.network = network
        self.kernel = kernel
        self.log: List[Tuple[float, str]] = []

    def _record(self, description: str) -> None:
        self.log.append((self.network.clock.now, description))

    def _require_kernel(self) -> EventKernel:
        if self.kernel is None:
            raise RuntimeError("scheduling faults requires an EventKernel")
        return self.kernel

    # -- immediate faults ----------------------------------------------

    def crash(self, host_name: str) -> None:
        """Crash a host now; in-flight state is lost (fail-stop model)."""
        self.network.host(host_name).crashed = True
        self._record(f"crash {host_name}")

    def recover(self, host_name: str) -> None:
        """Bring a crashed host back up (empty queue, no state)."""
        host = self.network.host(host_name)
        host.crashed = False
        host.busy_until = self.network.clock.now
        self._record(f"recover {host_name}")

    def partition(self, *groups: Iterable[str]) -> None:
        """Split the network into the given groups."""
        self.network.set_partitions(groups)
        self._record(f"partition {[sorted(g) for g in map(set, groups)]}")

    def heal(self) -> None:
        """Heal all partitions."""
        self.network.heal_partitions()
        self._record("heal")

    def set_loss(self, link: Link, loss_rate: float) -> None:
        """Make a link lossy from now on."""
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1): {loss_rate}")
        link.loss_rate = loss_rate
        self._record(f"loss {link.endpoints()} p={loss_rate}")

    # -- scheduled faults ----------------------------------------------

    def crash_at(self, time: float, host_name: str) -> None:
        """Schedule a crash at an absolute simulated time."""
        self._require_kernel().schedule_at(
            time, self.crash, host_name, label=f"crash:{host_name}"
        )

    def recover_at(self, time: float, host_name: str) -> None:
        """Schedule a recovery at an absolute simulated time."""
        self._require_kernel().schedule_at(
            time, self.recover, host_name, label=f"recover:{host_name}"
        )

    def crash_schedule(
        self, schedule: Sequence[Tuple[float, float, str]]
    ) -> None:
        """Schedule ``(crash_time, recover_time, host)`` triples.

        A ``recover_time`` of ``float('inf')`` means the host never
        comes back.
        """
        for crash_time, recover_time, host_name in schedule:
            if recover_time <= crash_time and recover_time != float("inf"):
                raise ValueError(
                    f"recover ({recover_time}) must follow crash ({crash_time})"
                )
            self.crash_at(crash_time, host_name)
            if recover_time != float("inf"):
                self.recover_at(recover_time, host_name)
