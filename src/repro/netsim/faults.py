"""Fault injection: crashes, recoveries, partitions and loss.

Drives the fault-tolerance experiments (E4).  Faults can be applied
immediately or scheduled on an :class:`~repro.netsim.kernel.EventKernel`
so that crash/recover traces interleave deterministically with the
request workload.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.netsim.kernel import EventKernel
from repro.netsim.network import Link, Network


class FaultInjector:
    """Apply and schedule failures on a :class:`Network`."""

    def __init__(self, network: Network, kernel: Optional[EventKernel] = None):
        self.network = network
        self.kernel = kernel
        self.log: List[Tuple[float, str]] = []
        #: Fire times of partitions scheduled via :meth:`partition_at`;
        #: :meth:`heal_at` validates against them (a heal scheduled
        #: before any partition exists used to be accepted silently and
        #: left the partition in place forever).
        self._scheduled_partitions: List[float] = []

    def _record(self, description: str, at: Optional[float] = None) -> None:
        # ``at`` is the *scheduled* fire time of a kernel-driven fault.
        # The clock cannot be trusted for that: a synchronous workload
        # step may have advanced it past the fault's instant before the
        # kernel re-enters here (Clock.advance_to tolerates the past),
        # which used to log the apply time instead of the fire time.
        self.log.append((self.network.clock.now if at is None else at, description))

    def _require_kernel(self) -> EventKernel:
        if self.kernel is None:
            raise RuntimeError("scheduling faults requires an EventKernel")
        return self.kernel

    # -- immediate faults ----------------------------------------------

    def crash(self, host_name: str, at: Optional[float] = None) -> None:
        """Crash a host now; in-flight state is lost (fail-stop model)."""
        self.network.host(host_name).crashed = True
        self._record(f"crash {host_name}", at)

    def recover(self, host_name: str, at: Optional[float] = None) -> None:
        """Bring a crashed host back up (empty queue, no state)."""
        host = self.network.host(host_name)
        host.crashed = False
        host.busy_until = self.network.clock.now
        self._record(f"recover {host_name}", at)

    def partition(self, *groups: Iterable[str], at: Optional[float] = None) -> None:
        """Split the network into the given groups."""
        self.network.set_partitions(groups)
        self._record(f"partition {[sorted(g) for g in map(set, groups)]}", at)

    def heal(self, at: Optional[float] = None) -> None:
        """Heal all partitions."""
        self.network.heal_partitions()
        self._record("heal", at)

    def set_loss(
        self, link: Link, loss_rate: float, at: Optional[float] = None
    ) -> None:
        """Make a link lossy from now on."""
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1): {loss_rate}")
        link.loss_rate = loss_rate
        self._record(f"loss {link.endpoints()} p={loss_rate}", at)

    # -- scheduled faults ----------------------------------------------

    def crash_at(self, time: float, host_name: str) -> None:
        """Schedule a crash at an absolute simulated time."""
        self._require_kernel().schedule_at(
            time, self.crash, host_name, at=time, label=f"crash:{host_name}"
        )

    def recover_at(self, time: float, host_name: str) -> None:
        """Schedule a recovery at an absolute simulated time."""
        self._require_kernel().schedule_at(
            time, self.recover, host_name, at=time, label=f"recover:{host_name}"
        )

    def partition_at(self, time: float, *groups: Iterable[str]) -> None:
        """Schedule a partition at an absolute simulated time."""
        frozen = [tuple(group) for group in groups]
        self._require_kernel().schedule_at(
            time, self.partition, *frozen, at=time, label="partition"
        )
        self._scheduled_partitions.append(time)

    def heal_at(self, time: float) -> None:
        """Schedule the healing of all partitions.

        The heal must land after a partition it can heal: either one is
        active right now, or one was scheduled (via :meth:`partition_at`)
        to fire at or before ``time``.  Anything else is a scripting
        error that used to pass silently and leave the partition in
        place forever.
        """
        if not self.network.partitioned and not any(
            fire <= time for fire in self._scheduled_partitions
        ):
            earliest = (
                min(self._scheduled_partitions)
                if self._scheduled_partitions
                else None
            )
            detail = (
                f"the earliest scheduled partition fires at {earliest}"
                if earliest is not None
                else "no partition is active or scheduled"
            )
            raise ValueError(
                f"heal_at({time}) has nothing to heal: {detail}; "
                "schedule the partition first (partition_at) or partition "
                "immediately before scheduling the heal"
            )
        self._require_kernel().schedule_at(time, self.heal, at=time, label="heal")

    def set_loss_at(self, time: float, link: Link, loss_rate: float) -> None:
        """Schedule a link loss-rate change."""
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1): {loss_rate}")
        self._require_kernel().schedule_at(
            time, self.set_loss, link, loss_rate, at=time, label="loss"
        )

    def crash_schedule(
        self, schedule: Sequence[Tuple[float, float, str]]
    ) -> None:
        """Schedule ``(crash_time, recover_time, host)`` triples.

        A ``recover_time`` of ``float('inf')`` means the host never
        comes back.
        """
        for crash_time, recover_time, host_name in schedule:
            if recover_time <= crash_time and recover_time != float("inf"):
                raise ValueError(
                    f"recover ({recover_time}) must follow crash ({crash_time})"
                )
            self.crash_at(crash_time, host_name)
            if recover_time != float("inf"):
                self.recover_at(recover_time, host_name)
