"""Logical simulated time.

Every component of the reproduction shares one :class:`Clock`.  Time is
a float number of seconds starting at zero.  Components *advance* the
clock by the costs they model (marshalling, link latency, payload
serialisation time, servant service time); nothing in the system reads
wall-clock time, which keeps all tests and benchmarks deterministic.
"""

from __future__ import annotations


class ClockError(Exception):
    """Raised on invalid clock manipulation (e.g. moving backwards)."""


class Clock:
    """A monotonically advancing logical clock.

    >>> clock = Clock()
    >>> clock.now
    0.0
    >>> clock.advance(1.5)
    1.5
    >>> clock.advance_to(2.0)
    2.0
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ClockError(f"clock cannot start before zero: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Advance the clock by ``delta`` seconds and return the new time."""
        if delta < 0.0:
            raise ClockError(f"cannot advance by a negative delta: {delta}")
        self._now += delta
        return self._now

    def advance_to(self, instant: float) -> float:
        """Advance the clock to ``instant``; no-op if already past it.

        Returns the (possibly unchanged) current time.  Moving *to* a
        past instant is tolerated because concurrent flows modelled
        analytically may complete out of order; the clock simply never
        goes backwards.
        """
        if instant > self._now:
            self._now = float(instant)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self._now:.6f})"
