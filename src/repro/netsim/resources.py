"""Resource management: bandwidth reservation and availability traces.

The paper's Section 4 reuses "QoS mechanisms from the underlying
network ... e.g. bandwidth reservation" through ORB-level QoS modules.
This module is the substrate those modules drive: an admission-
controlled reservation table per link, plus time-varying capacity
traces that the adaptation experiments (E10) use to force
renegotiation.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.netsim.network import Link, Network


class InsufficientBandwidth(Exception):
    """Admission control rejected a reservation request."""


class Reservation:
    """An admitted end-to-end bandwidth reservation.

    Holds the reserved rate on every link of the path at admission
    time.  Use :meth:`ResourceManager.release` to free it.
    """

    _ids = itertools.count(1)

    __slots__ = ("reservation_id", "src", "dst", "rate_bps", "links", "active")

    def __init__(self, src: str, dst: str, rate_bps: float, links: List[Link]):
        self.reservation_id = next(Reservation._ids)
        self.src = src
        self.dst = dst
        self.rate_bps = rate_bps
        self.links = links
        self.active = True

    def link_rates(self) -> Dict[int, float]:
        """``id(link) -> rate`` map in the form :meth:`Network.send` expects."""
        if not self.active:
            return {}
        return {id(link): self.rate_bps for link in self.links}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "active" if self.active else "released"
        return (
            f"Reservation(#{self.reservation_id} {self.src}->{self.dst} "
            f"{self.rate_bps / 1e6:.2f}Mbps, {state})"
        )


class ResourceManager:
    """Admission control and capacity traces over a :class:`Network`.

    Reservations are end-to-end: the requested rate must be admissible
    on *every* link of the current route, otherwise
    :class:`InsufficientBandwidth` is raised and nothing is reserved.
    """

    #: At most this fraction of a link may be reserved (the rest stays
    #: best-effort), mirroring IntServ deployment practice.
    MAX_RESERVABLE_FRACTION = 0.9

    def __init__(self, network: Network) -> None:
        self.network = network
        self._reservations: Dict[int, Reservation] = {}
        self._traces: List[Tuple[Link, Sequence[Tuple[float, float]]]] = []

    # -- reservations -------------------------------------------------

    def reservable(self, link: Link) -> float:
        """Remaining reservable rate on a link."""
        ceiling = link.capacity_bps * self.MAX_RESERVABLE_FRACTION
        return max(0.0, ceiling - link.reserved_bps)

    def reserve(self, src: str, dst: str, rate_bps: float) -> Reservation:
        """Admit an end-to-end reservation or raise :class:`InsufficientBandwidth`."""
        if rate_bps <= 0.0:
            raise ValueError(f"rate must be positive: {rate_bps}")
        links = self.network.route(src, dst)
        for link in links:
            if self.reservable(link) < rate_bps:
                raise InsufficientBandwidth(
                    f"cannot reserve {rate_bps / 1e6:.2f}Mbps on {link!r} "
                    f"(reservable {self.reservable(link) / 1e6:.2f}Mbps)"
                )
        for link in links:
            link.reserved_bps += rate_bps
        reservation = Reservation(src, dst, rate_bps, links)
        self._reservations[reservation.reservation_id] = reservation
        return reservation

    def release(self, reservation: Reservation) -> None:
        """Free a reservation; idempotent."""
        if not reservation.active:
            return
        for link in reservation.links:
            link.reserved_bps = max(0.0, link.reserved_bps - reservation.rate_bps)
        reservation.active = False
        self._reservations.pop(reservation.reservation_id, None)

    def active_reservations(self) -> List[Reservation]:
        return list(self._reservations.values())

    # -- availability traces -------------------------------------------

    def set_capacity_trace(
        self, link: Link, trace: Sequence[Tuple[float, float]]
    ) -> None:
        """Attach a piecewise-constant capacity trace to a link.

        ``trace`` is a sorted sequence of ``(time, capacity_bps)``
        steps.  Call :meth:`apply_traces` (typically from a kernel
        event or before each measurement) to apply the value in effect
        at the current simulated time.
        """
        if not trace:
            raise ValueError("trace must not be empty")
        times = [t for t, _ in trace]
        if times != sorted(times):
            raise ValueError("trace times must be sorted")
        self._traces.append((link, list(trace)))

    def apply_traces(self) -> None:
        """Set each traced link's capacity to its value at the current time."""
        now = self.network.clock.now
        for link, trace in self._traces:
            current = None
            for time, capacity in trace:
                if time <= now:
                    current = capacity
                else:
                    break
            if current is not None:
                link.set_capacity(current)
