"""One shard of a sharded run: its heap, clock, hosts and outbox.

A :class:`ShardRuntime` keeps a *minimal* event heap of
``(time, seq, host, handler_ref, payload)`` tuples.  Shard events are
fire-and-forget — nothing ever cancels them — so none of the serial
kernel's :class:`~repro.netsim.kernel.Event` machinery (cancellation
flags, labels, kwargs, compaction) is needed, and dropping the per-
event object roughly halves the allocator/GC pressure of a deep soak.
Every heap comparison is decided by the ``(time, seq)`` prefix at C
level; ``seq`` is unique per shard, so handler payloads are never
compared.

The runtime adds the three things a conservatively synchronized shard
must manage:

- *ownership*: only events for this shard's hosts enter the local
  heap; anything else becomes a timestamped :class:`CrossShardMessage`
  in the outbox, drained by the coordinator at the next barrier;
- *window draining*: :meth:`run_window` fires strictly-before the
  window end, so an event at exactly ``W + lookahead`` still sees
  every message produced during the window starting at ``W``;
- *tracing*: optional per-event trace entries whose canonical (sorted)
  order is independent of the shard count, so a SHA-256 digest over
  them compares serial and sharded runs bit-for-bit.

:class:`SerialScenarioDriver` runs the same handler programs on any
*serial* event kernel — the current
:class:`~repro.netsim.kernel.EventKernel` (the sharded kernel's
fallback engine) or the frozen seed kernel the benchmarks compare
against.  It implements the same runtime protocol, so handlers cannot
tell the difference.
"""

from __future__ import annotations

import random
from heapq import heappop, heappush
from typing import Any, Callable, Dict, List, Optional, Set, Tuple, Union

from repro.netsim.kernel import KernelError
from repro.netsim.parallel.messages import (
    CrossShardMessage,
    handler_ref,
    resolve_handler,
)
from repro.netsim.parallel.plan import TopologySpec

__all__ = ["ShardContext", "ShardRuntime", "SerialScenarioDriver"]

Handler = Union[str, Callable[..., Any]]


def _as_ref(handler: Handler) -> str:
    return handler if isinstance(handler, str) else handler_ref(handler)


class ShardContext:
    """The API a handler sees: ``handler(ctx, payload)``.

    One context object per shard, re-pointed at the firing host before
    each event — handlers must not keep references across events.
    """

    __slots__ = ("_runtime", "host")

    def __init__(self, runtime: Any) -> None:
        self._runtime = runtime
        self.host = ""

    @property
    def now(self) -> float:
        """Current simulated time on this shard."""
        return self._runtime.now

    @property
    def topology(self) -> TopologySpec:
        return self._runtime.topology

    @property
    def state(self) -> Dict[str, Any]:
        """Mutable per-host scratch state (survives between events)."""
        return self._runtime.host_state(self.host)

    def rng(self, host: Optional[str] = None) -> random.Random:
        """Deterministic per-host random stream.

        Seeded from ``(run seed, host name)`` only, so the stream does
        not depend on how hosts were sharded.
        """
        return self._runtime.host_rng(host if host is not None else self.host)

    def schedule(
        self, delay: float, host: str, handler: Handler, payload: Any = None
    ) -> None:
        """Run ``handler`` on ``host`` after ``delay`` seconds."""
        if delay < 0.0:
            raise KernelError(f"cannot schedule in the past (delay={delay})")
        runtime = self._runtime
        runtime.post(runtime.now + delay, host, _as_ref(handler), payload)

    def send(
        self,
        dst: str,
        handler: Handler,
        payload: Any = None,
        nbytes: int = 0,
    ) -> float:
        """Deliver ``payload`` to ``dst`` after the modelled transfer time.

        The delay is the topology's idle-network transfer time (path
        latency plus serialisation at the bottleneck link), which is
        what makes cross-shard sends safe: any path that crosses the
        shard cut is at least one cut-link latency — the lookahead —
        long.  Returns the delay.
        """
        runtime = self._runtime
        delay = runtime.topology.transfer_delay(self.host, dst, nbytes)
        runtime.post(runtime.now + delay, dst, _as_ref(handler), payload)
        return delay

    def record(self, *fields: Any) -> None:
        """Append an application-level entry to the trace."""
        self._runtime.note(self.host, fields)


class _HostStateMixin:
    """Per-host scratch state and seeded random streams."""

    def host_state(self, host: str) -> Dict[str, Any]:
        state = self._state.get(host)
        if state is None:
            state = self._state[host] = {}
        return state

    def host_rng(self, host: str) -> random.Random:
        rng = self._rngs.get(host)
        if rng is None:
            # Seeded by string: hashed with SHA-512 internally, so the
            # stream is stable across processes and PYTHONHASHSEED.
            rng = self._rngs[host] = random.Random(f"{self.seed}:{host}")
        return rng


class ShardRuntime(_HostStateMixin):
    """Minimal heap, clock, hosts, per-host state and the outbox."""

    def __init__(
        self,
        shard_id: int,
        hosts: Set[str],
        topology: TopologySpec,
        lookahead: float,
        seed: int = 0,
        trace: bool = False,
    ) -> None:
        self.shard_id = shard_id
        self.hosts = set(hosts)
        self.topology = topology
        self.lookahead = lookahead
        self.seed = seed
        self.trace_enabled = trace
        #: Simulated time: the due time of the last fired event.
        self.now = 0.0
        self._heap: List[Tuple[float, int, str, str, Any]] = []
        self._seq = 0
        self.events_fired = 0
        self.outbox: List[CrossShardMessage] = []
        self.trace: List[Tuple[float, str, str, str]] = []
        self.cross_sent = 0
        self.cross_received = 0
        self.windows_run = 0
        self._state: Dict[str, Dict[str, Any]] = {}
        self._rngs: Dict[str, random.Random] = {}
        self._ctx = ShardContext(self)

    # -- event flow ----------------------------------------------------

    def post(self, time: float, host: str, ref: str, payload: Any) -> None:
        """Route an event to the local heap or the cross-shard outbox."""
        if host in self.hosts:
            self._seq += 1
            heappush(self._heap, (time, self._seq, host, ref, payload))
            return
        if time < self.now + self.lookahead:
            raise KernelError(
                f"cross-shard event at {time:.9f} violates the lookahead "
                f"window ({self.now:.9f} + {self.lookahead:.9f}); route it "
                "over a link or fall back to the serial kernel"
            )
        self.outbox.append(CrossShardMessage(time, host, ref, payload))
        self.cross_sent += 1

    def deliver(self, messages: List[CrossShardMessage]) -> None:
        """Barrier-time injection of messages owned by this shard."""
        heap = self._heap
        for message in messages:
            self._seq += 1
            heappush(
                heap,
                (message.time, self._seq, message.host, message.handler,
                 message.payload),
            )
        self.cross_received += len(messages)

    def note(self, host: str, fields: Tuple[Any, ...]) -> None:
        if self.trace_enabled:
            self.trace.append((self.now, host, "record", repr(fields)))

    # -- window execution ----------------------------------------------

    def next_event_time(self) -> Optional[float]:
        heap = self._heap
        return heap[0][0] if heap else None

    def run_window(self, window_end: float) -> int:
        """Fire every event strictly before ``window_end``."""
        heap = self._heap
        ctx = self._ctx
        trace = self.trace if self.trace_enabled else None
        resolve = resolve_handler
        fired = 0
        while heap:
            head = heap[0]
            time = head[0]
            if time >= window_end:
                break
            heappop(heap)
            self.now = time
            host = head[2]
            ref = head[3]
            if trace is not None:
                trace.append((time, host, ref, repr(head[4])))
            ctx.host = host
            resolve(ref)(ctx, head[4])
            fired += 1
        self.events_fired += fired
        self.windows_run += 1
        return fired

    def take_outbox(self) -> List[CrossShardMessage]:
        outbox = self.outbox
        self.outbox = []
        return outbox

    def stats(self) -> Dict[str, Any]:
        return {
            "shard": self.shard_id,
            "hosts": len(self.hosts),
            "events_fired": self.events_fired,
            "windows_run": self.windows_run,
            "cross_sent": self.cross_sent,
            "cross_received": self.cross_received,
        }


class SerialScenarioDriver(_HostStateMixin):
    """Run a parallel-API scenario on any serial event kernel.

    ``kernel`` needs only ``schedule_at(time, fn, *args)``, ``run()``
    and a ``clock`` with ``now`` — which both the current
    :class:`~repro.netsim.kernel.EventKernel` and the frozen seed
    kernel in ``benchmarks/_seed_kernel.py`` provide.  The sharded
    kernel's serial fallback is exactly this driver over the current
    ``EventKernel``.
    """

    def __init__(
        self,
        kernel: Any,
        topology: TopologySpec,
        seed: int = 0,
        trace: bool = False,
    ) -> None:
        self.kernel = kernel
        self.topology = topology
        self.seed = seed
        self.trace_enabled = trace
        self.trace: List[Tuple[float, str, str, str]] = []
        self._state: Dict[str, Dict[str, Any]] = {}
        self._rngs: Dict[str, random.Random] = {}
        self._ctx = ShardContext(self)

    @property
    def now(self) -> float:
        return self.kernel.clock.now

    def post(self, time: float, host: str, ref: str, payload: Any) -> None:
        self.kernel.schedule_at(time, self._fire, host, ref, payload)

    def note(self, host: str, fields: Tuple[Any, ...]) -> None:
        if self.trace_enabled:
            self.trace.append(
                (self.kernel.clock.now, host, "record", repr(fields))
            )

    def _fire(self, host: str, ref: str, payload: Any) -> None:
        if self.trace_enabled:
            self.trace.append(
                (self.kernel.clock.now, host, ref, repr(payload))
            )
        ctx = self._ctx
        ctx.host = host
        resolve_handler(ref)(ctx, payload)

    def schedule_at(
        self, time: float, host: str, handler: Handler, payload: Any = None
    ) -> None:
        self.post(time, host, _as_ref(handler), payload)

    def run(self) -> int:
        return self.kernel.run()

    def stats(self) -> Dict[str, Any]:
        return {
            "shard": 0,
            "hosts": len(self.topology.hosts),
            "events_fired": getattr(self.kernel, "events_fired", 0),
            "windows_run": 0,
            "cross_sent": 0,
            "cross_received": 0,
        }
