"""Cross-shard messages and spawn-safe handler references.

A sharded run never ships live callables between shards: every event
handler is named by a ``"module:qualname"`` string that each side —
including a freshly spawned worker process, which starts from a blank
interpreter — resolves through :func:`resolve_handler`.  Handlers must
therefore be module-level functions; :func:`handler_ref` checks that
the reference round-trips before a run starts rather than deep inside
a worker.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Dict, NamedTuple

__all__ = ["CrossShardMessage", "handler_ref", "resolve_handler"]


class CrossShardMessage(NamedTuple):
    """A timestamped event bound for a host on another shard.

    ``time`` is the *receive* time.  Conservative synchronization rests
    on one invariant: a message produced during the window starting at
    ``W`` has ``time >= W + lookahead``, so it can always be delivered
    at the next barrier without rolling any shard back.
    """

    time: float
    host: str
    handler: str
    payload: Any


_HANDLERS: Dict[str, Callable[..., Any]] = {}
_REFS: Dict[Callable[..., Any], str] = {}


def handler_ref(fn: Callable[..., Any]) -> str:
    """Return the ``"module:qualname"`` reference for a handler.

    Raises :class:`TypeError` if the function cannot be found again by
    that name (lambdas, closures, instance methods) — such handlers
    would fail only once a spawned worker tried to resolve them.
    Validated references are cached, so handlers on the hot scheduling
    path pay one dict probe, not an import-system round trip.
    """
    cached = _REFS.get(fn)
    if cached is not None:
        return cached
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<" in qualname or "." in qualname:
        raise TypeError(
            f"handler must be a module-level function, got {fn!r}"
        )
    ref = f"{module}:{qualname}"
    if resolve_handler(ref) is not fn:
        raise TypeError(
            f"handler reference {ref!r} does not resolve back to {fn!r}"
        )
    _REFS[fn] = ref
    return ref


def resolve_handler(ref: str) -> Callable[..., Any]:
    """Resolve a ``"module:qualname"`` reference, with caching."""
    fn = _HANDLERS.get(ref)
    if fn is None:
        module, _, qualname = ref.partition(":")
        fn = getattr(importlib.import_module(module), qualname)
        if not callable(fn):
            raise TypeError(f"handler reference {ref!r} is not callable")
        _HANDLERS[ref] = fn
    return fn
