"""The sharded kernel: conservative windows, barriers, backends.

Synchronization protocol (classic conservative PDES, BSP-shaped):

1. compute ``gvt`` — the earliest pending event time across shards and
   undelivered messages;
2. open the window ``[gvt, gvt + lookahead)`` where the lookahead is
   the minimum latency of any link crossing the shard cut;
3. every shard fires its local events strictly inside the window.  Any
   event it produces for a foreign host becomes a timestamped
   :class:`CrossShardMessage`; the lookahead guarantees such messages
   are due *at or after* the window end, so no shard can receive one
   it should already have processed;
4. barrier: exchange outboxes, deliver each message into its owner's
   heap, go to 1.

Two backends execute the protocol: ``inline`` runs every shard in this
process (windows become loop iterations — no IPC, deterministic, and
the right choice on one core), ``process`` fans shards out to spawned
``multiprocessing`` workers and runs the same barrier over pipes.  The
kernel *transparently falls back to the serial*
:class:`~repro.netsim.kernel.EventKernel` drain when the plan has zero
lookahead (a zero-latency cut link would force zero-width windows) or
when the caller demands strict single-heap determinism.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Tuple

from repro.netsim.kernel import EventKernel, KernelError
from repro.netsim.parallel.messages import CrossShardMessage, handler_ref
from repro.netsim.parallel.plan import ShardPlan, ShardPlanner, TopologySpec
from repro.netsim.parallel.shard import (
    Handler,
    SerialScenarioDriver,
    ShardRuntime,
)

__all__ = ["ShardedKernel", "last_shard_stats"]

#: Stats of the most recent completed run, merged into
#: :func:`repro.perf.snapshot` as ``kernel_shard_*``.
_LAST_STATS: Dict[str, Any] = {}


def last_shard_stats() -> Dict[str, Any]:
    """Stats of the most recent :meth:`ShardedKernel.run` in this process."""
    return dict(_LAST_STATS)


def _as_ref(handler: Handler) -> str:
    return handler if isinstance(handler, str) else handler_ref(handler)


def _worker_main(conn: Any, shard_id: int, hosts: List[str],
                 topology: TopologySpec, lookahead: float, seed: int,
                 trace: bool,
                 initial: List[Tuple[float, str, str, Any]]) -> None:
    """Entry point of one spawned shard worker (module-level: spawn-safe)."""
    runtime = ShardRuntime(shard_id, set(hosts), topology, lookahead,
                           seed=seed, trace=trace)
    for time, host, ref, payload in initial:
        runtime.post(time, host, ref, payload)
    try:
        while True:
            message = conn.recv()
            op = message[0]
            if op == "window":
                _, window_end, inbox = message
                runtime.deliver(inbox)
                fired = runtime.run_window(window_end)
                conn.send(
                    ("done", runtime.next_event_time(),
                     runtime.take_outbox(), fired)
                )
            elif op == "peek":
                conn.send(("time", runtime.next_event_time()))
            elif op == "finish":
                conn.send(("result", runtime.trace, runtime.stats()))
                return
            else:  # pragma: no cover - protocol guard
                raise KernelError(f"unknown worker op: {op!r}")
    finally:
        conn.close()


class ShardedKernel:
    """Drop-in scenario driver over a host-sharded event space.

    >>> topo = TopologySpec(["a", "b"], [LinkSpec("a", "b", 0.002)])
    ... kernel = ShardedKernel(topo, shards=2)
    ... kernel.schedule_at(0.0, "a", some_handler)
    ... kernel.run()

    ``backend`` is ``"inline"`` (default) or ``"process"``; either way
    the synchronization protocol, the event orderings per host and the
    trace digest are the same.
    """

    def __init__(
        self,
        topology: TopologySpec,
        shards: int = 4,
        backend: str = "inline",
        seed: int = 0,
        trace: bool = False,
        strict_determinism: bool = False,
        plan: Optional[ShardPlan] = None,
    ) -> None:
        if backend not in ("inline", "process"):
            raise KernelError(f"unknown backend: {backend!r}")
        self.topology = topology
        self.backend = backend
        self.seed = seed
        self.trace_enabled = trace
        self.plan = plan if plan is not None else ShardPlanner(topology).plan(shards)
        #: Serial fallback: zero lookahead makes conservative windows
        #: zero-width (no progress possible), and strict determinism
        #: asks for the single-heap ordering by definition.
        self.serial = (
            self.plan.shards <= 1
            or self.plan.lookahead <= 0.0
            or strict_determinism
        )
        self._pending: List[Tuple[float, str, str, Any]] = []
        self._trace: List[Tuple[float, str, str, str]] = []
        self._stats: Dict[str, Any] = {}
        self._ran = False

    # -- scheduling ----------------------------------------------------

    def schedule_at(
        self, time: float, host: str, handler: Handler, payload: Any = None
    ) -> None:
        """Seed the run with an event (only before :meth:`run`)."""
        if self._ran:
            raise KernelError("kernel already ran; build a new one")
        if host not in self.topology._adjacency:
            raise KernelError(f"unknown host: {host!r}")
        if time < 0.0:
            raise KernelError(f"cannot schedule before time zero: {time}")
        self._pending.append((time, host, _as_ref(handler), payload))

    # -- execution -----------------------------------------------------

    def run(self, until: Optional[float] = None) -> int:
        """Drain the event space; returns the number of events fired.

        ``until`` bounds the run to events strictly before that time,
        mirroring :meth:`EventKernel.run_before`.
        """
        if self._ran:
            raise KernelError("kernel already ran; build a new one")
        self._ran = True
        if self.serial:
            fired = self._run_serial(until)
        elif self.backend == "process":
            fired = self._run_process(until)
        else:
            fired = self._run_inline(until)
        global _LAST_STATS
        _LAST_STATS = dict(self._stats)
        return fired

    def _effective_mode(self) -> str:
        return "serial" if self.serial else self.backend

    def _finish_stats(
        self,
        shard_stats: List[Dict[str, Any]],
        barriers: int,
        fired: int,
    ) -> None:
        self._stats = {
            "backend": self._effective_mode(),
            "shards": len(shard_stats),
            "planned_shards": self.plan.shards,
            "lookahead": self.plan.lookahead,
            "fallback_serial": self.serial,
            "cut_links": self.plan.cut_links,
            "barriers": barriers,
            "barrier_waits": sum(s["windows_run"] for s in shard_stats),
            "events_fired": fired,
            "events_per_shard": [s["events_fired"] for s in shard_stats],
            "cross_messages": sum(s["cross_sent"] for s in shard_stats),
        }

    def _run_serial(self, until: Optional[float]) -> int:
        """The transparent fallback: every host on one serial EventKernel."""
        driver = SerialScenarioDriver(
            EventKernel(), self.topology,
            seed=self.seed, trace=self.trace_enabled,
        )
        for time, host, ref, payload in self._pending:
            driver.post(time, host, ref, payload)
        if until is None:
            fired = driver.kernel.run()
        else:
            fired = driver.kernel.run_before(until)
        self._trace = driver.trace
        self._finish_stats([driver.stats()], 0, fired)
        return fired

    def _build_runtimes(self) -> List[ShardRuntime]:
        runtimes = [
            ShardRuntime(
                shard, set(self.plan.members(shard)), self.topology,
                self.plan.lookahead, seed=self.seed,
                trace=self.trace_enabled,
            )
            for shard in range(self.plan.shards)
        ]
        owner = self.plan.assignment
        for time, host, ref, payload in self._pending:
            runtimes[owner[host]].post(time, host, ref, payload)
        return runtimes

    def _run_inline(self, until: Optional[float]) -> int:
        runtimes = self._build_runtimes()
        owner = self.plan.assignment
        lookahead = self.plan.lookahead
        barriers = 0
        fired = 0
        while True:
            gvt: Optional[float] = None
            for runtime in runtimes:
                head = runtime.next_event_time()
                if head is not None and (gvt is None or head < gvt):
                    gvt = head
            if gvt is None or (until is not None and gvt >= until):
                break
            window_end = gvt + lookahead
            if until is not None and window_end > until:
                window_end = until
            for runtime in runtimes:
                fired += runtime.run_window(window_end)
            barriers += 1
            inboxes: List[List[CrossShardMessage]] = [[] for _ in runtimes]
            for runtime in runtimes:
                for message in runtime.take_outbox():
                    inboxes[owner[message.host]].append(message)
            for runtime, inbox in zip(runtimes, inboxes):
                if inbox:
                    runtime.deliver(inbox)
        if self.trace_enabled:
            trace: List[Tuple[float, str, str, str]] = []
            for runtime in runtimes:
                trace.extend(runtime.trace)
            self._trace = trace
        self._finish_stats([r.stats() for r in runtimes], barriers, fired)
        return fired

    def _run_process(self, until: Optional[float]) -> int:
        import multiprocessing

        mp = multiprocessing.get_context("spawn")
        owner = self.plan.assignment
        lookahead = self.plan.lookahead
        shards = self.plan.shards
        initial: List[List[Tuple[float, str, str, Any]]] = [
            [] for _ in range(shards)
        ]
        for entry in self._pending:
            initial[owner[entry[1]]].append(entry)
        pipes = []
        workers = []
        try:
            for shard in range(shards):
                parent, child = mp.Pipe()
                worker = mp.Process(
                    target=_worker_main,
                    args=(child, shard, self.plan.members(shard),
                          self.topology, lookahead, self.seed,
                          self.trace_enabled, initial[shard]),
                    daemon=True,
                )
                worker.start()
                child.close()
                pipes.append(parent)
                workers.append(worker)
            for pipe in pipes:
                pipe.send(("peek",))
            heads: List[Optional[float]] = [pipe.recv()[1] for pipe in pipes]
            inboxes: List[List[CrossShardMessage]] = [[] for _ in range(shards)]
            barriers = 0
            fired = 0
            while True:
                gvt: Optional[float] = None
                for head in heads:
                    if head is not None and (gvt is None or head < gvt):
                        gvt = head
                for inbox in inboxes:
                    for message in inbox:
                        if gvt is None or message.time < gvt:
                            gvt = message.time
                if gvt is None or (until is not None and gvt >= until):
                    break
                window_end = gvt + lookahead
                if until is not None and window_end > until:
                    window_end = until
                for pipe, inbox in zip(pipes, inboxes):
                    pipe.send(("window", window_end, inbox))
                inboxes = [[] for _ in range(shards)]
                for index, pipe in enumerate(pipes):
                    _, head, outbox, shard_fired = pipe.recv()
                    heads[index] = head
                    fired += shard_fired
                    for message in outbox:
                        inboxes[owner[message.host]].append(message)
                barriers += 1
            for pipe in pipes:
                pipe.send(("finish",))
            shard_stats = []
            trace: List[Tuple[float, str, str, str]] = []
            for pipe in pipes:
                _, worker_trace, stats = pipe.recv()
                trace.extend(worker_trace)
                shard_stats.append(stats)
            if self.trace_enabled:
                self._trace = trace
            self._finish_stats(shard_stats, barriers, fired)
            return fired
        finally:
            for pipe in pipes:
                pipe.close()
            for worker in workers:
                worker.join(timeout=10.0)
                if worker.is_alive():  # pragma: no cover - hang guard
                    worker.terminate()

    # -- results -------------------------------------------------------

    def trace_entries(self) -> List[Tuple[float, str, str, str]]:
        """Canonically ordered trace (independent of sharding)."""
        return sorted(self._trace)

    def trace_digest(self) -> str:
        """SHA-256 over the canonical trace — the determinism oracle.

        Entries are sorted by ``(time, host, handler, payload)`` before
        hashing, so serial and sharded runs of the same scenario with
        the same seed produce the same digest regardless of how hosts
        were partitioned or interleaved inside a window.
        """
        if not self.trace_enabled:
            raise KernelError("run with trace=True to produce a digest")
        digest = hashlib.sha256()
        for time, host, ref, payload in sorted(self._trace):
            digest.update(
                f"{time!r}|{host}|{ref}|{payload}\n".encode("utf-8")
            )
        return digest.hexdigest()

    def stats(self) -> Dict[str, Any]:
        """Aggregated run stats (also published to ``kernel_shard_*``)."""
        return dict(self._stats)
