"""Topology description and shard placement.

:class:`TopologySpec` is the picklable, pure-data view of a simulated
network that the sharded kernel operates on: host names plus
``(a, b, latency, bandwidth)`` link records.  It can be built from an
existing :class:`~repro.netsim.network.Network` or assembled directly
by a workload.

:class:`ShardPlanner` assigns hosts to shards.  The objective is
min-cut-ish: tightly coupled hosts (low-latency, high-rate links)
should share a shard, because every link crossing the cut both carries
barrier traffic and — through its latency — bounds the lookahead
window.  The planner grows balanced shards greedily from deterministic
seeds and then runs boundary-refinement passes that move hosts across
the cut whenever that lowers the cut weight without unbalancing the
shards.  Everything tie-breaks on host name, so the same topology
always yields the same plan.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

__all__ = ["LinkSpec", "TopologySpec", "ShardPlan", "ShardPlanner"]


class LinkSpec(Tuple[str, str, float, float]):
    """``(a, b, latency, bandwidth_bps)`` — a picklable link record."""

    __slots__ = ()

    def __new__(
        cls, a: str, b: str, latency: float, bandwidth_bps: float = 100e6
    ) -> "LinkSpec":
        if latency < 0.0:
            raise ValueError(f"latency must be non-negative: {latency}")
        if bandwidth_bps <= 0.0:
            raise ValueError(f"bandwidth must be positive: {bandwidth_bps}")
        return super().__new__(cls, (a, b, float(latency), float(bandwidth_bps)))

    def __getnewargs__(self) -> Tuple[str, str, float, float]:
        # tuple subclass with a multi-argument __new__: spell out the
        # constructor arguments so pickling (spawned workers) works.
        return (self[0], self[1], self[2], self[3])

    @property
    def a(self) -> str:
        return self[0]

    @property
    def b(self) -> str:
        return self[1]

    @property
    def latency(self) -> float:
        return self[2]

    @property
    def bandwidth_bps(self) -> float:
        return self[3]


class TopologySpec:
    """Hosts and links as plain data (picklable, hashable content).

    The all-pairs path table (shortest latency plus the bottleneck
    bandwidth along that path) is computed lazily and cached; the
    sharded kernel uses it to price ``ctx.send`` exactly like
    :meth:`repro.netsim.network.Network.transfer_delay` prices a
    best-effort message on an idle network.
    """

    def __init__(self, hosts: Sequence[str], links: Sequence[LinkSpec]) -> None:
        self.hosts: Tuple[str, ...] = tuple(sorted(hosts))
        known = set(self.hosts)
        for link in links:
            if link.a not in known or link.b not in known:
                raise ValueError(f"link references unknown host: {link!r}")
        self.links: Tuple[LinkSpec, ...] = tuple(
            sorted(links, key=lambda l: (l.a, l.b))
        )
        self._adjacency: Dict[str, Dict[str, LinkSpec]] = {h: {} for h in self.hosts}
        for link in self.links:
            self._adjacency[link.a][link.b] = link
            self._adjacency[link.b][link.a] = link
        self._paths: Optional[Dict[str, Dict[str, Tuple[float, float]]]] = None

    @classmethod
    def from_network(cls, network: Any) -> "TopologySpec":
        """Extract the spec from a live :class:`~repro.netsim.network.Network`."""
        links = [
            LinkSpec(link.a.name, link.b.name, link.latency, link.capacity_bps)
            for link in network.links()
        ]
        return cls(list(network.hosts), links)

    def neighbours(self, host: str) -> Dict[str, LinkSpec]:
        return self._adjacency[host]

    def _paths_from(self, src: str) -> Dict[str, Tuple[float, float]]:
        """Dijkstra by latency; carries the path's bottleneck bandwidth."""
        table: Dict[str, Tuple[float, float]] = {src: (0.0, float("inf"))}
        frontier: List[Tuple[float, str, float]] = [(0.0, src, float("inf"))]
        done: set = set()
        while frontier:
            dist, node, bottleneck = heapq.heappop(frontier)
            if node in done:
                continue
            done.add(node)
            for neighbour, link in self._adjacency[node].items():
                candidate = dist + link.latency
                known = table.get(neighbour)
                if known is None or candidate < known[0]:
                    narrow = min(bottleneck, link.bandwidth_bps)
                    table[neighbour] = (candidate, narrow)
                    heapq.heappush(frontier, (candidate, neighbour, narrow))
        return table

    def path(self, src: str, dst: str) -> Tuple[float, float]:
        """``(latency, bottleneck_bandwidth_bps)`` of the best path.

        Raises :class:`KeyError` when no path exists.
        """
        if self._paths is None:
            self._paths = {}
        table = self._paths.get(src)
        if table is None:
            table = self._paths_from(src)
            self._paths[src] = table
        return table[dst]

    def transfer_delay(self, src: str, dst: str, nbytes: int = 0) -> float:
        """Idle-network transfer time for ``nbytes`` from ``src`` to ``dst``."""
        if src == dst:
            return 0.0
        latency, bandwidth = self.path(src, dst)
        if nbytes <= 0:
            return latency
        return latency + (nbytes * 8.0) / bandwidth

    def __reduce__(self):
        return (TopologySpec, (list(self.hosts), list(self.links)))


class ShardPlan:
    """The planner's output: host assignment plus the sync parameters."""

    def __init__(
        self,
        assignment: Dict[str, int],
        shards: int,
        lookahead: float,
        cut_links: int,
        cut_weight: float,
    ) -> None:
        #: Host name -> shard index.
        self.assignment = assignment
        self.shards = shards
        #: Conservative window width: the minimum latency of any link
        #: crossing the cut.  ``inf`` when no link crosses (independent
        #: shards), ``0.0`` when a zero-latency link crosses — the
        #: signal to fall back to the serial kernel.
        self.lookahead = lookahead
        self.cut_links = cut_links
        self.cut_weight = cut_weight

    def members(self, shard: int) -> List[str]:
        return sorted(h for h, s in self.assignment.items() if s == shard)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardPlan(shards={self.shards}, lookahead={self.lookahead}, "
            f"cut_links={self.cut_links})"
        )


def _coupling(link: LinkSpec) -> float:
    """Edge weight for the cut objective.

    Low-latency links are expensive to cut twice over: they carry the
    tightest coupling *and* shrink the lookahead window.  Weight them
    inversely by latency (with a floor so zero-latency links are
    simply very heavy, not infinite).
    """
    return 1.0 / (link.latency + 1e-9)


class ShardPlanner:
    """Deterministic, balance-constrained, min-cut-ish host assignment."""

    #: Shards may exceed the ideal size by this factor during refinement.
    BALANCE_SLACK = 1.30
    #: Boundary-refinement sweeps after the greedy growth phase.
    REFINE_PASSES = 4

    def __init__(self, topology: TopologySpec) -> None:
        self.topology = topology

    def plan(self, shards: int) -> ShardPlan:
        if shards < 1:
            raise ValueError(f"need at least one shard: {shards}")
        hosts = self.topology.hosts
        shards = min(shards, len(hosts)) if hosts else 1
        if shards <= 1:
            assignment = {h: 0 for h in hosts}
            return ShardPlan(assignment, 1, float("inf"), 0, 0.0)
        assignment = self._grow(shards)
        self._refine(assignment, shards)
        lookahead, cut_links, cut_weight = self._cut_metrics(assignment)
        return ShardPlan(assignment, shards, lookahead, cut_links, cut_weight)

    # -- greedy growth -------------------------------------------------

    def _grow(self, shards: int) -> Dict[str, int]:
        hosts = self.topology.hosts
        capacity = -(-len(hosts) // shards)  # ceil
        assignment: Dict[str, int] = {}
        unassigned = set(hosts)
        for shard in range(shards):
            if not unassigned:
                break
            seed = min(unassigned)
            assignment[seed] = shard
            unassigned.discard(seed)
            size = 1
            # Attachment weight of each candidate to the growing shard.
            gains: Dict[str, float] = {}
            for neighbour, link in self.topology.neighbours(seed).items():
                if neighbour in unassigned:
                    gains[neighbour] = gains.get(neighbour, 0.0) + _coupling(link)
            while size < capacity and unassigned:
                if gains:
                    # Highest coupling first; name breaks ties.
                    best = max(gains, key=lambda h: (gains[h], h))
                else:
                    # Disconnected remainder: take the smallest name so
                    # isolated hosts still land somewhere deterministic.
                    best = min(unassigned)
                assignment[best] = shard
                unassigned.discard(best)
                gains.pop(best, None)
                size += 1
                for neighbour, link in self.topology.neighbours(best).items():
                    if neighbour in unassigned:
                        gains[neighbour] = (
                            gains.get(neighbour, 0.0) + _coupling(link)
                        )
        # Any stragglers (more shards than connected components needed).
        for host in sorted(unassigned):
            sizes = [0] * shards
            for s in assignment.values():
                sizes[s] += 1
            assignment[host] = sizes.index(min(sizes))
        return assignment

    # -- refinement ----------------------------------------------------

    def _refine(self, assignment: Dict[str, int], shards: int) -> None:
        limit = max(1, int(self.BALANCE_SLACK * -(-len(assignment) // shards)))
        for _ in range(self.REFINE_PASSES):
            moved = False
            sizes = [0] * shards
            for s in assignment.values():
                sizes[s] += 1
            for host in self.topology.hosts:
                current = assignment[host]
                if sizes[current] <= 1:
                    continue
                # Coupling of this host toward every shard.
                pull: Dict[int, float] = {}
                for neighbour, link in self.topology.neighbours(host).items():
                    shard = assignment[neighbour]
                    pull[shard] = pull.get(shard, 0.0) + _coupling(link)
                here = pull.get(current, 0.0)
                best_shard, best_gain = current, 0.0
                for shard in sorted(pull):
                    if shard == current or sizes[shard] >= limit:
                        continue
                    gain = pull[shard] - here
                    if gain > best_gain + 1e-12:
                        best_shard, best_gain = shard, gain
                if best_shard != current:
                    assignment[host] = best_shard
                    sizes[current] -= 1
                    sizes[best_shard] += 1
                    moved = True
            if not moved:
                break

    # -- cut metrics ---------------------------------------------------

    def _cut_metrics(
        self, assignment: Dict[str, int]
    ) -> Tuple[float, int, float]:
        lookahead = float("inf")
        cut_links = 0
        cut_weight = 0.0
        for link in self.topology.links:
            if assignment[link.a] != assignment[link.b]:
                cut_links += 1
                cut_weight += _coupling(link)
                if link.latency < lookahead:
                    lookahead = link.latency
        return lookahead, cut_links, cut_weight
