"""Parallel sharded event kernel (conservative synchronization).

The serial :class:`~repro.netsim.kernel.EventKernel` drains every
scenario through one heap.  This package partitions the simulated
hosts across shards — each with its own heap and clock — and runs them
in bulk-synchronous windows whose width equals the *lookahead*: the
minimum latency of any link crossing the shard cut.  A message sent
during a window can, by construction, only be received in a later
window, so every shard may process its window independently and all
cross-shard traffic is exchanged at the barrier.  When the topology
offers no lookahead (a zero-latency cut link) the kernel transparently
falls back to the serial :class:`~repro.netsim.kernel.EventKernel`.

The kernel is a policy/mechanism seam in the sense of the paper:
workloads describe *what* happens (handlers on hosts, messages between
them); shard placement, synchronization and process fan-out are
swappable policy underneath.
"""

from repro.netsim.parallel.kernel import ShardedKernel, last_shard_stats
from repro.netsim.parallel.messages import (
    CrossShardMessage,
    handler_ref,
    resolve_handler,
)
from repro.netsim.parallel.plan import ShardPlan, ShardPlanner, TopologySpec
from repro.netsim.parallel.shard import ShardContext, ShardRuntime

__all__ = [
    "CrossShardMessage",
    "ShardContext",
    "ShardPlan",
    "ShardPlanner",
    "ShardRuntime",
    "ShardedKernel",
    "TopologySpec",
    "handler_ref",
    "last_shard_stats",
    "resolve_handler",
]
