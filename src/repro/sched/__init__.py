"""Request scheduling: admission control, fair queuing, overload protection.

The policy layer of the serving path — see :mod:`repro.sched.scheduler`
for the subsystem overview and ``DESIGN.md`` ("Request scheduling &
admission control") for where it sits on Figure 3's dispatch path.
"""

from repro.sched.backpressure import Backpressure, PacingMediator
from repro.sched.policies import (
    POLICIES,
    FIFOPolicy,
    SchedulerPolicy,
    StrictPriorityPolicy,
    WFQPolicy,
    create_policy,
)
from repro.sched.scheduler import (
    BINDING_CONTEXT,
    CLASS_CONTEXT,
    CONTROL_CLASS,
    DEFAULT_CLASS,
    OVERLOAD_DEADLINE,
    OVERLOAD_QUEUE,
    OVERLOAD_RATE,
    RETRY_AFTER_CONTEXT,
    Grant,
    QoSClass,
    RequestScheduler,
)
from repro.sched.token_bucket import TokenBucket

__all__ = [
    "BINDING_CONTEXT",
    "Backpressure",
    "CLASS_CONTEXT",
    "CONTROL_CLASS",
    "DEFAULT_CLASS",
    "FIFOPolicy",
    "Grant",
    "OVERLOAD_DEADLINE",
    "OVERLOAD_QUEUE",
    "OVERLOAD_RATE",
    "PacingMediator",
    "POLICIES",
    "QoSClass",
    "RETRY_AFTER_CONTEXT",
    "RequestScheduler",
    "SchedulerPolicy",
    "StrictPriorityPolicy",
    "TokenBucket",
    "WFQPolicy",
    "create_policy",
]
