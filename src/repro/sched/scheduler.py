"""QoS-aware request scheduling between request receipt and dispatch.

The paper negotiates QoS contracts (Section 3) and enforces them with
mechanisms along the communication path (Section 4) — but a contract
is worthless once the server saturates if every request is served
FIFO.  :class:`RequestScheduler` sits between :meth:`ORB.handle_incoming`
and servant dispatch and makes the negotiated level mean something
under load:

- **admission control**: a server-wide queue-depth limit plus one
  token bucket per client/server binding, filled at the *negotiated*
  rate.  Non-admissible requests fail fast with
  :class:`~repro.orb.exceptions.OVERLOAD` (a TRANSIENT subclass)
  instead of queuing to death.
- **pluggable scheduling**: FIFO / strict priority / weighted fair
  queuing (see :mod:`repro.sched.policies`), swappable at runtime via
  QoS-transport commands — policy as a separable concern.
- **deadline shedding**: each class's deadline derives from its
  negotiated delay contract; a request whose projected wait already
  exceeds it is shed at arrival, not served late.
- **backpressure**: replies (and rejections) carry a retry-after hint
  in the service contexts so mediators can degrade gracefully
  (:mod:`repro.sched.backpressure`).

Install on a serving ORB with ``orb.install_scheduler(policy="wfq")``;
without a scheduler the POA's plain FIFO path is untouched.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Any, Dict, Iterable, List, Optional

from repro.core.mediator import CHARACTERISTIC_CONTEXT
from repro.netsim.network import WorkLedger
from repro.orb.exceptions import NO_RESOURCES, OVERLOAD
from repro.orb.request import Request
from repro.perf.counters import COUNTERS
from repro.sched.policies import SchedulerPolicy, create_policy
from repro.sched.token_bucket import TokenBucket

#: Service-context keys of the scheduling plane.
CLASS_CONTEXT = "maqs.sched.class"
BINDING_CONTEXT = "maqs.sched.binding"
RETRY_AFTER_CONTEXT = "maqs.sched.retry_after"

#: Absolute (simulated-instant) deadline of the *call*, set by the
#: client's reliability layer (mirrors
#: :data:`repro.reliability.policy.DEADLINE_CONTEXT`; the literal is
#: repeated so repro.sched never imports upward).  Lets the scheduler
#: shed work whose caller will have timed out before completion.
DEADLINE_CONTEXT = "maqs.reliability.deadline"

#: OVERLOAD minor codes.
OVERLOAD_QUEUE = 1
OVERLOAD_RATE = 2
OVERLOAD_DEADLINE = 3

#: Name of the implicit classes every scheduler owns.
DEFAULT_CLASS = "best-effort"
CONTROL_CLASS = "control"


class QoSClass:
    """One scheduling class: the enforcement side of a QoS level.

    ``weight`` feeds WFQ, ``priority`` (lower = more urgent) feeds the
    strict-priority policy, ``deadline`` bounds queueing delay before
    a request is shed, and ``rate``/``burst`` parameterise the
    admission token buckets.  ``control`` marks the negotiation plane:
    always admitted, never shed (rejecting the traffic that could fix
    an overload would wedge the system).
    """

    __slots__ = ("name", "weight", "priority", "deadline", "rate", "burst", "control")

    def __init__(
        self,
        name: str,
        weight: float = 1.0,
        priority: int = 8,
        deadline: Optional[float] = None,
        rate: Optional[float] = None,
        burst: Optional[float] = None,
        control: bool = False,
    ) -> None:
        if weight <= 0.0:
            raise ValueError(f"weight must be positive: {weight}")
        self.name = name
        self.weight = weight
        self.priority = priority
        self.deadline = deadline
        self.rate = rate
        self.burst = burst if burst is not None else 4.0
        self.control = control

    def as_dict(self) -> Dict[str, Any]:
        return {
            "weight": self.weight,
            "priority": self.priority,
            "deadline": self.deadline,
            "rate": self.rate,
            "burst": self.burst,
            "control": self.control,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QoSClass({self.name!r}, w={self.weight}, prio={self.priority})"


class Grant:
    """An admitted request's committed schedule."""

    __slots__ = ("cls_name", "start", "completion", "wait", "reply_contexts")

    def __init__(
        self,
        cls_name: str,
        start: float,
        completion: float,
        wait: float,
        reply_contexts: Optional[Dict[str, Any]],
    ) -> None:
        self.cls_name = cls_name
        self.start = start
        self.completion = completion
        self.wait = wait
        self.reply_contexts = reply_contexts


class _ClassStats:
    __slots__ = (
        "admitted",
        "rejected_queue",
        "rejected_rate",
        "shed_deadline",
        "wait_total",
        "wait_max",
    )

    def __init__(self) -> None:
        self.admitted = 0
        self.rejected_queue = 0
        self.rejected_rate = 0
        self.shed_deadline = 0
        self.wait_total = 0.0
        self.wait_max = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "admitted": self.admitted,
            "rejected_queue": self.rejected_queue,
            "rejected_rate": self.rejected_rate,
            "shed_deadline": self.shed_deadline,
            "wait_mean": self.wait_total / self.admitted if self.admitted else 0.0,
            "wait_max": self.wait_max,
        }


class RequestScheduler:
    """Per-ORB admission controller and scheduler core."""

    def __init__(
        self,
        orb: Any,
        policy: str = "wfq",
        max_depth: int = 64,
        backpressure_depth: Optional[int] = None,
        capacity_rps: Optional[float] = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be at least 1: {max_depth}")
        self.orb = orb
        self.host = orb.host
        self.max_depth = max_depth
        #: Depth at which replies start carrying retry-after hints;
        #: defaults to three quarters of the hard limit.
        self.backpressure_depth = (
            backpressure_depth
            if backpressure_depth is not None
            else max(1, (max_depth * 3) // 4)
        )
        #: Optional cap on the total request rate the negotiation plane
        #: may promise (see :meth:`admissible_rate`).
        self.capacity_rps = capacity_rps
        self._classes: Dict[str, QoSClass] = {}
        self._ledgers: Dict[str, WorkLedger] = {}
        #: Shared FIFO ledger (also total committed work for stats).
        self.total = WorkLedger()
        self._buckets: Dict[str, tuple] = {}
        self._characteristic_classes: Dict[str, str] = {}
        self._control_keys: set = set()
        self._inflight: List[float] = []
        self.depth_peak = 0
        self._stats: Dict[str, _ClassStats] = {}
        self._policy: SchedulerPolicy = create_policy(policy).attach(self)
        self.define_class(DEFAULT_CLASS, weight=1.0, priority=8)
        self.define_class(CONTROL_CLASS, weight=4.0, priority=0, control=True)

    # -- class administration ---------------------------------------------

    def define_class(self, name: str, **parameters: Any) -> QoSClass:
        """Register (or redefine) a scheduling class."""
        cls = QoSClass(name, **parameters)
        self._classes[name] = cls
        self._ledgers.setdefault(name, WorkLedger())
        self._stats.setdefault(name, _ClassStats())
        return cls

    def classes(self) -> Iterable[QoSClass]:
        return self._classes.values()

    def ensure_class(self, name: str, **parameters: Any) -> QoSClass:
        """The named class, defining it with ``parameters`` if absent."""
        cls = self._classes.get(name)
        if cls is None:
            cls = self.define_class(name, **parameters)
        return cls

    def find_class(self, name: str) -> Optional[QoSClass]:
        """The named class, or None (never raises)."""
        return self._classes.get(name)

    def qos_class(self, name: str) -> QoSClass:
        try:
            return self._classes[name]
        except KeyError:
            raise NO_RESOURCES(f"no scheduling class {name!r} defined") from None

    def class_table(self) -> Dict[str, Dict[str, Any]]:
        """JSON-able view of every class (a transport command)."""
        return {name: cls.as_dict() for name, cls in sorted(self._classes.items())}

    def ledger(self, name: str) -> WorkLedger:
        return self._ledgers[name]

    def map_characteristic(self, characteristic: str, class_name: str) -> None:
        """Route requests negotiated under ``characteristic`` to a class."""
        self.qos_class(class_name)
        self._characteristic_classes[characteristic] = class_name

    def mark_control(self, object_key: str) -> None:
        """Serve ``object_key`` (e.g. a negotiation endpoint) as control
        traffic: always admitted, highest priority."""
        self._control_keys.add(object_key)

    def bind_contract(self, class_name: str, granted: Dict[str, float]) -> QoSClass:
        """Tie a class's admitted capacity to a negotiated agreement.

        Recognised granted parameters: ``delay``/``deadline`` seconds
        (queueing-delay bound before shedding), ``rate`` requests per
        second and ``burst`` tokens (admission bucket).  Renegotiation
        calls this again; live buckets of the class are reconfigured in
        place so the new contract applies immediately.
        """
        cls = self.qos_class(class_name)
        deadline = granted.get("delay", granted.get("deadline"))
        if deadline is not None:
            cls.deadline = float(deadline)
        rate = granted.get("rate")
        if rate is not None:
            cls.rate = float(rate)
        burst = granted.get("burst")
        if burst is not None:
            cls.burst = max(1.0, float(burst))
        if cls.rate is not None:
            for owner, bucket in self._buckets.values():
                if owner == class_name:
                    bucket.reconfigure(cls.rate, cls.burst)
        return cls

    def admissible_rate(self, extra_rps: float) -> bool:
        """Can the negotiation plane promise ``extra_rps`` more capacity?

        With no configured ``capacity_rps`` everything is admissible
        (the per-request mechanisms still apply).
        """
        if self.capacity_rps is None:
            return True
        committed = sum(
            cls.rate for cls in self._classes.values() if cls.rate is not None
        )
        return committed + extra_rps <= self.capacity_rps + 1e-9

    # -- policy ------------------------------------------------------------

    @property
    def policy_name(self) -> str:
        return self._policy.name

    def set_policy(self, name: str) -> str:
        """Swap the scheduling policy at runtime.

        Planning state (the per-class ledgers) restarts empty; work
        already committed keeps its schedule through the in-flight heap
        and the host's ``busy_until``.
        """
        try:
            policy = create_policy(name)
        except KeyError as error:
            raise NO_RESOURCES(str(error)) from None
        self._policy = policy.attach(self)
        for ledger in self._ledgers.values():
            ledger.reset()
        self.total.reset()
        return self._policy.name

    # -- classification ----------------------------------------------------

    def classify(self, request: Request) -> QoSClass:
        """Map a request to its scheduling class.

        Control endpoints win, then the explicit class context set at
        binding time, then the negotiated characteristic, then the
        best-effort default.
        """
        if request.target.profile.object_key in self._control_keys:
            return self._classes[CONTROL_CLASS]
        contexts = request.service_contexts
        name = contexts.get(CLASS_CONTEXT)
        if name is not None:
            cls = self._classes.get(name)
            if cls is not None:
                return cls
        characteristic = contexts.get(CHARACTERISTIC_CONTEXT)
        if characteristic is not None:
            name = self._characteristic_classes.get(characteristic)
            if name is not None:
                return self._classes[name]
        return self._classes[DEFAULT_CLASS]

    # -- admission ---------------------------------------------------------

    def queue_depth(self, now: float) -> int:
        """Requests admitted but not yet finished at ``now``."""
        self._drain(now)
        return len(self._inflight)

    def _drain(self, now: float) -> None:
        inflight = self._inflight
        done = bisect_right(inflight, now)
        if done:
            del inflight[:done]

    def _bucket_for(self, cls: QoSClass, request: Request) -> Optional[TokenBucket]:
        if cls.rate is None:
            return None
        key = request.service_contexts.get(BINDING_CONTEXT, cls.name)
        entry = self._buckets.get(key)
        if entry is None:
            entry = (cls.name, TokenBucket(cls.rate, cls.burst))
            self._buckets[key] = entry
        return entry[1]

    def _retry_hint(self, now: float, below: int) -> float:
        """Seconds until the in-flight count falls to ``below``."""
        inflight = self._inflight
        if len(inflight) < below or not inflight:
            return 0.0
        # ``_inflight`` is kept sorted, so the k-th completion is a
        # direct index instead of an O(n log n) ``heapq.nsmallest``.
        kth = inflight[len(inflight) - below]
        return max(0.0, kth - now)

    def _reject(
        self, cls: QoSClass, minor: int, message: str, retry_after: float
    ) -> None:
        stats = self._stats[cls.name]
        if minor == OVERLOAD_DEADLINE:
            stats.shed_deadline += 1
            COUNTERS.sched_shed += 1
        else:
            if minor == OVERLOAD_QUEUE:
                stats.rejected_queue += 1
            else:
                stats.rejected_rate += 1
            COUNTERS.sched_rejected += 1
        raise OVERLOAD(message, minor=minor, retry_after=round(retry_after, 9))

    def admit(self, request: Request, now: float, service_time: float) -> Grant:
        """Admit and schedule one request, or raise :class:`OVERLOAD`.

        ``service_time`` is the servant's raw demand; CPU scaling and
        queueing are the scheduler's business.  Returns the committed
        :class:`Grant`; the caller advances simulated time to its
        ``completion``.
        """
        cls = self.classify(request)
        self._drain(now)
        service = service_time / self.host.cpu_factor
        if not cls.control:
            if len(self._inflight) >= self.max_depth:
                self._reject(
                    cls,
                    OVERLOAD_QUEUE,
                    f"queue depth {len(self._inflight)} at limit {self.max_depth}",
                    self._retry_hint(now, self.max_depth),
                )
            bucket = self._bucket_for(cls, request)
            if bucket is not None and not bucket.try_consume(now):
                self._reject(
                    cls,
                    OVERLOAD_RATE,
                    f"class {cls.name!r} exceeded its negotiated rate "
                    f"{cls.rate}/s",
                    bucket.time_until(now),
                )
            if cls.deadline is not None:
                wait = self._policy.projected_wait(cls, now, service)
                if wait > cls.deadline:
                    self._reject(
                        cls,
                        OVERLOAD_DEADLINE,
                        f"projected wait {wait:.6f}s exceeds the negotiated "
                        f"delay bound {cls.deadline:.6f}s",
                        wait - cls.deadline,
                    )
            deadline_at = request.service_contexts.get(DEADLINE_CONTEXT)
            if deadline_at is not None:
                projected = now + self._policy.projected_wait(cls, now, service)
                projected += service
                if projected > float(deadline_at):
                    # The caller's budget is already blown: serving the
                    # request would only burn capacity on a reply no
                    # one is waiting for.
                    self._reject(
                        cls,
                        OVERLOAD_DEADLINE,
                        f"projected completion {projected:.6f}s exceeds the "
                        f"call deadline {float(deadline_at):.6f}s",
                        0.0,
                    )
        start, completion = self._policy.plan(cls, now, service)
        if self._policy.name != "fifo":
            # Keep the shared ledger meaningful for stats/utilisation.
            self.total.commit(now, service)
        insort(self._inflight, completion)
        depth = len(self._inflight)
        if depth > self.depth_peak:
            self.depth_peak = depth
        self.host.commit_completion(completion)
        wait = max(0.0, completion - now - service)
        stats = self._stats[cls.name]
        stats.admitted += 1
        stats.wait_total += wait
        if wait > stats.wait_max:
            stats.wait_max = wait
        COUNTERS.sched_admitted += 1
        reply_contexts = None
        if depth >= self.backpressure_depth:
            reply_contexts = {
                RETRY_AFTER_CONTEXT: round(
                    self._retry_hint(now, self.backpressure_depth), 9
                )
            }
        return Grant(cls.name, start, completion, wait, reply_contexts)

    # -- reporting ---------------------------------------------------------

    def signals(self, now: float) -> Dict[str, float]:
        """Flat, cheap signal vector for the control plane.

        Cumulative counts (``admitted``/``rejected``/``shed``) are
        monotone; the control loop differentiates them into per-tick
        rates (:class:`repro.control.signals.RateTracker`).
        """
        admitted = rejected = shed = 0
        for stats in self._stats.values():
            admitted += stats.admitted
            rejected += stats.rejected_queue + stats.rejected_rate
            shed += stats.shed_deadline
        return {
            "queue_depth": float(self.queue_depth(now)),
            "admitted": float(admitted),
            "rejected": float(rejected),
            "shed": float(shed),
        }

    def stats_snapshot(self) -> Dict[str, Any]:
        """JSON-able per-class and global scheduler statistics."""
        return {
            "policy": self.policy_name,
            "depth_peak": self.depth_peak,
            "work_committed": self.total.committed,
            "classes": {
                name: stats.as_dict() for name, stats in sorted(self._stats.items())
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RequestScheduler({self.policy_name!r}, "
            f"classes={sorted(self._classes)})"
        )
