"""Client-side backpressure: observing the server's retry-after hints.

The scheduler piggybacks a ``maqs.sched.retry_after`` service context
on replies once its queue passes the backpressure watermark, and on
every OVERLOAD rejection.  The invocation path feeds those hints into
the client ORB's :class:`Backpressure` tracker; mediators (the MAQS
client-side QoS weaving point) consult it to degrade gracefully —
:class:`PacingMediator` simply waits the suggested delay out in
simulated time before issuing.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.core.mediator import Mediator


class Backpressure:
    """Per-destination-host retry-after bookkeeping on one client ORB."""

    __slots__ = ("_hints", "hints_observed")

    def __init__(self) -> None:
        #: host -> (simulated instant until which to hold off).
        self._hints: Dict[str, float] = {}
        self.hints_observed = 0

    def note(self, host: str, retry_after: float, now: float) -> None:
        """Record a hint received from ``host`` at ``now``."""
        if retry_after <= 0.0:
            return
        until = now + retry_after
        if until > self._hints.get(host, 0.0):
            self._hints[host] = until
        self.hints_observed += 1

    def observe_reply(
        self, host: str, service_contexts: Optional[Dict[str, Any]], now: float
    ) -> None:
        """Harvest the scheduler's hint from a reply's service contexts."""
        if not service_contexts:
            return
        from repro.sched.scheduler import RETRY_AFTER_CONTEXT

        hint = service_contexts.get(RETRY_AFTER_CONTEXT)
        if hint is not None:
            self.note(host, float(hint), now)

    def retry_delay(
        self, host: str, error: Any, now: float, floor: float = 0.0
    ) -> float:
        """Seconds to hold off before *retrying* ``host`` after ``error``.

        Merges every hint available: the tracked per-host retry-after
        state, a ``retry_after`` the failed reply carried directly
        (recorded here too, so later calls see it), and the retry
        policy's backoff ``floor``.  The reliability layer's retry loop
        calls this so its exponential backoff never undercuts the
        server's own advertised recovery time.
        """
        direct = getattr(error, "retry_after", None)
        if direct is not None:
            self.note(host, float(direct), now)
        return max(floor, self.suggested_delay(host, now))

    def suggested_delay(self, host: str, now: float) -> float:
        """Seconds a polite client should wait before calling ``host``."""
        until = self._hints.get(host)
        if until is None:
            return 0.0
        if until <= now:
            del self._hints[host]
            return 0.0
        return until - now

    def snapshot(self) -> Dict[str, Any]:
        return {"hints_observed": self.hints_observed, "active": dict(self._hints)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Backpressure(active={len(self._hints)})"


class PacingMediator(Mediator):
    """A mediator that honours the server's backpressure hints.

    Before issuing, it waits (in simulated time) for any retry-after
    the target host advertised — the graceful-degradation half of the
    scheduler's overload protection.  Stacks under richer mediators in
    a :class:`~repro.core.mediator.MediatorChain`.
    """

    characteristic = "__pacing__"

    def __init__(self) -> None:
        super().__init__()
        self.delays_taken = 0
        self.delay_total = 0.0

    def invoke(self, stub: Any, operation: str, args: Tuple[Any, ...]) -> Any:
        self.calls_intercepted += 1
        orb = stub._orb
        delay = orb.backpressure.suggested_delay(
            stub._ior.profile.host, orb.time_source.now()
        )
        if delay > 0.0:
            orb.time_source.wait(delay)
            self.delays_taken += 1
            self.delay_total += delay
        return stub._invoke(operation, args)
