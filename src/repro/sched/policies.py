"""Pluggable scheduling policies for the serving path.

Distribution *policy* is kept separable from the dispatch *mechanism*
(the RAFDA argument): the scheduler owns queues and admission, a
policy only decides when admitted work runs.  Three policies ship:

- **fifo** — the seed behaviour: one global queue, arrival order.
- **priority** — strict priority by negotiated QoS level: a request
  waits only for backlog of classes at its own or a higher priority.
- **wfq** — weighted fair queuing across classes, modelled as the
  GPS fluid limit WFQ approximates: an active class with weight
  ``w`` owns share ``w / Σ active weights`` of the server, so its
  service demand is expanded by the inverse share when committed.

Time model: the serving path is synchronous per request and arrivals
are processed in arrival order, so every policy *commits* a request's
start/finish at its arrival instant from the backlog visible then
(exactly how ``Host.occupy`` already models the FIFO queue).  For
priority and WFQ this is the standard at-arrival, non-preemptive
approximation: work arriving later never revises an earlier commitment.
Decisions depend only on committed ledgers, never on wall-clock time,
so runs are deterministic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sched.scheduler import QoSClass, RequestScheduler


class SchedulerPolicy:
    """Plans admitted requests onto the scheduler's work ledgers."""

    #: Registry name; subclasses must override.
    name = ""

    def __init__(self) -> None:
        self.sched: "RequestScheduler" = None  # type: ignore[assignment]

    def attach(self, scheduler: "RequestScheduler") -> "SchedulerPolicy":
        self.sched = scheduler
        return self

    def projected_wait(
        self, cls: "QoSClass", now: float, service: float = 0.0
    ) -> float:
        """Seconds a ``service``-second request of ``cls`` arriving at
        ``now`` would spend not being served (queueing plus any fair-
        share dilution of its own demand).

        Used by deadline shedding *before* any work is committed; for
        an admitted request it equals the realised wait exactly.
        """
        raise NotImplementedError

    def plan(self, cls: "QoSClass", now: float, service: float) -> tuple:
        """Commit ``service`` seconds (already CPU-scaled) of work.

        Returns ``(start, completion)`` in simulated time.
        """
        raise NotImplementedError


class FIFOPolicy(SchedulerPolicy):
    """Arrival order, one shared queue — the baseline the seed had."""

    name = "fifo"

    def projected_wait(
        self, cls: "QoSClass", now: float, service: float = 0.0
    ) -> float:
        return self.sched.total.remaining(now)

    def plan(self, cls: "QoSClass", now: float, service: float) -> tuple:
        return self.sched.total.commit(now, service)


class StrictPriorityPolicy(SchedulerPolicy):
    """Strict priority by QoS level (lower number = more urgent).

    A class's ledger holds its own backlog *plus* all work committed by
    better classes, so a request waits exactly for the work that may
    legally run before it, and work admitted at one priority consumes
    capacity at every worse priority — the server never serves more
    than one request's worth of time per unit time in aggregate.
    Backlog of worse classes stays invisible.
    """

    name = "priority"

    def projected_wait(
        self, cls: "QoSClass", now: float, service: float = 0.0
    ) -> float:
        return self.sched.ledger(cls.name).remaining(now)

    def plan(self, cls: "QoSClass", now: float, service: float) -> tuple:
        sched = self.sched
        planned = sched.ledger(cls.name).commit(now, service)
        for other in sched.classes():
            if other.name != cls.name and other.priority >= cls.priority:
                sched.ledger(other.name).commit(now, service)
        return planned


class WFQPolicy(SchedulerPolicy):
    """Weighted fair queuing via the GPS fluid model.

    Each backlogged class drains concurrently at its weight share of
    the server, so a committed request's demand is expanded by
    ``Σ active weights / w``.  A class that stays inside its share
    never queues behind a misbehaving neighbour — the property the
    overload benchmark measures.
    """

    name = "wfq"

    def _share(self, cls: "QoSClass", now: float) -> float:
        sched = self.sched
        total_weight = cls.weight
        for other in sched.classes():
            if other.name != cls.name and sched.ledger(other.name).remaining(now) > 0.0:
                total_weight += other.weight
        return cls.weight / total_weight

    def projected_wait(
        self, cls: "QoSClass", now: float, service: float = 0.0
    ) -> float:
        # Backlog ahead of the request, plus the share dilution of its
        # own demand: at share s, ``service`` takes service/s wall-
        # clock seconds of which only ``service`` is actual service.
        backlog = self.sched.ledger(cls.name).remaining(now)
        if service <= 0.0:
            return backlog
        return backlog + service * (1.0 / self._share(cls, now) - 1.0)

    def plan(self, cls: "QoSClass", now: float, service: float) -> tuple:
        share = self._share(cls, now)
        return self.sched.ledger(cls.name).commit(now, service / share)


#: name -> policy class, for runtime swapping through transport commands.
POLICIES: Dict[str, Type[SchedulerPolicy]] = {
    policy.name: policy
    for policy in (FIFOPolicy, StrictPriorityPolicy, WFQPolicy)
}


def create_policy(name: str) -> SchedulerPolicy:
    """Instantiate a policy by registry name."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown scheduling policy {name!r}; available {sorted(POLICIES)}"
        ) from None
