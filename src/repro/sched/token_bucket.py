"""Token-bucket rate limiting on the simulated clock.

The admission controller keeps one bucket per client/server binding:
tokens accrue at the *negotiated* rate (the throughput the server
agreed to in the QoS contract), up to a burst capacity.  A request is
conformant if a whole token is available at its arrival instant;
non-conformant requests are rejected immediately with an overload
exception instead of being queued (Section 4's enforcement along the
communication path, applied to the serving path).

Everything is driven by explicit ``now`` arguments — the bucket never
reads wall-clock time, so admission decisions are deterministic and
replayable in the netsim tests.
"""

from __future__ import annotations


class TokenBucket:
    """A classic token bucket in simulated time.

    >>> bucket = TokenBucket(rate=2.0, burst=2.0)
    >>> bucket.try_consume(0.0), bucket.try_consume(0.0), bucket.try_consume(0.0)
    (True, True, False)
    >>> round(bucket.time_until(0.0), 3)   # next token accrues at 0.5s
    0.5
    >>> bucket.try_consume(0.5)
    True
    """

    __slots__ = ("rate", "burst", "tokens", "_last")

    def __init__(self, rate: float, burst: float = 1.0) -> None:
        if rate <= 0.0:
            raise ValueError(f"rate must be positive: {rate}")
        if burst < 1.0:
            raise ValueError(f"burst must allow at least one token: {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last = 0.0

    def _refill(self, now: float) -> None:
        if now > self._last:
            self.tokens = min(self.burst, self.tokens + (now - self._last) * self.rate)
            self._last = now

    def available(self, now: float) -> float:
        """Tokens available at ``now`` (refills as a side effect)."""
        self._refill(now)
        return self.tokens

    def try_consume(self, now: float, tokens: float = 1.0) -> bool:
        """Consume ``tokens`` if conformant at ``now``; False otherwise."""
        self._refill(now)
        if self.tokens >= tokens:
            self.tokens -= tokens
            return True
        return False

    def time_until(self, now: float, tokens: float = 1.0) -> float:
        """Seconds from ``now`` until ``tokens`` will be available.

        Zero if already conformant — this is the retry-after hint sent
        back to rejected clients.
        """
        self._refill(now)
        deficit = tokens - self.tokens
        if deficit <= 0.0:
            return 0.0
        return deficit / self.rate

    def reconfigure(self, rate: float, burst: float) -> None:
        """Adopt a renegotiated rate/burst; accrued tokens are clamped."""
        if rate <= 0.0:
            raise ValueError(f"rate must be positive: {rate}")
        if burst < 1.0:
            raise ValueError(f"burst must allow at least one token: {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        if self.tokens > self.burst:
            self.tokens = self.burst

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TokenBucket(rate={self.rate}, burst={self.burst}, "
            f"tokens={self.tokens:.3f})"
        )
