"""Event channel: decoupled publish/subscribe notifications.

CORBA deployments of the paper's era used the COS Event Service for
server→client pushes; MAQS's actuality and replication mechanisms can
reuse such a channel (freshness invalidations, membership changes).
This implementation delivers events as **oneway** ``notify`` requests
— fire-and-forget, so a dead subscriber never stalls the publisher —
using the ORB's one-way path with explicit simulated times.

- :class:`EventChannelServant` — the channel: topics, subscriptions,
  publication with per-topic fan-out.
- :class:`SubscriberServant` — base class for callback objects;
  override :meth:`on_event`.
- :class:`CacheInvalidator` — a ready-made subscriber that invalidates
  an :class:`~repro.qos.actuality.freshness.ActualityMediator` cache
  on matching events, turning the actuality characteristic's polling
  cache into a push-invalidated one.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.orb import giop
from repro.orb.exceptions import UserException, register_user_exception
from repro.orb.ior import IOR
from repro.orb.request import Request
from repro.orb.servant import Servant
from repro.orb.stub import Stub


@register_user_exception
class UnknownTopic(UserException):
    """Unsubscribing from a topic that has no such subscriber."""

    repo_id = "IDL:maqs/EventChannel/UnknownTopic:1.0"


class EventChannelServant(Servant):
    """A topic-based event channel."""

    _repo_id = "IDL:maqs/EventChannel:1.0"

    def __init__(self, orb: Any) -> None:
        self._orb = orb
        #: topic -> subscriber IOR strings, in subscription order.
        self._subscribers: Dict[str, List[str]] = {}
        self.events_published = 0
        self.notifications_sent = 0

    # -- remote operations ------------------------------------------------

    def subscribe(self, topic: str, subscriber_ior: str) -> None:
        """Register a subscriber reference for a topic; idempotent."""
        IOR.from_string(subscriber_ior)  # validate early
        subscribers = self._subscribers.setdefault(topic, [])
        if subscriber_ior not in subscribers:
            subscribers.append(subscriber_ior)

    def unsubscribe(self, topic: str, subscriber_ior: str) -> None:
        subscribers = self._subscribers.get(topic, [])
        if subscriber_ior not in subscribers:
            raise UnknownTopic(
                f"no such subscription on {topic!r}", topic=topic
            )
        subscribers.remove(subscriber_ior)

    def subscriber_count(self, topic: str) -> int:
        return len(self._subscribers.get(topic, []))

    def publish(self, topic: str, payload: Any) -> int:
        """Push one event to every subscriber of ``topic``.

        Delivery is oneway: unreachable subscribers are skipped without
        failing the publication.  Returns the number of notifications
        sent (not necessarily delivered — fire-and-forget).
        """
        self.events_published += 1
        delivered = 0
        now = self._orb.clock.now
        for ior_string in self._subscribers.get(topic, []):
            subscriber = IOR.from_string(ior_string)
            request = Request(
                subscriber,
                "notify",
                (topic, payload),
                response_expected=False,
            )
            wire = giop.encode_request(request)
            self._orb.one_way(
                subscriber.profile.host,
                wire,
                now + self._orb.marshal_cost(len(wire)),
            )
            delivered += 1
        self.notifications_sent += delivered
        return delivered


class EventChannelStub(Stub):
    """Client proxy for the event channel."""

    def subscribe(self, topic: str, subscriber: IOR) -> None:
        self._call("subscribe", topic, subscriber.to_string())

    def unsubscribe(self, topic: str, subscriber: IOR) -> None:
        self._call("unsubscribe", topic, subscriber.to_string())

    def subscriber_count(self, topic: str) -> int:
        return self._call("subscriber_count", topic)

    def publish(self, topic: str, payload: Any) -> int:
        return self._call("publish", topic, payload)


class SubscriberServant(Servant):
    """Base class for event callbacks; override :meth:`on_event`."""

    _repo_id = "IDL:maqs/EventSubscriber:1.0"

    def __init__(self) -> None:
        self.events_received = 0

    def notify(self, topic: str, payload: Any) -> None:
        self.events_received += 1
        self.on_event(topic, payload)

    def on_event(self, topic: str, payload: Any) -> None:
        """Handle one pushed event."""


class CacheInvalidator(SubscriberServant):
    """Invalidate an Actuality mediator's cache on pushed events.

    The event payload may name the operation to invalidate (a string);
    any other payload clears the whole cache.  With push invalidation,
    a client can negotiate a *large* max_age (few polls) and still
    never observe stale data — the channel carries the freshness
    signal instead.
    """

    def __init__(self, mediator: Any) -> None:
        super().__init__()
        self.mediator = mediator
        self.invalidations = 0

    def on_event(self, topic: str, payload: Any) -> None:
        if isinstance(payload, str) and payload:
            self.invalidations += self.mediator.invalidate(payload)
        else:
            self.invalidations += self.mediator.invalidate()
