"""Portable-Object-Adapter-style object adapter.

Section 2.3: "The skeleton on the server side reflects the pendant to
the stub object.  Incoming requests via the ORB are delegated to the
service."  The POA owns the object map (object key → servant), creates
IORs, and models server-side queueing: each request occupies the
host's single-server FIFO queue for the servant's service time.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Tuple

from repro.orb.exceptions import OBJECT_NOT_EXIST
from repro.orb.ior import IOR, IIOPProfile, TaggedComponent
from repro.orb.request import Request
from repro.orb.servant import Servant


class POA:
    """The object adapter of one ORB."""

    def __init__(self, orb: "ORB") -> None:  # noqa: F821 - circular by design
        self._orb = orb
        self._servants: Dict[str, Servant] = {}
        self._key_counter = itertools.count(1)
        self.requests_dispatched = 0

    # -- activation -----------------------------------------------------

    def activate_object(
        self,
        servant: Servant,
        object_key: Optional[str] = None,
        components: Optional[List[TaggedComponent]] = None,
    ) -> IOR:
        """Register a servant and return its object reference.

        ``components`` lets callers attach tagged components (e.g. the
        MAQS QoS tag) at activation time.
        """
        if object_key is None:
            object_key = f"obj-{next(self._key_counter)}"
        if object_key in self._servants:
            raise ValueError(f"object key already active: {object_key!r}")
        self._servants[object_key] = servant
        profile = IIOPProfile(self._orb.host_name, self._orb.port, object_key)
        return IOR(servant._repo_id, profile, components)

    def deactivate_object(self, object_key: str) -> None:
        """Remove a servant; later requests raise OBJECT_NOT_EXIST."""
        if object_key not in self._servants:
            raise OBJECT_NOT_EXIST(f"no active object with key {object_key!r}")
        del self._servants[object_key]

    def servant(self, object_key: str) -> Servant:
        """Look up the servant incarnating ``object_key``."""
        try:
            return self._servants[object_key]
        except KeyError:
            raise OBJECT_NOT_EXIST(
                f"no active object with key {object_key!r} on "
                f"{self._orb.host_name!r}"
            ) from None

    def active_keys(self) -> List[str]:
        return sorted(self._servants)

    # -- dispatch ---------------------------------------------------------

    def dispatch(
        self, request: Request, at_time: float
    ) -> Tuple[Any, float, Optional[Dict[str, Any]]]:
        """Deliver a request to its servant.

        Returns ``(result, finish_time, reply_contexts)`` where
        ``finish_time`` accounts for queueing and the servant's
        simulated service time on this host and ``reply_contexts`` are
        scheduler-piggybacked reply service contexts (``None`` unless a
        scheduler is installed and has something to say, e.g. a
        backpressure retry-after hint).  Exceptions propagate to the
        caller (the ORB encodes them into the reply) — including the
        scheduler's OVERLOAD rejections.
        """
        servant = self.servant(request.target.profile.object_key)
        host = self._orb.host
        service_time = servant._service_time(request.operation, request.args)
        # Expose the simulated receive/processing-start instants to the
        # QoS layer (what real ORBs give interceptors as timestamps) —
        # prologs use them e.g. for deadline admission control.
        contexts = dict(request.service_contexts)
        contexts["maqs.arrival_time"] = at_time
        scheduler = self._orb.scheduler
        reply_contexts: Optional[Dict[str, Any]] = None
        if scheduler is not None:
            # Admission control + policy scheduling; raises OVERLOAD
            # when the request is not admissible (the POA never sees
            # the servant in that case — shed before dispatch).
            grant = scheduler.admit(request, at_time, service_time)
            contexts["maqs.start_time"] = grant.start
            finish_time = grant.completion
            reply_contexts = grant.reply_contexts
        else:
            contexts["maqs.start_time"] = max(at_time, host.busy_until)
            finish_time = host.occupy(at_time, service_time)
        result = servant._dispatch(request.operation, request.args, contexts)
        self.requests_dispatched += 1
        return result, finish_time, reply_contexts
