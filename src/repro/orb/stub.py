"""Client-side stub runtime.

Section 3.3: "On the client side the stub is extended by a so called
mediator. ... At runtime the mediator of the desired QoS is set in the
stub as a delegate.  Each call is intercepted and delegated to the
mediator which can issue the QoS behaviour on the client side."

:class:`Stub` is the base class of all generated (and hand-written)
stubs.  Every generated method funnels through :meth:`_call`, which
delegates to the installed mediator when one is set and performs the
plain invocation otherwise.  The mediator receives the stub itself, so
it can re-issue, redirect, transform or suppress the invocation.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.orb.ami import ReplyFuture
from repro.orb.ior import IOR
from repro.orb.request import Request


class Stub:
    """Proxy for a remote object."""

    #: Operations declared ``oneway`` in the IDL; the QIDL compiler
    #: fills this on generated stubs.  Oneway requests are fire-and-
    #: forget: the caller resumes once the message has left.
    _oneway_ops: frozenset = frozenset()

    #: Operations declared ``idempotent`` in the IDL (attribute reads
    #: and writes are idempotent by construction); the QIDL compiler
    #: fills this on generated stubs.  The reliability layer may retry
    #: these after an *ambiguous* failure — when the servant might
    #: already have executed — because re-execution is harmless.
    _idempotent_ops: frozenset = frozenset()

    def __init__(self, orb: "ORB", ior: IOR) -> None:  # noqa: F821
        self._orb = orb
        self._ior = ior
        self._mediator: Optional[Any] = None
        #: Service contexts attached to every outgoing request (the
        #: negotiated characteristic rides here, see core.binding).
        self._contexts: Dict[str, Any] = {}
        #: Non-zero while a ``send_deferred`` is unwinding through the
        #: mediator chain: the innermost ``_invoke`` then returns a
        #: :class:`~repro.orb.ami.ReplyFuture` instead of blocking.
        self._deferred_depth = 0

    # -- mediator delegation (the MAQS client-side weaving hook) ---------

    def _set_mediator(self, mediator: Optional[Any]) -> None:
        """Install (or with None, remove) the QoS mediator delegate."""
        self._mediator = mediator

    def _get_mediator(self) -> Optional[Any]:
        return self._mediator

    # -- invocation -------------------------------------------------------

    def _call(self, operation: str, *args: Any) -> Any:
        """Entry point used by every generated method."""
        if self._mediator is not None:
            return self._mediator.invoke(self, operation, args)
        return self._invoke(operation, args)

    def send_deferred(self, operation: str, *args: Any) -> ReplyFuture:
        """Issue ``operation`` asynchronously; returns its reply future.

        The call takes the exact same route as a synchronous one —
        through the installed mediator (chain), so QoS interception
        still wraps it — but the underlying invocation joins the AMI
        pipeline instead of blocking: collect the outcome with
        ``future.result()`` (or poll / attach a callback; see
        :class:`~repro.orb.ami.ReplyFuture`).  A lone
        ``send_deferred(op).result()`` is behaviourally identical to
        calling ``op`` synchronously.  Mediators that answer without
        invoking (caches) short-circuit into an already-resolved
        future.
        """
        self._deferred_depth += 1
        try:
            outcome = self._call(operation, *args)
        finally:
            self._deferred_depth -= 1
        if isinstance(outcome, ReplyFuture):
            return outcome
        return self._orb.ami.completed(outcome, self._ior.profile.host)

    def _invoke(
        self,
        operation: str,
        args: Tuple[Any, ...],
        extra_contexts: Optional[Dict[str, Any]] = None,
        target: Optional[IOR] = None,
    ) -> Any:
        """Perform the actual ORB invocation (bypasses the mediator).

        Mediators call this to issue the underlying request after
        applying their client-side QoS behaviour; ``target`` lets a
        mediator redirect the call (e.g. to a specific replica).
        """
        contexts = dict(self._contexts)
        if extra_contexts:
            contexts.update(extra_contexts)
        pools = self._orb.pools
        request = pools.acquire_request(
            target if target is not None else self._ior,
            operation,
            args,
            contexts,
            operation not in self._oneway_ops,
        )
        try:
            if self._deferred_depth:
                # Deferred mode: the AMI engine snapshots (encodes) the
                # request before returning, so recycling below is just
                # as safe as on the synchronous path.
                return self._orb.invoke_deferred(request)
            return self._orb.invoke(request)
        finally:
            # The request's lifetime is call-scoped: the server decodes
            # its own copy from the wire, so recycling here is safe.
            pools.release_request(request)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mediated = " mediated" if self._mediator is not None else ""
        return f"{type(self).__name__}({self._ior!r}{mediated})"
