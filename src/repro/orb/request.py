"""The dual-use request.

Section 4: "The CORBA request is used in a dual fashion.  Naturally,
it is used to transport a service-request from the client to the
server.  It is also used to configure and control the QoS mechanisms
and the QoS transport in the ORB.  The request is tagged, indicating
whether it is used as a command or a request."

A :class:`Request` therefore carries a ``kind`` tag (:data:`REQUEST`
or :data:`COMMAND`) and, for commands, the ``command_target`` — either
the literal ``"transport"`` or the name of a QoS module — matching the
"target member of the request" in the paper.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional, Tuple

from repro.orb.ior import IOR

#: Tag: an ordinary service request for the target object.
REQUEST = "request"
#: Tag: a command interpreted by the QoS transport or one of its modules.
COMMAND = "command"

#: ``command_target`` value addressing the QoS transport itself.
TRANSPORT_TARGET = "transport"

_request_ids = itertools.count(1)


def next_request_id() -> int:
    """Draw the next id from the shared request-id allocator.

    Every :class:`Request` (constructed or recycled through the pools)
    and every GIOP message the ORB originates itself (LocateRequest,
    the AMI pipeline) draws from this one sequence, so reply
    correlation by ``request_id`` can never collide across message
    kinds in flight on the same binding.
    """
    return next(_request_ids)


def reset_request_ids(start: int = 1) -> None:
    """Restart the shared id sequence (deterministic replay only).

    Tests and benchmarks that compare two separately built worlds
    byte-for-byte call this between runs so both draw the same ids —
    the id is part of the encoded request, so without it the wire
    bytes of otherwise identical runs differ.
    """
    global _request_ids
    _request_ids = itertools.count(start)


class Request:
    """One invocation travelling through the ORB.

    ``service_contexts`` is the CORBA service-context list modelled as
    a string-keyed map; MAQS uses it to piggyback the negotiated
    characteristic on service requests.
    """

    __slots__ = (
        "request_id",
        "target",
        "operation",
        "args",
        "kind",
        "command_target",
        "service_contexts",
        "response_expected",
    )

    def __init__(
        self,
        target: IOR,
        operation: str,
        args: Tuple[Any, ...] = (),
        kind: str = REQUEST,
        command_target: Optional[str] = None,
        service_contexts: Optional[Dict[str, Any]] = None,
        response_expected: bool = True,
        request_id: Optional[int] = None,
    ) -> None:
        if kind not in (REQUEST, COMMAND):
            raise ValueError(f"kind must be {REQUEST!r} or {COMMAND!r}: {kind!r}")
        if kind == COMMAND and not command_target:
            raise ValueError("a command must name its target (transport or module)")
        if kind == REQUEST and command_target is not None:
            raise ValueError("a service request must not name a command target")
        # An explicit id means the request is a *decoded copy* of one
        # already in flight (the server's half); only originals draw
        # from the shared allocator — decoding must never perturb it.
        self.request_id = next_request_id() if request_id is None else request_id
        self.target = target
        self.operation = operation
        self.args = tuple(args)
        self.kind = kind
        self.command_target = command_target
        self.service_contexts = dict(service_contexts or {})
        self.response_expected = response_expected

    @property
    def is_command(self) -> bool:
        return self.kind == COMMAND

    def _reuse(
        self,
        target: IOR,
        operation: str,
        args: Tuple[Any, ...],
        service_contexts: Dict[str, Any],
        response_expected: bool,
    ) -> "Request":
        """Re-initialise a pooled instance as a fresh service request.

        Only plain (non-command) requests are pooled, so the kind and
        command-target invariants hold by construction; a new request
        id is drawn so reply correlation behaves exactly as for a
        newly constructed request.
        """
        self.request_id = next_request_id()
        self.target = target
        self.operation = operation
        self.args = tuple(args)
        self.kind = REQUEST
        self.command_target = None
        self.service_contexts = service_contexts
        self.response_expected = response_expected
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_command:
            return (
                f"Request(#{self.request_id} COMMAND {self.operation!r} "
                f"-> {self.command_target!r})"
            )
        return (
            f"Request(#{self.request_id} {self.operation!r} "
            f"-> {self.target.profile.object_key!r})"
        )


def command(
    target: IOR,
    command_target: str,
    operation: str,
    *args: Any,
    service_contexts: Optional[Dict[str, Any]] = None,
) -> Request:
    """Convenience constructor for a module/transport command."""
    return Request(
        target,
        operation,
        args,
        kind=COMMAND,
        command_target=command_target,
        service_contexts=service_contexts,
    )
