"""CORBA-style exception hierarchy.

System exceptions mirror the standard CORBA minor set the paper's
platform (CORBA 2.3) defines; :class:`BAD_QOS` is the MAQS addition
raised when an operation of a *non-negotiated* QoS characteristic is
invoked (Section 3.3: "only the operations of the actual negotiated
QoS characteristic are processed while others raise an exception").
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class SystemException(Exception):
    """Base of all ORB-raised exceptions (CORBA system exceptions)."""

    #: Repository-id style identifier, filled per subclass.
    repo_id = "IDL:omg.org/CORBA/SystemException:1.0"

    def __init__(self, message: str = "", minor: int = 0) -> None:
        super().__init__(message)
        self.message = message
        self.minor = minor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.message!r}, minor={self.minor})"


class COMM_FAILURE(SystemException):
    """Communication with the target failed (crash, loss, link down)."""

    repo_id = "IDL:omg.org/CORBA/COMM_FAILURE:1.0"


class TRANSIENT(SystemException):
    """A transient failure; the request may be retried."""

    repo_id = "IDL:omg.org/CORBA/TRANSIENT:1.0"


class OBJECT_NOT_EXIST(SystemException):
    """The target object does not exist (deactivated or bad key)."""

    repo_id = "IDL:omg.org/CORBA/OBJECT_NOT_EXIST:1.0"


class BAD_OPERATION(SystemException):
    """The operation is not part of the target's interface."""

    repo_id = "IDL:omg.org/CORBA/BAD_OPERATION:1.0"


class BAD_PARAM(SystemException):
    """An argument did not conform to the operation signature."""

    repo_id = "IDL:omg.org/CORBA/BAD_PARAM:1.0"


class MARSHAL(SystemException):
    """Marshalling or unmarshalling failed."""

    repo_id = "IDL:omg.org/CORBA/MARSHAL:1.0"


class NO_PERMISSION(SystemException):
    """The caller lacks permission for the operation."""

    repo_id = "IDL:omg.org/CORBA/NO_PERMISSION:1.0"


class NO_RESOURCES(SystemException):
    """The ORB could not obtain the resources the request needs."""

    repo_id = "IDL:omg.org/CORBA/NO_RESOURCES:1.0"


class BAD_QOS(SystemException):
    """MAQS: operation belongs to a QoS characteristic that is not negotiated."""

    repo_id = "IDL:maqs/BAD_QOS:1.0"


class TIMEOUT(SystemException):
    """The request's reliability deadline expired before completion.

    Mirrors CORBA Messaging's TIMEOUT: raised on the *client* when the
    per-call/per-binding deadline of :mod:`repro.reliability` runs out
    — before issuing (no budget left for another attempt) or between
    retries.  Never retried: the budget is gone by definition.
    """

    repo_id = "IDL:omg.org/CORBA/TIMEOUT:1.0"


class OVERLOAD(TRANSIENT):
    """MAQS: the server's request scheduler refused to serve the request.

    Raised instead of queueing a request to death: admission control
    (token-bucket non-conformance, queue-depth limits) and deadline
    shedding both surface as this TRANSIENT subclass, so existing
    retry logic keeps working while schedulers can be told apart by
    the minor code (see :mod:`repro.sched.scheduler`).  A server-side
    ``retry_after`` hint travels in the reply service contexts and is
    re-attached to the decoded exception on the client.
    """

    repo_id = "IDL:maqs/OVERLOAD:1.0"

    def __init__(
        self, message: str = "", minor: int = 0, retry_after: Optional[float] = None
    ) -> None:
        super().__init__(message, minor)
        self.retry_after = retry_after


#: repo_id -> class, for re-raising exceptions decoded from replies.
SYSTEM_EXCEPTIONS: Dict[str, type] = {
    cls.repo_id: cls
    for cls in (
        SystemException,
        COMM_FAILURE,
        TRANSIENT,
        OBJECT_NOT_EXIST,
        BAD_OPERATION,
        BAD_PARAM,
        MARSHAL,
        NO_PERMISSION,
        NO_RESOURCES,
        TIMEOUT,
        BAD_QOS,
        OVERLOAD,
    )
}


def mark_unexecuted(error: SystemException) -> SystemException:
    """Flag ``error`` as raised *before* the servant could execute.

    The transport sets this on forward-leg failures (the request never
    reached a live server), which is the information at-most-once retry
    needs: replaying such a call — idempotent or not — cannot duplicate
    an execution.  Reply-leg failures stay unflagged: the servant may
    have run, so only declared-idempotent operations may be retried.
    """
    error.unexecuted = True
    return error


def is_unexecuted(error: Exception) -> bool:
    """Did ``error`` provably occur before any servant execution?

    True for transport errors flagged by :func:`mark_unexecuted` and
    for :class:`OVERLOAD` (the scheduler sheds at admission, strictly
    before servant dispatch — the guarantee survives the wire, where
    ad-hoc attributes do not).
    """
    return isinstance(error, OVERLOAD) or getattr(error, "unexecuted", False)


class UserException(Exception):
    """Base of application-defined (IDL ``exception``) exceptions.

    Generated exception classes carry their fields in ``members``; the
    wire format transports ``repo_id`` plus the member dictionary, so a
    peer without the generated class still receives a faithful
    :class:`UserException`.
    """

    repo_id = "IDL:maqs/UserException:1.0"

    def __init__(self, message: str = "", **members: Any) -> None:
        super().__init__(message or type(self).__name__)
        self.message = message
        self.members = members

    def __getattr__(self, name: str) -> Any:
        members = self.__dict__.get("members") or {}
        if name in members:
            return members[name]
        raise AttributeError(name)


def system_exception_from_wire(
    repo_id: str, message: str, minor: int
) -> SystemException:
    """Reconstruct a system exception decoded from a reply."""
    cls = SYSTEM_EXCEPTIONS.get(repo_id, SystemException)
    return cls(message, minor)


def user_exception_from_wire(
    repo_id: str, message: str, members: Optional[Dict[str, Any]] = None
) -> UserException:
    """Reconstruct a user exception decoded from a reply.

    If a generated class registered itself under ``repo_id`` it is
    instantiated; otherwise a plain :class:`UserException` carries the
    payload.
    """
    cls = USER_EXCEPTIONS.get(repo_id, UserException)
    error = cls(message, **(members or {}))
    error.repo_id = repo_id
    return error


#: Registry filled by generated exception classes (QIDL compiler output).
USER_EXCEPTIONS: Dict[str, type] = {}


def register_user_exception(cls: type) -> type:
    """Class decorator: make a user exception reconstructible from the wire."""
    if not issubclass(cls, UserException):
        raise TypeError(f"{cls!r} must subclass UserException")
    USER_EXCEPTIONS[cls.repo_id] = cls
    return cls
