"""Server-side skeleton runtime.

Generated skeletons subclass :class:`TypedSkeleton`: a servant whose
dispatch validates the operation against the IDL-declared signature
table before calling the implementation method.  The QIDL compiler
emits the ``_signatures`` table; QoS weaving (prolog/epilog, delegate
exchange) is layered on top by :mod:`repro.core.qos_skeleton`.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.orb.exceptions import BAD_OPERATION, BAD_PARAM
from repro.orb.servant import Servant
from repro.qidl.types import check_value


class OperationSignature:
    """Declared parameter and result types of one IDL operation.

    ``param_types`` are the wire inputs (``in`` and ``inout``
    parameters); ``out_types`` are the extra outputs (``out`` and
    ``inout``).  With out parameters, the Python mapping returns a
    tuple ``(result, *outs)`` — or just ``(outs...)`` when the result
    type is void — and the signature validates that composite shape.
    """

    __slots__ = ("name", "param_types", "result_type", "out_types", "oneway")

    def __init__(
        self,
        name: str,
        param_types: Tuple[str, ...],
        result_type: str,
        out_types: Tuple[str, ...] = (),
        oneway: bool = False,
    ) -> None:
        self.name = name
        self.param_types = tuple(param_types)
        self.result_type = result_type
        self.out_types = tuple(out_types)
        self.oneway = oneway

    def check_args(self, args: Tuple[Any, ...]) -> None:
        """Validate argument count and types against the signature."""
        if len(args) != len(self.param_types):
            raise BAD_PARAM(
                f"{self.name!r} expects {len(self.param_types)} argument(s), "
                f"got {len(args)}"
            )
        for index, (value, idl_type) in enumerate(zip(args, self.param_types)):
            if not check_value(idl_type, value):
                raise BAD_PARAM(
                    f"{self.name!r} argument {index} must be IDL "
                    f"{idl_type!r}, got {type(value).__name__}"
                )

    def check_result(self, value: Any) -> None:
        """Validate the servant's return value (composite if out params)."""
        if not self.out_types:
            if not check_value(self.result_type, value):
                raise BAD_PARAM(
                    f"{self.name!r} must return IDL {self.result_type!r}, "
                    f"got {type(value).__name__}"
                )
            return
        expected = list(self.out_types)
        if self.result_type != "void":
            expected.insert(0, self.result_type)
        if not isinstance(value, (list, tuple)) or len(value) != len(expected):
            raise BAD_PARAM(
                f"{self.name!r} has out parameters and must return a "
                f"{len(expected)}-tuple, got {type(value).__name__}"
            )
        for index, (item, idl_type) in enumerate(zip(value, expected)):
            if not check_value(idl_type, item):
                raise BAD_PARAM(
                    f"{self.name!r} composite result element {index} must "
                    f"be IDL {idl_type!r}, got {type(item).__name__}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        params = ", ".join(self.param_types)
        return f"{self.result_type} {self.name}({params})"


#: Per-class operation tables: class -> {operation: (signature, function)}.
#: Built once on first dispatch so the per-request path is two dict hits
#: instead of a signature lookup plus a getattr through the MRO.
_OP_TABLES: Dict[type, Dict[str, Tuple[OperationSignature, Any]]] = {}


def _plain_function(cls: type, name: str) -> Optional[Any]:
    """The plain function implementing ``name`` on ``cls``, if any.

    Walks the MRO like ``getattr`` but returns None for descriptors
    (static/class methods, properties) and non-callables — those keep
    the generic instance-``getattr`` binding path so their semantics
    are unchanged.
    """
    for base in cls.__mro__:
        attr = base.__dict__.get(name)
        if attr is None:
            continue
        if isinstance(attr, (staticmethod, classmethod, property)):
            return None
        if callable(attr):
            return attr
        return None
    return None


def _build_op_table(cls: type) -> Dict[str, Tuple[OperationSignature, Any]]:
    table: Dict[str, Tuple[OperationSignature, Any]] = {}
    for name, signature in cls._signatures.items():
        fn = _plain_function(cls, name)
        if fn is not None:
            table[name] = (signature, fn)
    _OP_TABLES[cls] = table
    return table


class TypedSkeleton(Servant):
    """A servant with an IDL-typed dispatch table."""

    #: operation name -> OperationSignature; filled by generated code.
    _signatures: Dict[str, OperationSignature] = {}

    def _dispatch(self, operation: str, args: Tuple[Any, ...],
                  contexts: Optional[Dict[str, Any]] = None) -> Any:
        cls = type(self)
        table = _OP_TABLES.get(cls)
        if table is None:
            table = _build_op_table(cls)
        entry = table.get(operation)
        if entry is not None and operation not in self.__dict__:
            signature, fn = entry
            signature.check_args(args)
            result = fn(self, *args)
            signature.check_result(result)
            return result
        # Slow path: unknown operation, or one implemented through a
        # descriptor / instance attribute the table cannot pre-bind.
        signature = self._signatures.get(operation)
        if signature is None:
            raise BAD_OPERATION(
                f"{type(self).__name__} has no operation {operation!r}"
            )
        signature.check_args(args)
        method = getattr(self, operation, None)
        if method is None:
            raise BAD_OPERATION(
                f"{type(self).__name__} does not implement {operation!r}"
            )
        result = method(*args)
        signature.check_result(result)
        return result
