"""Naming service.

A plain CORBA-style name service used to bootstrap the examples and
benchmarks.  Its stub and servant are hand-written against the same
runtime API that QIDL-generated code uses, so the pair doubles as the
reference for what the generator emits.
"""

from __future__ import annotations

from typing import Dict, List

from repro.orb.exceptions import UserException, register_user_exception
from repro.orb.ior import IOR
from repro.orb.servant import Servant
from repro.orb.stub import Stub


@register_user_exception
class NotFound(UserException):
    """The name is not bound."""

    repo_id = "IDL:maqs/NamingService/NotFound:1.0"


@register_user_exception
class AlreadyBound(UserException):
    """The name is already bound and rebinding was not requested."""

    repo_id = "IDL:maqs/NamingService/AlreadyBound:1.0"


class NamingServant(Servant):
    """Server-side name table."""

    _repo_id = "IDL:maqs/NamingService:1.0"

    def __init__(self) -> None:
        self._bindings: Dict[str, str] = {}

    def bind(self, name: str, ior_string: str) -> None:
        if name in self._bindings:
            raise AlreadyBound(f"name {name!r} is already bound", name=name)
        self._bindings[name] = ior_string

    def rebind(self, name: str, ior_string: str) -> None:
        self._bindings[name] = ior_string

    def resolve(self, name: str) -> str:
        try:
            return self._bindings[name]
        except KeyError:
            raise NotFound(f"nothing bound under {name!r}", name=name) from None

    def unbind(self, name: str) -> None:
        if name not in self._bindings:
            raise NotFound(f"nothing bound under {name!r}", name=name)
        del self._bindings[name]

    def list_names(self) -> List[str]:
        return sorted(self._bindings)


class NamingStub(Stub):
    """Client-side proxy for the naming service."""

    def bind(self, name: str, ior: IOR) -> None:
        self._call("bind", name, ior.to_string())

    def rebind(self, name: str, ior: IOR) -> None:
        self._call("rebind", name, ior.to_string())

    def resolve(self, name: str) -> IOR:
        return IOR.from_string(self._call("resolve", name))

    def unbind(self, name: str) -> None:
        self._call("unbind", name)

    def list_names(self) -> List[str]:
        return list(self._call("list_names"))
