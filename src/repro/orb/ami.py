"""Asynchronous Method Invocation: reply futures and GIOP pipelining.

CORBA's Messaging/AMI model separates *when a call is issued* from
*when its reply is consumed* — invocation mode as a distribution
concern the middleware owns, not the application (the RAFDA argument).
This module adds that layer on the client side:

- :class:`ReplyFuture` — the handle on one deferred invocation:
  poll / result / exception plus an optional completion callback.
  ``invoke`` is exactly ``send_deferred(...).result()``; tests assert
  the equivalence byte-for-byte and clock-tick-for-clock-tick.
- :class:`PipelinedChannel` — one client-side pipeline per
  (module, destination) binding.  Deferred requests are encoded
  immediately (recycling :class:`~repro.orb.pool.WirePools` buffers)
  and queued; ``flush()`` puts the whole window on the wire
  back-to-back, so N requests pay the client's serialized marshal
  work plus ~one RTT plus the server's serialized service time —
  instead of the synchronous path's N full round trips.
- :class:`AMIEngine` — the per-ORB owner of the channels, the
  in-flight accounting and the auto-flush window.

Replies are demultiplexed by GIOP ``request_id``: the server's
:class:`~repro.sched.scheduler.RequestScheduler` (priority/WFQ) may
finish requests in a different order than they were sent, so replies
are processed in *completion* order and matched back to their futures
through the correlation map — the map is load-bearing, not cosmetic.

Wire bytes are identical to the synchronous path per message: each
request is GIOP-encoded individually and transformed through the
module's ``wrap_burst`` (byte-identical to per-message ``wrap`` by the
module contract).  Faults mid-window (``PacketLost``, ``HostCrashed``)
fail only the affected futures, with the same CORBA exception types
and minors the synchronous path raises; every queued future is
resolved by its flush — no future ever hangs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.orb import giop
from repro.orb.exceptions import MARSHAL, SystemException
from repro.orb.invocation import absorb_reply
from repro.orb.modules.base import decode_envelope, encode_envelope, is_envelope
from repro.orb.request import Request
from repro.perf.counters import COUNTERS


class ReplyFuture:
    """The client's handle on one deferred invocation.

    Lifecycle: *queued* in a :class:`PipelinedChannel` until the window
    is flushed, then *done* — the simulation knows the outcome, which
    becomes visible to the caller once the clock reaches the reply's
    arrival instant (:meth:`poll`) or the caller waits for it
    (:meth:`result` / :meth:`exception`, which advance the clock).
    """

    __slots__ = (
        "_orb",
        "request_id",
        "dest_host",
        "_channel",
        "_reply",
        "_error",
        "_ready_time",
        "_callbacks",
        "transport_error",
        "_done",
    )

    def __init__(
        self,
        orb: Any,
        request_id: int,
        dest_host: str,
        channel: Optional["PipelinedChannel"] = None,
    ) -> None:
        self._orb = orb
        self.request_id = request_id
        self.dest_host = dest_host
        self._channel = channel
        self._reply: Optional[giop.Reply] = None
        self._error: Optional[Exception] = None
        self._ready_time = 0.0
        self._callbacks: List[Callable[["ReplyFuture"], None]] = []
        #: True when the failure happened in transport (send/receive
        #: legs) rather than travelling as an encoded reply exception.
        self.transport_error = False
        self._done = False

    # -- inspection -------------------------------------------------------

    @property
    def done(self) -> bool:
        """Has the outcome been determined (window flushed)?"""
        return self._done

    @property
    def ready_time(self) -> float:
        """Simulated instant the outcome becomes visible to the caller."""
        return self._ready_time

    @property
    def error(self) -> Optional[Exception]:
        """The recorded exception, without waiting (None until failed)."""
        return self._error

    def poll(self) -> bool:
        """Has the reply arrived by the current simulated time?

        A future still queued in an unflushed window polls False: its
        request has not even departed yet.
        """
        return self._done and self._orb.time_source.now() >= self._ready_time

    # -- consumption ------------------------------------------------------

    def flush(self) -> "ReplyFuture":
        """Force the window this future rides in onto the wire."""
        if not self._done and self._channel is not None:
            self._channel.flush()
        return self

    def result(self) -> Any:
        """Wait (advance the clock) for the reply; return or raise it.

        Flushes the pending window first if needed, so a lone
        ``send_deferred(...).result()`` behaves exactly like the
        synchronous ``invoke`` — same bytes, same simulated timing,
        same exceptions.
        """
        self.flush()
        self._orb.time_source.wait_until(self._ready_time)
        if self._error is not None:
            raise self._error
        return self._reply.value()

    def exception(self) -> Optional[Exception]:
        """Like :meth:`result` but returning the exception (or None)."""
        self.flush()
        self._orb.time_source.wait_until(self._ready_time)
        return self._error

    def add_done_callback(
        self, callback: Callable[["ReplyFuture"], None]
    ) -> "ReplyFuture":
        """Call ``callback(future)`` once the outcome is known.

        Fires during flush processing (callback-model AMI); a future
        that is already done fires immediately.
        """
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)
        return self

    # -- completion (called by the channel/engine) ------------------------

    def _resolve(
        self,
        reply: Optional[giop.Reply],
        error: Optional[Exception],
        ready_time: float,
        transport: bool = False,
    ) -> None:
        if self._done:  # defensive: a future resolves exactly once
            return
        channel = self._channel
        self._reply = reply
        self._error = error
        self._ready_time = ready_time
        self.transport_error = transport
        self._done = True
        self._channel = None
        if channel is not None:
            channel.engine._retire(self)
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._done else "queued"
        return f"ReplyFuture(#{self.request_id} -> {self.dest_host!r}, {state})"


class _QueuedCall:
    """One encoded request waiting in a channel's window."""

    __slots__ = ("body", "future", "reservations", "context")

    def __init__(
        self,
        body: bytes,
        future: ReplyFuture,
        reservations: Optional[Dict[int, float]],
        context: Optional[Dict[str, Any]],
    ) -> None:
        self.body = body
        self.future = future
        self.reservations = reservations
        self.context = context


class PipelinedChannel:
    """One client-side request pipeline: a (module, destination) binding.

    Queued requests are already encoded; :meth:`flush` transmits the
    window back-to-back, lets the server process every message in its
    own (overlapping) simulated time, then resolves the futures in
    reply-*completion* order through the request-id correlation map.
    """

    __slots__ = (
        "engine",
        "orb",
        "module",
        "dest_host",
        "_queue",
        "windows_flushed",
        "messages_flushed",
    )

    def __init__(self, engine: "AMIEngine", module: Any, dest_host: str) -> None:
        self.engine = engine
        self.orb = engine.orb
        self.module = module
        self.dest_host = dest_host
        self._queue: List[_QueuedCall] = []
        self.windows_flushed = 0
        self.messages_flushed = 0

    def __len__(self) -> int:
        return len(self._queue)

    def enqueue(self, request: Request, future: ReplyFuture) -> ReplyFuture:
        """Encode ``request`` now and queue it for the next flush.

        Encoding happens at enqueue time because the request object is
        call-scoped (it returns to the ORB's pools when the stub call
        unwinds); everything the flush needs is snapshotted here.
        """
        module = self.module
        body = giop.encode_request(request, pools=self.orb.pools)
        self._queue.append(
            _QueuedCall(
                body,
                future,
                module.reservations_for(request),
                module.context_for(request) if module.uses_envelope else None,
            )
        )
        return future

    def flush(self) -> int:
        """Put the queued window on the wire; resolve every future.

        Returns the number of requests transmitted.  The client's
        clock advances over its own serialized send work (marshal +
        module CPU); each reply's arrival instant is recorded on its
        future, so completions overlap in simulated time — the whole
        window costs ~one RTT plus the server's serialized service
        time instead of N round trips.
        """
        items, self._queue = self._queue, []
        if not items:
            return 0
        orb = self.orb
        module = self.module
        transport = orb.transport
        marshal_cost = orb.marshal_cost
        cursor = orb.time_source.now()
        wrapped: Optional[List[Tuple[Dict[str, Any], bytes, float]]] = None
        if module.uses_envelope:
            wrapped = module.wrap_burst(
                [item.body for item in items], items[0].context
            )
        #: request_id -> future: the reply correlation map.
        pending: Dict[int, ReplyFuture] = {}
        arrivals: List[Tuple[float, int, bytes]] = []
        for index, item in enumerate(items):
            cursor += marshal_cost(len(item.body))
            if wrapped is not None:
                params, payload, cpu = wrapped[index]
                cursor += cpu
                wire = encode_envelope(module.name, params, payload)
            else:
                wire = item.body
            pending[item.future.request_id] = item.future
            # The transport seam marks forward-leg failures unexecuted
            # (the request never reached a live servant) so reliability
            # replay knows a re-issue cannot duplicate an execution;
            # reply-leg failures stay ambiguous and unmarked.
            try:
                delay = transport.send_leg(
                    self.dest_host, len(wire), item.reservations
                )
            except SystemException as error:
                self._fail(item.future, error, cursor)
                continue
            try:
                server = transport.peer(self.dest_host)
            except SystemException as error:
                self._fail(item.future, error, cursor + delay)
                continue
            try:
                reply_wire, finish = server.handle_incoming(wire, cursor + delay)
            except SystemException as error:
                self._fail(item.future, error, cursor + delay)
                continue
            try:
                back = transport.send_leg(
                    self.dest_host, len(reply_wire), item.reservations, forward=False
                )
            except SystemException as error:
                self._fail(item.future, error, finish)
                continue
            arrivals.append((finish + back, index, reply_wire))
        # The caller resumes once its send-side work is done; replies
        # complete in their own (possibly reordered) simulated time.
        orb.time_source.wait_until(cursor)
        # Server-side scheduling (priority/WFQ) may finish later sends
        # first: process replies in completion order and let the
        # correlation map route each to its future.
        arrivals.sort()
        reply_state: Any = None
        highest_index = -1
        for finish, index, reply_wire in arrivals:
            if index < highest_index:
                COUNTERS.pipeline_out_of_order += 1
            else:
                highest_index = index
            future = items[index].future
            if is_envelope(reply_wire):
                envelope_name, params, payload = decode_envelope(reply_wire)
                if envelope_name != module.name:
                    self._fail(
                        future,
                        MARSHAL(
                            f"reply wrapped by {envelope_name!r}, "
                            f"expected {module.name!r}"
                        ),
                        finish,
                    )
                    continue
                if reply_state is None:
                    reply_state = module._unwrap_prolog(params)
                reply_wire, cpu = module._unwrap_one(params, payload, reply_state)
                finish += cpu
            finish += marshal_cost(len(reply_wire))
            reply = giop.decode_reply(reply_wire)
            # Correlate by request id; replies the server could not
            # even attribute (it answers id 0 when the request is
            # unreadable) fall back to the positional future.
            correlated = pending.get(reply.request_id)
            if correlated is not None:
                future = correlated
            absorb_reply(orb, future.dest_host, reply, finish)
            future._resolve(reply, reply.exception, finish)
            module.requests_sent += 1
        self.windows_flushed += 1
        self.messages_flushed += len(items)
        COUNTERS.pipeline_windows += 1
        COUNTERS.pipeline_messages += len(items)
        return len(items)

    @staticmethod
    def _fail(future: ReplyFuture, error: Exception, known_at: float) -> None:
        future._resolve(None, error, known_at, transport=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PipelinedChannel({self.module.name!r} -> {self.dest_host!r}, "
            f"queued={len(self._queue)})"
        )


class AMIEngine:
    """Per-ORB owner of the pipelined channels and deferred futures."""

    __slots__ = ("orb", "window", "_channels", "inflight", "inflight_peak")

    def __init__(self, orb: Any, window: Optional[int] = None) -> None:
        self.orb = orb
        #: Auto-flush threshold per channel; None = flush explicitly
        #: (or implicitly through ``ReplyFuture.result()``).
        self.window = window
        self._channels: Dict[Tuple[str, str], PipelinedChannel] = {}
        #: Futures submitted but not yet resolved.
        self.inflight = 0
        self.inflight_peak = 0

    # -- channels ---------------------------------------------------------

    @property
    def queued(self) -> int:
        """Requests encoded and waiting in unflushed windows."""
        return sum(len(channel) for channel in self._channels.values())

    def channel_for(self, module: Any, target: Any) -> PipelinedChannel:
        """The pipeline carrying ``target``'s requests through ``module``.

        Envelope modules batch per *binding* (their wrap context is
        binding-scoped, mirroring ``send_pipeline``); plain transports
        batch per destination host.
        """
        if module.uses_envelope:
            key = (module.name, target.binding_key())
        else:
            key = (module.name, target.profile.host)
        channel = self._channels.get(key)
        if channel is None:
            channel = PipelinedChannel(self, module, target.profile.host)
            self._channels[key] = channel
        return channel

    def channels(self) -> List[PipelinedChannel]:
        return list(self._channels.values())

    # -- submission -------------------------------------------------------

    def submit(self, request: Request, module: Any) -> ReplyFuture:
        """Queue one deferred request; returns its future.

        Auto-flushes the channel when the configured window fills.
        """
        channel = self.channel_for(module, request.target)
        future = ReplyFuture(
            self.orb, request.request_id, request.target.profile.host, channel
        )
        channel.enqueue(request, future)
        self.inflight += 1
        if self.inflight > self.inflight_peak:
            self.inflight_peak = self.inflight
        COUNTERS.note_inflight(self.inflight)
        if self.window is not None and len(channel) >= self.window:
            channel.flush()
        return future

    def resolved(self, request: Request, outcome: Callable[[], Any]) -> ReplyFuture:
        """A future resolved on the spot by running the synchronous path.

        Used for traffic that gains nothing from pipelining (oneway,
        commands, group-delivery modules): ``outcome`` performs the
        synchronous invocation; its value — or raised system exception
        — becomes the future's immediate result.
        """
        future = ReplyFuture(
            self.orb, request.request_id, request.target.profile.host
        )
        try:
            value = outcome()
        except SystemException as error:
            future._resolve(None, error, self.orb.time_source.now())
        else:
            reply = giop.Reply(request.request_id, {}, value, None)
            future._resolve(reply, None, self.orb.time_source.now())
        return future

    def completed(self, value: Any, dest_host: str = "") -> ReplyFuture:
        """An already-resolved future carrying a locally produced value.

        Request id 0 marks it as never having crossed the wire (a
        mediator cache hit, a suppressed call).
        """
        future = ReplyFuture(self.orb, 0, dest_host)
        future._resolve(
            giop.Reply(0, {}, value, None), None, self.orb.time_source.now()
        )
        return future

    def flush(self) -> int:
        """Flush every channel; returns total requests transmitted."""
        return sum(channel.flush() for channel in self.channels())

    def _retire(self, future: ReplyFuture) -> None:
        self.inflight -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AMIEngine(channels={len(self._channels)}, "
            f"inflight={self.inflight})"
        )
