"""The invocation interface: Figure 3's dispatch decision tree.

::

                     With QoS?
Invocation ──no──► GIOP/IIOP module
   │
   yes (QoS tag in the IOR)
   ▼
QoS transport ──command?──► transport / target module
   │
   request
   ▼
module assigned to the relationship?  ──no──► GIOP/IIOP module
   │yes
   ▼
assigned QoS module
"""

from __future__ import annotations

from typing import Any

from repro.orb.request import Request

#: Reply service-context key carrying the server's retry-after hint
#: (mirrors :data:`repro.sched.scheduler.RETRY_AFTER_CONTEXT`; the
#: literal is repeated so repro.orb stays import-independent of sched).
_RETRY_AFTER_CONTEXT = "maqs.sched.retry_after"


def _complete(orb: "ORB", request: Request, reply) -> Any:  # noqa: F821
    """Absorb reply service contexts, then return/raise the outcome.

    The server's scheduler piggybacks backpressure hints on the reply;
    record them client-side so pacing mediators can slow down, and
    re-attach the retry-after to a decoded OVERLOAD exception (the
    wire format only carries repo-id/message/minor).
    """
    contexts = reply.service_contexts
    if contexts:
        server_host = request.target.profile.host
        orb.backpressure.observe_reply(server_host, contexts, orb.clock.now)
        if reply.exception is not None and _RETRY_AFTER_CONTEXT in contexts:
            reply.exception.retry_after = contexts[_RETRY_AFTER_CONTEXT]
    return reply.value()


def dispatch(orb: "ORB", request: Request) -> Any:  # noqa: F821
    """Route one outgoing request per Figure 3 and return its result."""
    transport = orb.qos_transport
    if request.is_command:
        # Commands ride the plain transport to the peer ORB, where the
        # receiving QoS transport interprets them (handle_incoming).
        reply = transport.iiop_module.send_request(orb, request)
        return _complete(orb, request, reply)
    if not request.target.is_qos_aware:
        reply = transport.iiop_module.send_request(orb, request)
        return _complete(orb, request, reply)
    module = transport.assigned_module(request.target)
    if module is None:
        # No module assigned yet: the default transport carries the
        # request, which is how initial negotiation traffic flows.
        module = transport.iiop_module
    reply = module.send_request(orb, request)
    return _complete(orb, request, reply)
