"""The invocation interface: Figure 3's dispatch decision tree.

::

                     With QoS?
Invocation ──no──► GIOP/IIOP module
   │
   yes (QoS tag in the IOR)
   ▼
QoS transport ──command?──► transport / target module
   │
   request
   ▼
module assigned to the relationship?  ──no──► GIOP/IIOP module
   │yes
   ▼
assigned QoS module
"""

from __future__ import annotations

from typing import Any

from repro.orb.exceptions import OVERLOAD, mark_unexecuted
from repro.orb.request import Request

#: Reply service-context key carrying the server's retry-after hint
#: (mirrors :data:`repro.sched.scheduler.RETRY_AFTER_CONTEXT`; the
#: literal is repeated so repro.orb stays import-independent of sched).
_RETRY_AFTER_CONTEXT = "maqs.sched.retry_after"


def absorb_reply(orb: "ORB", server_host: str, reply, now: float) -> None:  # noqa: F821
    """Absorb one reply's service contexts into client-side QoS state.

    The server's scheduler piggybacks backpressure hints on the reply;
    record them so pacing mediators can slow down, and re-attach the
    retry-after to a decoded OVERLOAD exception (the wire format only
    carries repo-id/message/minor).  ``now`` is the simulated instant
    the reply becomes known — the current clock for synchronous calls,
    the reply's arrival instant for pipelined ones.
    """
    contexts = reply.service_contexts
    if contexts:
        orb.backpressure.observe_reply(server_host, contexts, now)
        if reply.exception is not None and _RETRY_AFTER_CONTEXT in contexts:
            reply.exception.retry_after = contexts[_RETRY_AFTER_CONTEXT]
    # OVERLOAD is shed at admission, strictly before servant dispatch;
    # restore the pre-execution flag the wire format cannot carry so
    # reliability retry sees uniform semantics for local and decoded
    # instances alike.
    if isinstance(reply.exception, OVERLOAD):
        mark_unexecuted(reply.exception)


def _complete(orb: "ORB", request: Request, reply) -> Any:  # noqa: F821
    """Absorb reply service contexts, then return/raise the outcome."""
    absorb_reply(orb, request.target.profile.host, reply, orb.time_source.now())
    return reply.value()


def route(orb: "ORB", request: Request):  # noqa: F821
    """Figure 3's module decision alone: which module carries this?

    Commands ride the plain transport to the peer ORB (the receiving
    QoS transport interprets them); so do requests without QoS
    awareness and QoS-aware requests whose binding has no module
    assigned yet — "allow[ing] initial negotiation of a QoS agreement".
    """
    transport = orb.qos_transport
    if request.is_command or not request.target.is_qos_aware:
        return transport.iiop_module
    module = transport.assigned_module(request.target)
    return module if module is not None else transport.iiop_module


def dispatch(orb: "ORB", request: Request) -> Any:  # noqa: F821
    """Route one outgoing request per Figure 3 and return its result."""
    reply = route(orb, request).send_request(orb, request)
    return _complete(orb, request, reply)


def dispatch_deferred(orb: "ORB", request: Request):  # noqa: F821
    """Route one outgoing request per Figure 3, deferred.

    Returns a :class:`~repro.orb.ami.ReplyFuture`.  Plain two-way
    requests join the AMI pipeline of their assigned module's binding;
    traffic that gains nothing from pipelining — commands, oneways,
    modules owning their own delivery (group modules) — runs the
    synchronous path on the spot and comes back as an already-resolved
    future, so ``send_deferred`` is total over the invocation surface.
    """
    ami = orb.ami
    if request.is_command or not request.response_expected:
        return ami.resolved(request, lambda: dispatch(orb, request))
    module = route(orb, request)
    if not module.supports_pipelining:
        return ami.resolved(
            request, lambda: _complete(orb, request, module.send_request(orb, request))
        )
    return ami.submit(request, module)
