"""The invocation interface: Figure 3's dispatch decision tree.

::

                         With QoS?
    Invocation ──no──► GIOP/IIOP module
       │
       yes (QoS tag in the IOR)
       ▼
    QoS transport ──command?──► transport / target module
       │
       request
       ▼
    module assigned to the relationship?  ──no──► GIOP/IIOP module
       │yes
       ▼
    assigned QoS module
"""

from __future__ import annotations

from typing import Any

from repro.orb.request import Request


def dispatch(orb: "ORB", request: Request) -> Any:  # noqa: F821
    """Route one outgoing request per Figure 3 and return its result."""
    transport = orb.qos_transport
    if request.is_command:
        # Commands ride the plain transport to the peer ORB, where the
        # receiving QoS transport interprets them (handle_incoming).
        reply = transport.iiop_module.send_request(orb, request)
        return reply.value()
    if not request.target.is_qos_aware:
        reply = transport.iiop_module.send_request(orb, request)
        return reply.value()
    module = transport.assigned_module(request.target)
    if module is None:
        # No module assigned yet: the default transport carries the
        # request, which is how initial negotiation traffic flows.
        module = transport.iiop_module
    reply = module.send_request(orb, request)
    return reply.value()
