"""Flat CDR ``any`` codec — the compiled hot path.

The class-based codec in :mod:`repro.orb.cdr` dispatches every element
of an ``any`` tree through bound methods and keeps its cursor in
``self._offset``; for deep payload maps that is one attribute
load/store plus one method call per element.  This module re-implements
exactly the same wire format as module-level functions that keep the
buffer, the offset and the precompiled :class:`struct.Struct` unpackers
in locals, and inline the common leaf tags (string, int64, double,
boolean, octets) straight into the map/sequence loops.

The functions are written in the restricted style ``mypyc`` compiles
well (module-level, fully annotated, no closures); ``pip install
.[compiled]`` builds this one module to native code (see
``setup.py``), and the plain interpreted module is the always-available
fallback — the import site in :mod:`repro.orb.cdr` never requires the
compiled form.

Byte identity is a hard contract: every write here must produce the
same bytes as the generic tag-per-element path, and every read must
accept exactly what that path accepts and reject what it rejects (with
:class:`~repro.orb.exceptions.MARSHAL`, never a bare ``struct.error``
or ``IndexError``).  The property suite in
``tests/orb/test_cdr_fastpath.py`` and ``tests/orb/test_cdr_flat.py``
enforces both directions.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Tuple

from repro.orb.exceptions import MARSHAL
from repro.perf.counters import COUNTERS

# Type tags (mirrors repro.orb.cdr; duplicated so the compiled module
# reads module-level ints instead of chasing another module's globals).
TAG_NULL = 0
TAG_BOOLEAN = 1
TAG_OCTET = 2
TAG_SHORT = 3
TAG_USHORT = 4
TAG_LONG = 5
TAG_ULONG = 6
TAG_LONGLONG = 7
TAG_DOUBLE = 8
TAG_STRING = 9
TAG_OCTETS = 10
TAG_SEQUENCE = 11
TAG_MAP = 12
TAG_FLOAT = 13
TAG_BIGNUM = 14

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

_PADDING = tuple(b"\x00" * n for n in range(8))

# Fused tag-plus-padding blobs, indexed by the buffer position (mod
# alignment) *before* the tag byte: writing the blob leaves the buffer
# aligned for the field that follows.  One append replaces the
# append/test/pad sequence in the hot loops.
_STR_FUSE = tuple(
    bytes((TAG_STRING,)) + b"\x00" * (-(r + 1) & 3) for r in range(4)
)
_OCT_FUSE = tuple(
    bytes((TAG_OCTETS,)) + b"\x00" * (-(r + 1) & 3) for r in range(4)
)
_SEQ_FUSE = tuple(
    bytes((TAG_SEQUENCE,)) + b"\x00" * (-(r + 1) & 3) for r in range(4)
)
_MAP_FUSE = tuple(
    bytes((TAG_MAP,)) + b"\x00" * (-(r + 1) & 3) for r in range(4)
)
_LL_FUSE = tuple(
    bytes((TAG_LONGLONG,)) + b"\x00" * (-(r + 1) & 7) for r in range(8)
)
_DBL_FUSE = tuple(
    bytes((TAG_DOUBLE,)) + b"\x00" * (-(r + 1) & 7) for r in range(8)
)

#: Batch chunk size — bounds the repeated-format cache, and must match
#: :data:`repro.orb.cdr._BATCH_CHUNK` so both paths emit/consume the
#: same chunking (the bytes are identical either way; the cache keys
#: are what stay bounded).
_BATCH_CHUNK = 512

_S_SHORT = struct.Struct(">h")
_S_USHORT = struct.Struct(">H")
_S_LONG = struct.Struct(">i")
_S_ULONG = struct.Struct(">I")
_S_LONGLONG = struct.Struct(">q")
_S_FLOAT = struct.Struct(">f")
_S_DOUBLE = struct.Struct(">d")

_pack_short = _S_SHORT.pack
_pack_ushort = _S_USHORT.pack
_pack_long = _S_LONG.pack
_pack_ulong = _S_ULONG.pack
_pack_longlong = _S_LONGLONG.pack
_pack_float = _S_FLOAT.pack
_pack_double = _S_DOUBLE.pack

_unpack_short = _S_SHORT.unpack_from
_unpack_ushort = _S_USHORT.unpack_from
_unpack_long = _S_LONG.unpack_from
_unpack_ulong = _S_ULONG.unpack_from
_unpack_longlong = _S_LONGLONG.unpack_from
_unpack_float = _S_FLOAT.unpack_from
_unpack_double = _S_DOUBLE.unpack_from

#: Repeated-format structs for homogeneous batches, keyed by
#: (unit format, repetition count); bounded by _BATCH_CHUNK.
_BATCH_STRUCTS: Dict[Tuple[str, int], struct.Struct] = {}


def _batch_struct(unit: str, count: int) -> struct.Struct:
    key = (unit, count)
    compiled = _BATCH_STRUCTS.get(key)
    if compiled is None:
        compiled = struct.Struct(">" + unit * count)
        _BATCH_STRUCTS[key] = compiled
    return compiled


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


def write_any(buf: bytearray, value: Any, batch_min: int) -> None:
    """Append the tagged ``any`` encoding of ``value`` to ``buf``.

    ``batch_min`` is the homogeneous-batch threshold (callers pass
    :data:`repro.orb.cdr._BATCH_MIN` so the test suite's batching
    escape hatch keeps working on this path too).
    """
    kind = type(value)
    if kind is dict:
        _write_map(buf, value, batch_min)
    elif kind is str:
        data = value.encode("utf-8")
        buf += _STR_FUSE[len(buf) & 3] + _pack_ulong(len(data)) + data
    elif kind is int:
        if _INT64_MIN <= value <= _INT64_MAX:
            buf += _LL_FUSE[len(buf) & 7] + _pack_longlong(value)
        else:
            _write_bignum(buf, value)
    elif kind is float:
        buf += _DBL_FUSE[len(buf) & 7] + _pack_double(value)
    elif kind is bool:
        buf += b"\x01\x01" if value else b"\x01\x00"
    elif kind is list or kind is tuple:
        _write_sequence(buf, value, batch_min)
    elif kind is bytes or kind is bytearray:
        buf += _OCT_FUSE[len(buf) & 3] + _pack_ulong(len(value)) + value
    elif value is None:
        buf.append(TAG_NULL)
    else:
        _write_any_slow(buf, value, batch_min)


def _write_any_slow(buf: bytearray, value: Any, batch_min: int) -> None:
    """isinstance chain for subclasses of the native types."""
    if isinstance(value, bool):
        buf += b"\x01\x01" if value else b"\x01\x00"
    elif isinstance(value, int):
        if _INT64_MIN <= value <= _INT64_MAX:
            buf.append(TAG_LONGLONG)
            padding = -len(buf) & 7
            if padding:
                buf += _PADDING[padding]
            buf += _pack_longlong(value)
        else:
            _write_bignum(buf, value)
    elif isinstance(value, float):
        buf.append(TAG_DOUBLE)
        padding = -len(buf) & 7
        if padding:
            buf += _PADDING[padding]
        buf += _pack_double(value)
    elif isinstance(value, str):
        buf.append(TAG_STRING)
        data = value.encode("utf-8")
        padding = -len(buf) & 3
        if padding:
            buf += _PADDING[padding]
        buf += _pack_ulong(len(data))
        buf += data
    elif isinstance(value, (bytes, bytearray)):
        buf.append(TAG_OCTETS)
        padding = -len(buf) & 3
        if padding:
            buf += _PADDING[padding]
        buf += _pack_ulong(len(value))
        buf += value
    elif isinstance(value, (list, tuple)):
        _write_sequence(buf, value, batch_min)
    elif isinstance(value, dict):
        _write_map(buf, value, batch_min)
    else:
        raise MARSHAL(f"cannot marshal value of type {type(value).__name__}")


def _write_bignum(buf: bytearray, value: int) -> None:
    # Arbitrary-precision integers (e.g. Diffie-Hellman public values)
    # travel as sign + magnitude octets.
    buf.append(TAG_BIGNUM)
    buf.append(1 if value < 0 else 0)
    magnitude = abs(value)
    data = magnitude.to_bytes((magnitude.bit_length() + 7) // 8, "big")
    padding = -len(buf) & 3
    if padding:
        buf += _PADDING[padding]
    buf += _pack_ulong(len(data))
    buf += data


def _write_map(buf: bytearray, value: Dict[str, Any], batch_min: int) -> None:
    # The buffer position is tracked as a local int (``pos``) so the
    # alignment arithmetic never re-reads len(buf); any recursion into
    # write_any resynchronizes it.
    pos = len(buf)
    fuse = _MAP_FUSE[pos & 3]
    buf += fuse + _pack_ulong(len(value))
    pos += len(fuse) + 4
    for key, item in value.items():
        try:
            data = key.encode("utf-8")
        except AttributeError:
            raise MARSHAL(
                f"map keys must be str, got {type(key).__name__}"
            ) from None
        pad = -pos & 3
        if pad:
            buf += _PADDING[pad] + _pack_ulong(len(data)) + data
        else:
            buf += _pack_ulong(len(data)) + data
        pos += pad + 4 + len(data)
        # Inline the hottest value tags; everything else recurses.
        kind = type(item)
        if kind is str:
            data = item.encode("utf-8")
            fuse = _STR_FUSE[pos & 3]
            buf += fuse + _pack_ulong(len(data)) + data
            pos += len(fuse) + 4 + len(data)
        elif kind is int:
            if _INT64_MIN <= item <= _INT64_MAX:
                fuse = _LL_FUSE[pos & 7]
                buf += fuse + _pack_longlong(item)
                pos += len(fuse) + 8
            else:
                _write_bignum(buf, item)
                pos = len(buf)
        elif kind is float:
            fuse = _DBL_FUSE[pos & 7]
            buf += fuse + _pack_double(item)
            pos += len(fuse) + 8
        elif kind is bool:
            buf += b"\x01\x01" if item else b"\x01\x00"
            pos += 2
        else:
            write_any(buf, item, batch_min)
            pos = len(buf)


def _write_sequence(buf: bytearray, value: Any, batch_min: int) -> None:
    length = len(value)
    buf += _SEQ_FUSE[len(buf) & 3] + _pack_ulong(length)
    if length >= batch_min:
        first_type = type(value[0])
        if first_type is float:
            for item in value:
                if type(item) is not float:
                    break
            else:
                _write_batch(buf, value, _pack_double, "B7xd", TAG_DOUBLE)
                return
        elif first_type is int:
            for item in value:
                if type(item) is not int or not (
                    _INT64_MIN <= item <= _INT64_MAX
                ):
                    break
            else:
                _write_batch(buf, value, _pack_longlong, "B7xq", TAG_LONGLONG)
                return
    for item in value:
        write_any(buf, item, batch_min)


def _write_batch(
    buf: bytearray, value: Any, first_pack: Any, unit: str, tag: int
) -> None:
    """Emit a homogeneous 8-byte-element run, byte-identical to the
    generic loop: the first element settles 8-alignment, the rest are
    fixed 16-byte (tag + 7 pad + value) groups packed in bulk.
    """
    buf.append(tag)
    padding = -len(buf) & 7
    if padding:
        buf += _PADDING[padding]
    buf += first_pack(value[0])
    index = 1
    length = len(value)
    while index < length:
        count = min(length - index, _BATCH_CHUNK)
        args: List[Any] = []
        for item in value[index : index + count]:
            args.append(tag)
            args.append(item)
        buf += _batch_struct(unit, count).pack(*args)
        index += count
    COUNTERS.cdr_batch_encodes += 1


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


def read_any(buf: Any, offset: int, size: int, batch_min: int) -> Tuple[Any, int]:
    """Decode one tagged ``any`` starting at ``offset``.

    ``buf`` is the bytes-like the caller scans (``bytes`` or
    ``memoryview``); returns ``(value, new_offset)``.  All malformed
    input — truncation, unknown tags, invalid UTF-8 — raises
    :class:`MARSHAL` exactly like the class-based decoder.
    """
    if offset >= size:
        raise MARSHAL(
            f"buffer underrun: need 1 bytes at {offset}, have {size - offset}"
        )
    tag = buf[offset]
    offset += 1
    if tag == TAG_MAP:
        return _read_map(buf, offset, size, batch_min)
    if tag == TAG_STRING:
        return _read_string(buf, offset, size)
    if tag == TAG_LONGLONG:
        offset += -offset & 7
        end = offset + 8
        if end > size:
            raise MARSHAL(
                f"buffer underrun: need 8 bytes at {offset}, have {size - offset}"
            )
        return _unpack_longlong(buf, offset)[0], end
    if tag == TAG_DOUBLE:
        offset += -offset & 7
        end = offset + 8
        if end > size:
            raise MARSHAL(
                f"buffer underrun: need 8 bytes at {offset}, have {size - offset}"
            )
        return _unpack_double(buf, offset)[0], end
    if tag == TAG_SEQUENCE:
        return _read_sequence(buf, offset, size, batch_min)
    if tag == TAG_BOOLEAN:
        if offset >= size:
            raise MARSHAL(
                f"buffer underrun: need 1 bytes at {offset}, have {size - offset}"
            )
        return buf[offset] != 0, offset + 1
    if tag == TAG_OCTETS:
        return _read_octets(buf, offset, size)
    if tag == TAG_NULL:
        return None, offset
    if tag == TAG_OCTET:
        if offset >= size:
            raise MARSHAL(
                f"buffer underrun: need 1 bytes at {offset}, have {size - offset}"
            )
        return buf[offset], offset + 1
    if tag == TAG_SHORT:
        return _read_fixed(buf, offset, size, _unpack_short, 2, 2)
    if tag == TAG_USHORT:
        return _read_fixed(buf, offset, size, _unpack_ushort, 2, 2)
    if tag == TAG_LONG:
        return _read_fixed(buf, offset, size, _unpack_long, 4, 4)
    if tag == TAG_ULONG:
        return _read_fixed(buf, offset, size, _unpack_ulong, 4, 4)
    if tag == TAG_FLOAT:
        return _read_fixed(buf, offset, size, _unpack_float, 4, 4)
    if tag == TAG_BIGNUM:
        return _read_bignum(buf, offset, size)
    raise MARSHAL(f"unknown any tag: {tag}")


def _read_fixed(
    buf: Any, offset: int, size: int, unpack: Any, alignment: int, width: int
) -> Tuple[Any, int]:
    offset += -offset % alignment
    end = offset + width
    if end > size:
        raise MARSHAL(
            f"buffer underrun: need {width} bytes at {offset}, "
            f"have {size - offset}"
        )
    return unpack(buf, offset)[0], end


def _read_string(buf: Any, offset: int, size: int) -> Tuple[str, int]:
    offset += -offset & 3
    end = offset + 4
    if end > size:
        raise MARSHAL(
            f"buffer underrun: need 4 bytes at {offset}, have {size - offset}"
        )
    length = _unpack_ulong(buf, offset)[0]
    offset = end
    end = offset + length
    if end > size:
        raise MARSHAL(f"string of length {length} overruns buffer")
    try:
        value = str(buf[offset:end], "utf-8")
    except UnicodeDecodeError as error:
        raise MARSHAL(f"invalid UTF-8 string on the wire: {error}") from None
    return value, end


def _read_octets(buf: Any, offset: int, size: int) -> Tuple[bytes, int]:
    offset += -offset & 3
    end = offset + 4
    if end > size:
        raise MARSHAL(
            f"buffer underrun: need 4 bytes at {offset}, have {size - offset}"
        )
    length = _unpack_ulong(buf, offset)[0]
    offset = end
    end = offset + length
    if end > size:
        raise MARSHAL(f"octet sequence of length {length} overruns buffer")
    return bytes(buf[offset:end]), end


def _read_bignum(buf: Any, offset: int, size: int) -> Tuple[int, int]:
    if offset >= size:
        raise MARSHAL(
            f"buffer underrun: need 1 bytes at {offset}, have {size - offset}"
        )
    negative = buf[offset] != 0
    data, offset = _read_octets(buf, offset + 1, size)
    magnitude = int.from_bytes(data, "big")
    return -magnitude if negative else magnitude, offset


def _read_map(
    buf: Any, offset: int, size: int, batch_min: int
) -> Tuple[Dict[str, Any], int]:
    offset += -offset & 3
    end = offset + 4
    if end > size:
        raise MARSHAL(
            f"buffer underrun: need 4 bytes at {offset}, have {size - offset}"
        )
    count = _unpack_ulong(buf, offset)[0]
    offset = end
    result: Dict[str, Any] = {}
    for _ in range(count):
        # Inlined key read (read_string): map keys are the hottest
        # strings on the wire.
        offset += -offset & 3
        end = offset + 4
        if end > size:
            raise MARSHAL(
                f"buffer underrun: need 4 bytes at {offset}, "
                f"have {size - offset}"
            )
        key_length = _unpack_ulong(buf, offset)[0]
        offset = end
        end = offset + key_length
        if end > size:
            raise MARSHAL(f"string of length {key_length} overruns buffer")
        try:
            key = str(buf[offset:end], "utf-8")
        except UnicodeDecodeError as error:
            raise MARSHAL(
                f"invalid UTF-8 string on the wire: {error}"
            ) from None
        offset = end
        # Inline the hottest value tags; everything else recurses.
        if offset >= size:
            raise MARSHAL(
                f"buffer underrun: need 1 bytes at {offset}, "
                f"have {size - offset}"
            )
        tag = buf[offset]
        offset += 1
        if tag == TAG_STRING:
            result[key], offset = _read_string(buf, offset, size)
        elif tag == TAG_LONGLONG:
            offset += -offset & 7
            end = offset + 8
            if end > size:
                raise MARSHAL(
                    f"buffer underrun: need 8 bytes at {offset}, "
                    f"have {size - offset}"
                )
            result[key] = _unpack_longlong(buf, offset)[0]
            offset = end
        elif tag == TAG_DOUBLE:
            offset += -offset & 7
            end = offset + 8
            if end > size:
                raise MARSHAL(
                    f"buffer underrun: need 8 bytes at {offset}, "
                    f"have {size - offset}"
                )
            result[key] = _unpack_double(buf, offset)[0]
            offset = end
        elif tag == TAG_BOOLEAN:
            if offset >= size:
                raise MARSHAL(
                    f"buffer underrun: need 1 bytes at {offset}, "
                    f"have {size - offset}"
                )
            result[key] = buf[offset] != 0
            offset += 1
        else:
            result[key], offset = read_any(buf, offset - 1, size, batch_min)
    return result, offset


def _read_sequence(
    buf: Any, offset: int, size: int, batch_min: int
) -> Tuple[List[Any], int]:
    offset += -offset & 3
    end = offset + 4
    if end > size:
        raise MARSHAL(
            f"buffer underrun: need 4 bytes at {offset}, have {size - offset}"
        )
    count = _unpack_ulong(buf, offset)[0]
    offset = end
    if count >= batch_min and offset < size:
        first_tag = buf[offset]
        if first_tag == TAG_DOUBLE:
            decoded = _read_batch(
                buf, offset, size, count, _unpack_double, "B7xd", TAG_DOUBLE
            )
            if decoded is not None:
                return decoded
        elif first_tag == TAG_LONGLONG:
            decoded = _read_batch(
                buf, offset, size, count, _unpack_longlong, "B7xq", TAG_LONGLONG
            )
            if decoded is not None:
                return decoded
    out: List[Any] = []
    for _ in range(count):
        value, offset = read_any(buf, offset, size, batch_min)
        out.append(value)
    return out, offset


def _read_batch(
    buf: Any,
    offset: int,
    size: int,
    length: int,
    first_unpack: Any,
    unit: str,
    tag: int,
) -> Any:
    """Bulk-decode a homogeneous run; None means fall back (the run
    turned out to be heterogeneous or truncated — offset untouched)."""
    first_offset = offset + 1  # past the peeked tag octet
    first_offset += -first_offset & 7
    first_end = first_offset + 8
    if first_end > size:
        return None
    out = [first_unpack(buf, first_offset)[0]]
    cursor = first_end
    remaining = length - 1
    while remaining:
        count = min(remaining, _BATCH_CHUNK)
        compiled = _batch_struct(unit, count)
        if cursor + compiled.size > size:
            return None  # underrun or trailing mixed types: re-scan
        flat = compiled.unpack_from(buf, cursor)
        if flat[0::2].count(tag) != count:
            return None  # mixed element types: generic loop decodes
        out.extend(flat[1::2])
        cursor += compiled.size
        remaining -= count
    COUNTERS.cdr_batch_decodes += 1
    return out, cursor
