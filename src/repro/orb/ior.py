"""Interoperable Object References.

An IOR names a remote object: a repository type id plus an IIOP-style
profile (host, port, object key) and a list of tagged components.
MAQS adds the **QoS tag** (Section 4): "If a request is QoS aware —
which can be determined by a distinct tag in the interoperable object
reference — it is handed over to the QoS transport."  The QoS
component carries the characteristics the server offers and, for
group-served objects, the multicast group address and member list.

IORs are value objects: once constructed (or decoded) they are never
mutated — :meth:`with_component` returns a copy.  That invariant lets
the hot path memoise the CDR encoding, the stringified form, the QoS
flag and the binding key per instance, and share parsed references
through bounded LRU caches keyed by the wire/text form.
"""

from __future__ import annotations

import binascii
from typing import Any, Dict, List, Optional

from repro.orb.cdr import CDRDecoder, CDREncoder
from repro.orb.exceptions import MARSHAL
from repro.perf.counters import COUNTERS
from repro.perf.lru import LRUCache

#: Component tag marking a QoS-aware object reference (Section 4).
QOS_TAG = 0x4D415153  # "MAQS"

#: Component tag carrying a replica-group address and member references.
GROUP_TAG = 0x47525550  # "GRUP"

#: Parsed references keyed by CDR bytes / stringified text.  Every
#: incoming request re-delivers the same handful of target references,
#: so both caches sit on the per-message hot path.
_decode_cache = LRUCache(maxsize=512)
_parse_cache = LRUCache(maxsize=512)


def clear_caches() -> None:
    """Drop the parse caches (tests and memory hygiene)."""
    _decode_cache.clear()
    _parse_cache.clear()


class TaggedComponent:
    """A (tag, data) pair attached to an IOR profile."""

    __slots__ = ("tag", "data")

    def __init__(self, tag: int, data: Dict[str, Any]) -> None:
        self.tag = tag
        self.data = data

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TaggedComponent)
            and self.tag == other.tag
            and self.data == other.data
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaggedComponent(0x{self.tag:X}, {self.data!r})"


class IIOPProfile:
    """Where the object lives: host, port and the adapter's object key."""

    __slots__ = ("host", "port", "object_key")

    def __init__(self, host: str, port: int, object_key: str) -> None:
        self.host = host
        self.port = port
        self.object_key = object_key

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IIOPProfile)
            and (self.host, self.port, self.object_key)
            == (other.host, other.port, other.object_key)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IIOPProfile({self.host}:{self.port}/{self.object_key})"


class IOR:
    """An interoperable object reference."""

    __slots__ = (
        "type_id",
        "profile",
        "components",
        "_wire",
        "_text",
        "_qos_aware",
        "_binding",
    )

    def __init__(
        self,
        type_id: str,
        profile: IIOPProfile,
        components: Optional[List[TaggedComponent]] = None,
    ) -> None:
        self.type_id = type_id
        self.profile = profile
        self.components = list(components or [])
        # Lazily filled memos; valid because IORs are value objects.
        self._wire: Optional[bytes] = None
        self._text: Optional[str] = None
        self._qos_aware: Optional[bool] = None
        self._binding: Optional[str] = None

    # -- components -----------------------------------------------------

    def component(self, tag: int) -> Optional[TaggedComponent]:
        """First component with the given tag, or None."""
        for component in self.components:
            if component.tag == tag:
                return component
        return None

    def with_component(self, component: TaggedComponent) -> "IOR":
        """A copy of this IOR with an extra component appended."""
        return IOR(self.type_id, self.profile, self.components + [component])

    @property
    def is_qos_aware(self) -> bool:
        """True if the reference carries the MAQS QoS tag."""
        aware = self._qos_aware
        if aware is None:
            aware = self.component(QOS_TAG) is not None
            self._qos_aware = aware
        return aware

    def qos_characteristics(self) -> List[str]:
        """Names of the QoS characteristics the server assigned (may be [])."""
        component = self.component(QOS_TAG)
        if component is None:
            return []
        return list(component.data.get("characteristics", []))

    def group_members(self) -> List["IOR"]:
        """Member references of a replica-group IOR (may be []).

        The :data:`GROUP_TAG` component carries each member as a
        stringified reference (strings survive ``write_any`` untouched
        and the parse cache absorbs the repeated decoding).  Used by
        the reliability layer's failover to re-bind to the next member
        on fail-stop.
        """
        component = self.component(GROUP_TAG)
        if component is None:
            return []
        return [IOR.from_string(text) for text in component.data.get("members", [])]

    def binding_key(self) -> str:
        """Canonical ``host:port/key`` naming this client/server relationship."""
        binding = self._binding
        if binding is None:
            profile = self.profile
            binding = f"{profile.host}:{profile.port}/{profile.object_key}"
            self._binding = binding
        return binding

    # -- stringification --------------------------------------------------

    def encode(self) -> bytes:
        """CDR encoding of the full reference (memoised)."""
        wire = self._wire
        if wire is None:
            encoder = CDREncoder()
            encoder.write_string(self.type_id)
            encoder.write_string(self.profile.host)
            encoder.write_ulong(self.profile.port)
            encoder.write_string(self.profile.object_key)
            encoder.write_ulong(len(self.components))
            for component in self.components:
                encoder.write_ulong(component.tag)
                encoder.write_any(component.data)
            wire = encoder.getvalue()
            self._wire = wire
        return wire

    @classmethod
    def decode(cls, data: bytes) -> "IOR":
        """Inverse of :meth:`encode` (cached by wire bytes)."""
        key = bytes(data)
        cached = _decode_cache.get(key)
        if cached is not None:
            COUNTERS.ior_parse_hits += 1
            return cached
        COUNTERS.ior_parse_misses += 1
        decoder = CDRDecoder(key)
        type_id = decoder.read_string()
        host = decoder.read_string()
        port = decoder.read_ulong()
        object_key = decoder.read_string()
        count = decoder.read_ulong()
        components = []
        for _ in range(count):
            tag = decoder.read_ulong()
            payload = decoder.read_any()
            if not isinstance(payload, dict):
                raise MARSHAL("tagged component payload must decode to a map")
            components.append(TaggedComponent(tag, payload))
        ior = cls(type_id, IIOPProfile(host, port, object_key), components)
        ior._wire = key  # decoding round-trips, so keep the wire form too
        _decode_cache.put(key, ior)
        return ior

    def to_string(self) -> str:
        """The classic ``IOR:<hex>`` stringified form (memoised)."""
        text = self._text
        if text is None:
            text = "IOR:" + binascii.hexlify(self.encode()).decode("ascii")
            self._text = text
        return text

    @classmethod
    def from_string(cls, text: str) -> "IOR":
        """Parse a stringified reference (cached by text)."""
        cached = _parse_cache.get(text)
        if cached is not None:
            COUNTERS.ior_parse_hits += 1
            return cached
        COUNTERS.ior_parse_misses += 1
        if not text.startswith("IOR:"):
            raise MARSHAL(f"not a stringified IOR: {text[:16]!r}")
        try:
            raw = binascii.unhexlify(text[4:])
        except (binascii.Error, ValueError) as error:
            raise MARSHAL(f"bad IOR hex: {error}") from None
        ior = cls.decode(raw)
        _parse_cache.put(text, ior)
        return ior

    # -- identity ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IOR) and self.encode() == other.encode()

    def __hash__(self) -> int:
        return hash(self.encode())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        qos = " +QoS" if self.is_qos_aware else ""
        return f"IOR({self.type_id} @ {self.profile!r}{qos})"
