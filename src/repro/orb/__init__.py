"""A CORBA-like object request broker on the simulated network.

This package realises the middleware of the paper's Figure 1 with all
the interposition points MAQS needs:

- :mod:`repro.orb.cdr` / :mod:`repro.orb.giop` — marshalling and the
  GIOP-style message protocol.
- :mod:`repro.orb.ior` — interoperable object references with tagged
  profiles, including the QoS tag of Section 4.
- :mod:`repro.orb.request` — the dual-use request (service request or
  module/transport *command*).
- :mod:`repro.orb.poa` / :mod:`repro.orb.servant` — the object adapter.
- :mod:`repro.orb.stub` / :mod:`repro.orb.skeleton` — the generated-code
  runtime with the mediator delegation hook (Section 3.3).
- :mod:`repro.orb.dii` — the dynamic invocation interface used to drive
  QoS modules' dynamic interfaces.
- :mod:`repro.orb.qos_transport` and :mod:`repro.orb.modules` — the QoS
  transport and its dynamically loadable modules (Figure 3).
- :mod:`repro.orb.orb` / :mod:`repro.orb.world` — the broker itself and
  a bootstrap helper wiring clock, network, ORBs and naming together.
"""

from repro.orb.exceptions import (
    BAD_OPERATION,
    BAD_PARAM,
    BAD_QOS,
    COMM_FAILURE,
    MARSHAL,
    NO_PERMISSION,
    NO_RESOURCES,
    OBJECT_NOT_EXIST,
    TRANSIENT,
    SystemException,
    UserException,
)
from repro.orb.ami import AMIEngine, PipelinedChannel, ReplyFuture
from repro.orb.ior import IOR, IIOPProfile, QOS_TAG, TaggedComponent
from repro.orb.orb import ORB
from repro.orb.poa import POA
from repro.orb.request import COMMAND, REQUEST, Request
from repro.orb.servant import Servant
from repro.orb.stub import Stub
from repro.orb.world import World

__all__ = [
    "AMIEngine",
    "BAD_OPERATION",
    "BAD_PARAM",
    "BAD_QOS",
    "COMM_FAILURE",
    "COMMAND",
    "IIOPProfile",
    "IOR",
    "MARSHAL",
    "NO_PERMISSION",
    "NO_RESOURCES",
    "OBJECT_NOT_EXIST",
    "ORB",
    "POA",
    "PipelinedChannel",
    "QOS_TAG",
    "REQUEST",
    "ReplyFuture",
    "Request",
    "Servant",
    "Stub",
    "SystemException",
    "TRANSIENT",
    "TaggedComponent",
    "UserException",
    "World",
]
