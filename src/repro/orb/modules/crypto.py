"""Transport-layer encryption module ("privacy through encryption").

Message bodies are encrypted under a session key agreed per binding.
The key itself is never sent: the encryption characteristic drives a
Diffie-Hellman exchange over module *commands* — the paper's "QoS to
QoS" communication, e.g. "on the fly change of encryption keys"
(Section 3.2) — and installs the derived key on both sides.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro import ciphers
from repro.ciphers.keyex import KeyExchange
from repro.orb.exceptions import BAD_PARAM, NO_PERMISSION
from repro.orb.modules.base import QoSModule

DEFAULT_CIPHER = "xtea-ctr"


class CryptoModule(QoSModule):
    """Encrypt message bodies on the wire."""

    name = "crypto"
    description = "per-binding message-body encryption with DH key agreement"
    uses_envelope = True
    dynamic_ops = (
        "set_cipher",
        "get_cipher",
        "dh_exchange",
        "install_key",
        "drop_key",
        "active_keys",
    )

    def __init__(self) -> None:
        super().__init__()
        #: key id -> session key bytes.
        self._keys: Dict[str, bytes] = {}
        #: deterministic seed source for server-side DH endpoints.
        self._dh_seed = 0x5EC0DE

    # -- dynamic interface ------------------------------------------------

    def set_cipher(self, binding: str, cipher: str, key_id: str) -> Dict[str, Any]:
        """Select the cipher and session key for one binding."""
        if cipher not in ciphers.CIPHERS:
            raise BAD_PARAM(
                f"unknown cipher {cipher!r}; available {sorted(ciphers.CIPHERS)}"
            )
        return self.configure_binding(binding, cipher=cipher, key_id=key_id)

    def get_cipher(self, binding: str) -> str:
        return self.binding_config(binding).get("cipher", DEFAULT_CIPHER)

    def dh_exchange(self, key_id: str, peer_public: int) -> int:
        """Server half of a key agreement: derive, store, answer.

        The client sends its public value as a command; the reply
        carries this side's public value.  Both ends then hold the same
        session key under ``key_id`` without it ever crossing the wire.
        """
        endpoint = KeyExchange(seed=self._dh_seed)
        self._dh_seed += 1
        self._keys[key_id] = endpoint.shared_key(peer_public)
        return endpoint.public_value

    def install_key(self, key_id: str, key: bytes) -> bool:
        """Directly install a session key (local configuration path)."""
        if not isinstance(key, (bytes, bytearray)) or not key:
            raise BAD_PARAM("session key must be non-empty bytes")
        self._keys[key_id] = bytes(key)
        return True

    def drop_key(self, key_id: str) -> bool:
        """Forget a session key; returns whether it existed."""
        return self._keys.pop(key_id, None) is not None

    def active_keys(self) -> list:
        """Installed key ids (never the key material)."""
        return sorted(self._keys)

    # -- data plane ----------------------------------------------------------

    def _key(self, key_id: str) -> bytes:
        try:
            return self._keys[key_id]
        except KeyError:
            raise NO_PERMISSION(f"no session key installed under {key_id!r}") from None

    def _burst_prolog(self, context: Dict[str, Any]) -> Tuple[str, str, Any, bytes]:
        cipher_name = context.get("cipher", DEFAULT_CIPHER)
        key_id = context.get("key_id")
        if key_id is None:
            raise NO_PERMISSION("binding has no key_id configured; negotiate first")
        encrypt, _ = ciphers.get_cipher(cipher_name)
        return cipher_name, key_id, encrypt, self._key(key_id)

    def _wrap_one(
        self,
        body: bytes,
        context: Dict[str, Any],
        state: Tuple[str, str, Any, bytes],
    ) -> Tuple[Dict[str, Any], bytes, float]:
        cipher_name, key_id, encrypt, key = state
        payload = encrypt(key, body)
        params = {"cipher": cipher_name, "key_id": key_id}
        return params, payload, ciphers.cpu_cost(cipher_name, len(body))

    def _unwrap_prolog(self, params: Dict[str, Any]) -> Dict[Any, Any]:
        # Memo of (cipher, key id) -> (decrypt fn, session key).
        return {}

    def _unwrap_one(
        self, params: Dict[str, Any], payload: bytes, state: Dict[Any, Any]
    ) -> Tuple[bytes, float]:
        cipher_name = params.get("cipher", DEFAULT_CIPHER)
        key_id = params.get("key_id", "")
        try:
            decrypt, key = state[cipher_name, key_id]
        except KeyError:
            decrypt = ciphers.get_cipher(cipher_name)[1]
            key = self._key(key_id)
            state[cipher_name, key_id] = (decrypt, key)
        body = decrypt(key, payload)
        return body, ciphers.cpu_cost(cipher_name, len(body))


from repro.orb.modules import register_module  # noqa: E402

register_module(CryptoModule)
