"""Transport-layer compression module.

Implements the paper's "compression for channels with small bandwidth"
at the network-centred integration layer (Figure 1): the whole GIOP
message body is compressed before it enters the link and decompressed
by the peer module.  The codec is chosen per binding through the
dynamic interface; the application-layer variant of the same
characteristic lives in :mod:`repro.qos.compression`.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro import codecs
from repro.orb.exceptions import BAD_PARAM
from repro.orb.modules.base import QoSModule

DEFAULT_CODEC = "lz"


class CompressionModule(QoSModule):
    """Compress message bodies on the wire."""

    name = "compression"
    description = "per-binding message-body compression"
    uses_envelope = True
    dynamic_ops = ("set_codec", "get_codec", "ratio")

    def __init__(self) -> None:
        super().__init__()
        self.bytes_in = 0
        self.bytes_out = 0

    # -- dynamic interface ------------------------------------------------

    def set_codec(self, binding: str, codec: str) -> Dict[str, Any]:
        """Choose the codec for one client/server relationship."""
        if codec not in codecs.CODECS:
            raise BAD_PARAM(
                f"unknown codec {codec!r}; available {sorted(codecs.CODECS)}"
            )
        return self.configure_binding(binding, codec=codec)

    def get_codec(self, binding: str) -> str:
        return self.binding_config(binding).get("codec", DEFAULT_CODEC)

    def ratio(self) -> float:
        """Aggregate output/input ratio since load (1.0 = no gain)."""
        if self.bytes_in == 0:
            return 1.0
        return self.bytes_out / self.bytes_in

    # -- data plane ----------------------------------------------------------

    def _burst_prolog(self, context: Dict[str, Any]) -> Tuple[str, Any]:
        # On the server side the reply is wrapped with the *request's*
        # envelope params as context; "requested" preserves the binding's
        # codec choice even when the request itself was incompressible.
        codec_name = context.get("requested", context.get("codec", DEFAULT_CODEC))
        compress, _ = codecs.get_codec(codec_name)
        return codec_name, compress

    def _wrap_one(
        self, body: bytes, context: Dict[str, Any], state: Tuple[str, Any]
    ) -> Tuple[Dict[str, Any], bytes, float]:
        codec_name, compress = state
        compressed = compress(body)
        cpu = codecs.cpu_cost(codec_name, len(body))
        self.bytes_in += len(body)
        if len(compressed) >= len(body):
            # Incompressible: ship the original and say so.
            self.bytes_out += len(body)
            return {"codec": "identity", "requested": codec_name}, body, cpu
        self.bytes_out += len(compressed)
        return {"codec": codec_name, "requested": codec_name}, compressed, cpu

    def _unwrap_prolog(self, params: Dict[str, Any]) -> Dict[str, Any]:
        # Memo of codec name -> decompress fn; a burst can mix codecs
        # (identity markers for incompressible messages) so resolution
        # stays per-item but each codec is looked up only once.
        return {}

    def _unwrap_one(
        self, params: Dict[str, Any], payload: bytes, state: Dict[str, Any]
    ) -> Tuple[bytes, float]:
        codec_name = params.get("codec", "identity")
        try:
            decompress = state[codec_name]
        except KeyError:
            decompress = state[codec_name] = codecs.get_codec(codec_name)[1]
        body = decompress(payload)
        return body, codecs.cpu_cost(codec_name, len(body))


from repro.orb.modules import register_module  # noqa: E402

register_module(CompressionModule)
