"""QoS transport modules and their reflection registry.

Section 4: "The QoS transport is an entity which administrates all QoS
transport modules.  Each QoS module offers a common static interface
and a specific dynamic interface.  The common interface allows the
dynamic loading of QoS modules on request."

The registry below *is* the "simple reflection mechanism [that] allows
the extension of the ORB at runtime": modules register a factory under
their name, and the QoS transport instantiates them lazily — including
on first use by an incoming command or wrapped request.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Type

from repro.orb.modules.base import (
    ENVELOPE_MAGIC,
    QoSModule,
    decode_envelope,
    encode_envelope,
    is_envelope,
)

#: name -> module class; populated by the @register_module decorator.
MODULE_REGISTRY: Dict[str, Type[QoSModule]] = {}


def register_module(cls: Type[QoSModule]) -> Type[QoSModule]:
    """Class decorator adding a module to the reflection registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty name")
    if cls.name in MODULE_REGISTRY:
        raise ValueError(f"duplicate module name: {cls.name!r}")
    MODULE_REGISTRY[cls.name] = cls
    return cls


def create_module(name: str) -> QoSModule:
    """Instantiate a registered module by name (reflective loading)."""
    try:
        cls = MODULE_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"no QoS module registered under {name!r}; "
            f"available: {available_modules()}"
        ) from None
    return cls()


def available_modules() -> List[str]:
    """Names of all loadable modules."""
    return sorted(MODULE_REGISTRY)


# Importing the implementations populates the registry.
from repro.orb.modules import iiop as _iiop  # noqa: E402,F401
from repro.orb.modules import compression as _compression  # noqa: E402,F401
from repro.orb.modules import crypto as _crypto  # noqa: E402,F401
from repro.orb.modules import bandwidth as _bandwidth  # noqa: E402,F401
from repro.orb.modules import multicast as _multicast  # noqa: E402,F401
from repro.orb.modules import trace as _trace  # noqa: E402,F401

__all__ = [
    "ENVELOPE_MAGIC",
    "MODULE_REGISTRY",
    "QoSModule",
    "available_modules",
    "create_module",
    "decode_envelope",
    "encode_envelope",
    "is_envelope",
    "register_module",
]
