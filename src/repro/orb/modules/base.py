"""QoS module base class and the module wire envelope.

A module participates in two planes:

- **control plane**: a *static* interface (exposed locally as a pseudo
  object — loading, introspection, statistics) and a *dynamic*
  interface (module-specific operations driven through the DII by
  tagged commands, Figure 3).
- **data plane**: service requests assigned to the module pass through
  :meth:`QoSModule.send_request`; modules that transform the byte
  stream (compression, encryption) override :meth:`wrap` /
  :meth:`unwrap` and their peer module on the receiving ORB undoes the
  transformation.

Transformed messages travel inside an **envelope**::

    b"MQOS" | string module-name | any params | octets payload

so the receiving ORB knows which module must unwrap before GIOP
decoding — the on-the-wire realisation of the paper's module hierarchy.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.orb import giop
from repro.orb.cdr import CDRDecoder, CDREncoder
from repro.orb.dii import PseudoObject
from repro.orb.exceptions import BAD_OPERATION, MARSHAL
from repro.orb.ior import IOR
from repro.orb.request import Request

ENVELOPE_MAGIC = b"MQOS"


def encode_envelope(module_name: str, params: Dict[str, Any], payload: bytes) -> bytes:
    """Wrap a transformed message body for the wire."""
    encoder = CDREncoder()
    encoder.write_raw(ENVELOPE_MAGIC)
    encoder.write_string(module_name)
    encoder.write_any(params)
    encoder.write_octets(payload)
    return encoder.getvalue()


def decode_envelope(data: bytes) -> Tuple[str, Dict[str, Any], bytes]:
    """Split an envelope into (module name, params, payload)."""
    decoder = CDRDecoder(data)
    magic = decoder.read_raw(4)
    if magic != ENVELOPE_MAGIC:
        raise MARSHAL(f"not a module envelope: {magic!r}")
    module_name = decoder.read_string()
    params = decoder.read_any()
    if not isinstance(params, dict):
        raise MARSHAL("envelope params must decode to a map")
    payload = decoder.read_octets()
    return module_name, params, payload


def is_envelope(data: bytes) -> bool:
    """Does this wire message carry a module envelope?"""
    return data[:4] == ENVELOPE_MAGIC


def binding_key(ior: IOR) -> str:
    """Canonical key naming one client/server relationship."""
    return ior.binding_key()


class QoSModule:
    """Base class of all QoS transport modules."""

    #: Registry name; subclasses must override.
    name = ""
    #: Human description shown by the static interface.
    description = ""
    #: Whether the data path uses the wire envelope (byte transforms).
    uses_envelope = False

    #: Names of operations reachable through the dynamic interface
    #: (module commands).  Each must be a public method on the module.
    dynamic_ops: Tuple[str, ...] = ()

    def __init__(self) -> None:
        self.transport: Optional[Any] = None
        self.requests_sent = 0
        self.requests_served = 0
        self.commands_handled = 0
        #: Per-binding configuration set through the dynamic interface.
        self._binding_config: Dict[str, Dict[str, Any]] = {}

    # -- lifecycle (the common static interface) -------------------------

    def on_load(self, transport: Any) -> None:
        """Called by the QoS transport when the module is loaded."""
        self.transport = transport

    def on_unload(self) -> None:
        """Called before the module is discarded."""
        self.transport = None

    @property
    def orb(self) -> Any:
        if self.transport is None:
            raise RuntimeError(f"module {self.name!r} is not loaded")
        return self.transport.orb

    def pseudo_object(self) -> PseudoObject:
        """The static interface, locally accessible like any object."""
        return PseudoObject(
            f"QoSModule:{self.name}",
            {
                "name": lambda: self.name,
                "description": lambda: self.description,
                "dynamic_ops": lambda: sorted(self.dynamic_ops),
                "statistics": self.statistics,
            },
        )

    def statistics(self) -> Dict[str, int]:
        return {
            "requests_sent": self.requests_sent,
            "requests_served": self.requests_served,
            "commands_handled": self.commands_handled,
        }

    # -- binding configuration -------------------------------------------

    def configure_binding(self, binding: str, **settings: Any) -> Dict[str, Any]:
        """Merge settings for one client/server relationship."""
        config = self._binding_config.setdefault(binding, {})
        config.update(settings)
        return dict(config)

    def binding_config(self, binding: str) -> Dict[str, Any]:
        return dict(self._binding_config.get(binding, {}))

    # -- control plane ------------------------------------------------------

    def handle_command(self, request: Request) -> Any:
        """Dispatch a module command to its dynamic interface."""
        if request.operation not in self.dynamic_ops:
            raise BAD_OPERATION(
                f"module {self.name!r} has no dynamic operation "
                f"{request.operation!r}; offers {sorted(self.dynamic_ops)}"
            )
        method = getattr(self, request.operation)
        self.commands_handled += 1
        return method(*request.args)

    # -- data plane -----------------------------------------------------------

    def context_for(self, request: Request) -> Dict[str, Any]:
        """Transform parameters for this request's binding."""
        return self.binding_config(binding_key(request.target))

    def reservations_for(self, request: Request) -> Optional[Dict[int, float]]:
        """Per-link reserved rates for this request (None = best effort)."""
        return None

    def wrap(
        self, body: bytes, context: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], bytes, float]:
        """Transform an outgoing message body.

        Returns ``(params, payload, cpu_seconds)``.  ``params`` travel
        in the envelope so the peer can invert the transform.
        """
        return {}, body, 0.0

    def unwrap(self, params: Dict[str, Any], payload: bytes) -> Tuple[bytes, float]:
        """Invert :meth:`wrap`.  Returns ``(body, cpu_seconds)``."""
        return payload, 0.0

    def send_request(self, orb: Any, request: Request) -> giop.Reply:
        """Client-side data path: encode, transform, transmit, decode.

        The default implementation covers every point-to-point module;
        group modules (multicast) override it wholesale.  Oneway
        requests (``response_expected`` false) are fire-and-forget:
        the caller resumes once the message has left, the server
        processes it in its own (future) time, and no reply travels.
        """
        clock = orb.clock
        depart = clock.now
        wire = giop.encode_request(request)
        depart += orb.marshal_cost(len(wire))
        if self.uses_envelope:
            params, payload, cpu = self.wrap(wire, self.context_for(request))
            depart += cpu
            wire = encode_envelope(self.name, params, payload)
        if not request.response_expected:
            orb.one_way(request.target.profile.host, wire, depart)
            clock.advance_to(depart)
            self.requests_sent += 1
            return giop.Reply(request.request_id, {}, None, None)
        reply_wire, finish = orb.round_trip(
            request.target.profile.host,
            wire,
            depart,
            self.reservations_for(request),
        )
        if is_envelope(reply_wire):
            envelope_name, params, payload = decode_envelope(reply_wire)
            if envelope_name != self.name:
                raise MARSHAL(
                    f"reply wrapped by {envelope_name!r}, expected {self.name!r}"
                )
            reply_wire, cpu = self.unwrap(params, payload)
            finish += cpu
        finish += orb.marshal_cost(len(reply_wire))
        clock.advance_to(finish)
        self.requests_sent += 1
        return giop.decode_reply(reply_wire)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<QoSModule {self.name!r}>"
