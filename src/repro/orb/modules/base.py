"""QoS module base class and the module wire envelope.

A module participates in two planes:

- **control plane**: a *static* interface (exposed locally as a pseudo
  object — loading, introspection, statistics) and a *dynamic*
  interface (module-specific operations driven through the DII by
  tagged commands, Figure 3).
- **data plane**: service requests assigned to the module pass through
  :meth:`QoSModule.send_request`; modules that transform the byte
  stream (compression, encryption) override :meth:`wrap` /
  :meth:`unwrap` and their peer module on the receiving ORB undoes the
  transformation.

Transformed messages travel inside an **envelope**::

    b"MQOS" | string module-name | any params | octets payload

so the receiving ORB knows which module must unwrap before GIOP
decoding — the on-the-wire realisation of the paper's module hierarchy.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.orb import giop
from repro.orb.cdr import CDRDecoder, CDREncoder
from repro.orb.dii import PseudoObject
from repro.orb.exceptions import BAD_OPERATION, MARSHAL
from repro.orb.ior import IOR
from repro.orb.request import Request
from repro.perf.counters import COUNTERS

ENVELOPE_MAGIC = b"MQOS"


def encode_envelope(module_name: str, params: Dict[str, Any], payload: bytes) -> bytes:
    """Wrap a transformed message body for the wire."""
    encoder = CDREncoder()
    encoder.write_raw(ENVELOPE_MAGIC)
    encoder.write_string(module_name)
    encoder.write_any(params)
    encoder.write_octets(payload)
    return encoder.getvalue()


def decode_envelope(data: bytes) -> Tuple[str, Dict[str, Any], bytes]:
    """Split an envelope into (module name, params, payload)."""
    decoder = CDRDecoder(data)
    magic = decoder.read_raw(4)
    if magic != ENVELOPE_MAGIC:
        raise MARSHAL(f"not a module envelope: {magic!r}")
    module_name = decoder.read_string()
    params = decoder.read_any()
    if not isinstance(params, dict):
        raise MARSHAL("envelope params must decode to a map")
    payload = decoder.read_octets()
    return module_name, params, payload


def is_envelope(data: bytes) -> bool:
    """Does this wire message carry a module envelope?"""
    return data[:4] == ENVELOPE_MAGIC


def binding_key(ior: IOR) -> str:
    """Canonical key naming one client/server relationship."""
    return ior.binding_key()


class QoSModule:
    """Base class of all QoS transport modules."""

    #: Registry name; subclasses must override.
    name = ""
    #: Human description shown by the static interface.
    description = ""
    #: Whether the data path uses the wire envelope (byte transforms).
    uses_envelope = False

    #: Names of operations reachable through the dynamic interface
    #: (module commands).  Each must be a public method on the module.
    dynamic_ops: Tuple[str, ...] = ()

    def __init__(self) -> None:
        self.transport: Optional[Any] = None
        self.requests_sent = 0
        self.requests_served = 0
        self.commands_handled = 0
        #: Per-binding configuration set through the dynamic interface.
        self._binding_config: Dict[str, Dict[str, Any]] = {}

    # -- lifecycle (the common static interface) -------------------------

    def on_load(self, transport: Any) -> None:
        """Called by the QoS transport when the module is loaded."""
        self.transport = transport

    def on_unload(self) -> None:
        """Called before the module is discarded."""
        self.transport = None

    @property
    def orb(self) -> Any:
        if self.transport is None:
            raise RuntimeError(f"module {self.name!r} is not loaded")
        return self.transport.orb

    def pseudo_object(self) -> PseudoObject:
        """The static interface, locally accessible like any object."""
        return PseudoObject(
            f"QoSModule:{self.name}",
            {
                "name": lambda: self.name,
                "description": lambda: self.description,
                "dynamic_ops": lambda: sorted(self.dynamic_ops),
                "statistics": self.statistics,
            },
        )

    def statistics(self) -> Dict[str, int]:
        return {
            "requests_sent": self.requests_sent,
            "requests_served": self.requests_served,
            "commands_handled": self.commands_handled,
        }

    # -- binding configuration -------------------------------------------

    def configure_binding(self, binding: str, **settings: Any) -> Dict[str, Any]:
        """Merge settings for one client/server relationship."""
        config = self._binding_config.setdefault(binding, {})
        config.update(settings)
        return dict(config)

    def binding_config(self, binding: str) -> Dict[str, Any]:
        return dict(self._binding_config.get(binding, {}))

    # -- control plane ------------------------------------------------------

    def handle_command(self, request: Request) -> Any:
        """Dispatch a module command to its dynamic interface."""
        if request.operation not in self.dynamic_ops:
            raise BAD_OPERATION(
                f"module {self.name!r} has no dynamic operation "
                f"{request.operation!r}; offers {sorted(self.dynamic_ops)}"
            )
        method = getattr(self, request.operation)
        self.commands_handled += 1
        return method(*request.args)

    # -- data plane -----------------------------------------------------------

    @property
    def supports_pipelining(self) -> bool:
        """Can the AMI pipeline carry this module's requests?

        True for every module riding the default point-to-point
        :meth:`send_request`; modules that replace it wholesale (group
        delivery) own their clock arithmetic, so deferred invocations
        through them fall back to the synchronous path.
        """
        return type(self).send_request is QoSModule.send_request

    def context_for(self, request: Request) -> Dict[str, Any]:
        """Transform parameters for this request's binding."""
        return self.binding_config(binding_key(request.target))

    def reservations_for(self, request: Request) -> Optional[Dict[int, float]]:
        """Per-link reserved rates for this request (None = best effort)."""
        return None

    def wrap(
        self, body: bytes, context: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], bytes, float]:
        """Transform an outgoing message body.

        Returns ``(params, payload, cpu_seconds)``.  ``params`` travel
        in the envelope so the peer can invert the transform.  The
        default routes through the burst primitives so subclasses only
        implement :meth:`_burst_prolog` / :meth:`_wrap_one` and get the
        single-message path for free — byte-identical either way.
        """
        return self._wrap_one(body, context, self._burst_prolog(context))

    def unwrap(self, params: Dict[str, Any], payload: bytes) -> Tuple[bytes, float]:
        """Invert :meth:`wrap`.  Returns ``(body, cpu_seconds)``."""
        return self._unwrap_one(params, payload, self._unwrap_prolog(params))

    # -- burst primitives -------------------------------------------------
    #
    # A burst amortises the per-message transform *setup* (codec/cipher
    # table lookups, session-key resolution) across a batch from the
    # same binding.  Only Python-level work is amortised: the simulated
    # CPU cost of a transform is linear in the bytes processed, so the
    # time model and the produced bytes are identical to N single
    # wrap()/unwrap() calls — tests assert this.

    def _burst_prolog(self, context: Dict[str, Any]) -> Any:
        """Resolve per-burst outgoing transform state once."""
        return None

    def _wrap_one(
        self, body: bytes, context: Dict[str, Any], state: Any
    ) -> Tuple[Dict[str, Any], bytes, float]:
        """Transform one body using prepared ``state``."""
        return {}, body, 0.0

    def wrap_burst(
        self, bodies: Sequence[bytes], context: Dict[str, Any]
    ) -> List[Tuple[Dict[str, Any], bytes, float]]:
        """Wrap a batch of bodies with one prolog; byte-identical."""
        state = self._burst_prolog(context)
        out = [self._wrap_one(body, context, state) for body in bodies]
        COUNTERS.module_bursts += 1
        COUNTERS.module_burst_messages += len(out)
        return out

    def _unwrap_prolog(self, params: Dict[str, Any]) -> Any:
        """Prepare shared inbound transform state (e.g. a memo cache)."""
        return None

    def _unwrap_one(
        self, params: Dict[str, Any], payload: bytes, state: Any
    ) -> Tuple[bytes, float]:
        """Invert one transform using prepared ``state``."""
        return payload, 0.0

    def unwrap_burst(
        self, items: Sequence[Tuple[Dict[str, Any], bytes]]
    ) -> List[Tuple[bytes, float]]:
        """Unwrap a batch of ``(params, payload)`` pairs with one prolog.

        The prolog state is seeded from the first item's params; items
        whose params differ (e.g. an incompressible message marked
        ``identity``) are still handled correctly because per-item
        resolution falls back through the shared memo state.
        """
        if not items:
            return []
        state = self._unwrap_prolog(items[0][0])
        out = [
            self._unwrap_one(params, payload, state) for params, payload in items
        ]
        COUNTERS.module_bursts += 1
        COUNTERS.module_burst_messages += len(out)
        return out

    def send_request(self, orb: Any, request: Request) -> giop.Reply:
        """Client-side data path: encode, transform, transmit, decode.

        The default implementation covers every point-to-point module;
        group modules (multicast) override it wholesale.  Oneway
        requests (``response_expected`` false) are fire-and-forget:
        the caller resumes once the message has left, the server
        processes it in its own (future) time, and no reply travels.
        """
        clock = orb.time_source
        depart = clock.now()
        wire = giop.encode_request(request, pools=getattr(orb, "pools", None))
        depart += orb.marshal_cost(len(wire))
        if self.uses_envelope:
            params, payload, cpu = self.wrap(wire, self.context_for(request))
            depart += cpu
            wire = encode_envelope(self.name, params, payload)
        if not request.response_expected:
            orb.one_way(request.target.profile.host, wire, depart)
            clock.wait_until(depart)
            self.requests_sent += 1
            return giop.Reply(request.request_id, {}, None, None)
        reply_wire, finish = orb.round_trip(
            request.target.profile.host,
            wire,
            depart,
            self.reservations_for(request),
        )
        if is_envelope(reply_wire):
            envelope_name, params, payload = decode_envelope(reply_wire)
            if envelope_name != self.name:
                raise MARSHAL(
                    f"reply wrapped by {envelope_name!r}, expected {self.name!r}"
                )
            reply_wire, cpu = self.unwrap(params, payload)
            finish += cpu
        finish += orb.marshal_cost(len(reply_wire))
        clock.wait_until(finish)
        self.requests_sent += 1
        return giop.decode_reply(reply_wire)

    def send_pipeline(self, orb: Any, requests: Sequence[Request]) -> List[giop.Reply]:
        """Client-side burst: issue several requests over one binding.

        Semantically identical to calling :meth:`send_request` once per
        request — same bytes on the wire, same simulated timing (tests
        assert both) — only the Python-level module prolog work
        (codec/cipher/key resolution) is shared across the batch.  All
        requests must ride the same binding; mixed/oneway batches fall
        back to the per-request path.
        """
        requests = list(requests)
        if not requests:
            return []
        if not self.uses_envelope or not all(
            r.response_expected for r in requests
        ):
            return [self.send_request(orb, request) for request in requests]
        clock = orb.time_source
        pools = getattr(orb, "pools", None)
        bodies = [giop.encode_request(r, pools=pools) for r in requests]
        wrapped = self.wrap_burst(bodies, self.context_for(requests[0]))
        reply_state: Any = None
        replies: List[giop.Reply] = []
        for request, body, (params, payload, cpu) in zip(requests, bodies, wrapped):
            depart = clock.now() + orb.marshal_cost(len(body)) + cpu
            wire = encode_envelope(self.name, params, payload)
            reply_wire, finish = orb.round_trip(
                request.target.profile.host,
                wire,
                depart,
                self.reservations_for(request),
            )
            if is_envelope(reply_wire):
                envelope_name, rparams, rpayload = decode_envelope(reply_wire)
                if envelope_name != self.name:
                    raise MARSHAL(
                        f"reply wrapped by {envelope_name!r}, "
                        f"expected {self.name!r}"
                    )
                if reply_state is None:
                    reply_state = self._unwrap_prolog(rparams)
                reply_wire, rcpu = self._unwrap_one(rparams, rpayload, reply_state)
                finish += rcpu
            finish += orb.marshal_cost(len(reply_wire))
            clock.wait_until(finish)
            self.requests_sent += 1
            replies.append(giop.decode_reply(reply_wire))
        return replies

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<QoSModule {self.name!r}>"
