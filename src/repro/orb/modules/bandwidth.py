"""Bandwidth reservation module.

Reuses the network substrate's admission-controlled reservations
(Section 4 names "bandwidth reservation" as a reusable lower-layer QoS
mechanism).  Once a reservation toward a destination host is admitted,
every request this module carries to that host transfers at the
reserved rate instead of competing for best-effort capacity.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.netsim.resources import InsufficientBandwidth, Reservation
from repro.orb.exceptions import NO_RESOURCES
from repro.orb.modules.base import QoSModule
from repro.orb.request import Request


class BandwidthModule(QoSModule):
    """Reserve and use per-destination bandwidth."""

    name = "bandwidth"
    description = "end-to-end bandwidth reservation (IntServ-style)"
    uses_envelope = False
    dynamic_ops = ("reserve", "release", "reserved_rate", "reservations")

    def __init__(self) -> None:
        super().__init__()
        #: destination host -> active Reservation.
        self._reservations: Dict[str, Reservation] = {}

    # -- dynamic interface ------------------------------------------------

    def reserve(self, dest_host: str, rate_bps: float) -> float:
        """Admit a reservation from this ORB's host toward ``dest_host``.

        Replaces any existing reservation to the same destination.
        Raises :class:`NO_RESOURCES` when admission control rejects.
        """
        manager = self.orb.world.resources
        existing = self._reservations.pop(dest_host, None)
        if existing is not None:
            manager.release(existing)
        try:
            reservation = manager.reserve(self.orb.host_name, dest_host, rate_bps)
        except InsufficientBandwidth as error:
            raise NO_RESOURCES(str(error)) from None
        self._reservations[dest_host] = reservation
        return reservation.rate_bps

    def release(self, dest_host: str) -> bool:
        """Release the reservation toward a destination; returns whether one existed."""
        reservation = self._reservations.pop(dest_host, None)
        if reservation is None:
            return False
        self.orb.world.resources.release(reservation)
        return True

    def reserved_rate(self, dest_host: str) -> float:
        """Currently reserved rate toward a destination (0.0 if none)."""
        reservation = self._reservations.get(dest_host)
        return reservation.rate_bps if reservation else 0.0

    def reservations(self) -> List[str]:
        return sorted(self._reservations)

    # -- data plane ----------------------------------------------------------

    def reservations_for(self, request: Request) -> Optional[Dict[int, float]]:
        reservation = self._reservations.get(request.target.profile.host)
        if reservation is None:
            return None
        return reservation.link_rates()

    def on_unload(self) -> None:
        manager = self.orb.world.resources
        for reservation in self._reservations.values():
            manager.release(reservation)
        self._reservations.clear()
        super().on_unload()


from repro.orb.modules import register_module  # noqa: E402

register_module(BandwidthModule)
