"""The plain GIOP/IIOP transport module.

Figure 3's default path: requests with no QoS awareness — and QoS-aware
requests whose binding has no module assigned yet, "allow[ing] initial
negotiation of a QoS agreement" — travel through this module.  It is
always loaded and performs no transformation.
"""

from __future__ import annotations

from repro.orb.modules.base import QoSModule


class IIOPModule(QoSModule):
    """Untransformed point-to-point transport."""

    name = "iiop"
    description = "plain GIOP/IIOP transport (default, no QoS)"
    uses_envelope = False
    dynamic_ops = ("ping",)

    def ping(self) -> str:
        """Liveness probe for the dynamic interface tests."""
        return "pong"


# Registered at the bottom to avoid a circular import with the package
# __init__, which imports this module to populate the registry.
from repro.orb.modules import register_module  # noqa: E402

register_module(IIOPModule)
