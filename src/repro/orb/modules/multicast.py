"""Group-communication module for replica groups.

Section 6: "a multicast on network layer can be used for k-availability
as well as for diversity through majority votes on results".  This
module fans one logical request out to every member of a replica group
(recorded in the target IOR's group component) and combines the
replies under a per-binding policy:

- ``first``     — return the earliest successful reply (k-availability:
  the call succeeds while at least one replica is up).
- ``all``       — require every member to answer (strict active
  replication; any unreachable replica fails the call).
- ``majority``  — vote on the reply values and return the majority
  result (diversity: masks value faults, not just crashes).

Fan-out is modelled as parallel: every member receives the request at
the same departure instant, and the combined completion time depends
on the policy (earliest reply for ``first``, the vote-deciding reply
for ``majority``, the slowest for ``all``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.orb import giop
from repro.orb.exceptions import BAD_PARAM, COMM_FAILURE, SystemException, TRANSIENT
from repro.orb.ior import GROUP_TAG, IOR
from repro.orb.modules.base import QoSModule
from repro.orb.request import Request

POLICIES = ("first", "all", "majority")
DEFAULT_POLICY = "first"


class MemberOutcome:
    """What one replica did with the fanned-out request."""

    __slots__ = ("member", "reply", "finish", "error")

    def __init__(
        self,
        member: IOR,
        reply: Optional[giop.Reply],
        finish: Optional[float],
        error: Optional[SystemException],
    ) -> None:
        self.member = member
        self.reply = reply
        self.finish = finish
        self.error = error

    @property
    def responded(self) -> bool:
        return self.reply is not None


def _vote_key(reply: giop.Reply) -> Tuple[str, str]:
    """A comparable identity for a reply's outcome (result or exception)."""
    if reply.exception is not None:
        repo_id = getattr(reply.exception, "repo_id", type(reply.exception).__name__)
        return ("exception", f"{repo_id}:{reply.exception}")
    return ("result", repr(reply.result))


class MulticastModule(QoSModule):
    """Deliver requests to replica groups."""

    name = "multicast"
    description = "replica-group fan-out with first/all/majority combination"
    uses_envelope = False
    dynamic_ops = ("set_policy", "get_policy", "group_members")

    def __init__(self) -> None:
        super().__init__()
        self.fanouts = 0
        self.member_failures = 0

    # -- dynamic interface ------------------------------------------------

    def set_policy(self, binding: str, policy: str) -> Dict[str, Any]:
        """Choose the reply-combination policy for a binding."""
        if policy not in POLICIES:
            raise BAD_PARAM(f"unknown policy {policy!r}; choose from {POLICIES}")
        return self.configure_binding(binding, policy=policy)

    def get_policy(self, binding: str) -> str:
        return self.binding_config(binding).get("policy", DEFAULT_POLICY)

    def group_members(self, group_ior_string: str) -> List[str]:
        """Member host names of a group reference (introspection)."""
        ior = IOR.from_string(group_ior_string)
        return [member.profile.host for member in self._members(ior)]

    # -- group plumbing ----------------------------------------------------

    @staticmethod
    def _members(target: IOR) -> List[IOR]:
        component = target.component(GROUP_TAG)
        if component is None:
            raise BAD_PARAM(
                "multicast module needs a group reference "
                "(IOR lacks the group component)"
            )
        members = component.data.get("members", [])
        if not members:
            raise BAD_PARAM("group reference has an empty member list")
        return [IOR.from_string(text) for text in members]

    # -- data plane ----------------------------------------------------------

    def send_request(self, orb: Any, request: Request) -> giop.Reply:
        members = self._members(request.target)
        policy = self.context_for(request).get("policy", DEFAULT_POLICY)
        outcomes = self._fan_out(orb, request, members)
        self.fanouts += 1
        self.member_failures += sum(1 for o in outcomes if not o.responded)
        reply, finish = self._combine(policy, members, outcomes)
        orb.clock.advance_to(finish)
        self.requests_sent += 1
        return reply

    def _fan_out(
        self, orb: Any, request: Request, members: List[IOR]
    ) -> List[MemberOutcome]:
        depart_base = orb.clock.now
        outcomes: List[MemberOutcome] = []
        for member in members:
            per_member = Request(
                member,
                request.operation,
                request.args,
                service_contexts=request.service_contexts,
            )
            wire = giop.encode_request(per_member)
            depart = depart_base + orb.marshal_cost(len(wire))
            try:
                reply_wire, finish = orb.round_trip(
                    member.profile.host, wire, depart
                )
                finish += orb.marshal_cost(len(reply_wire))
                reply = giop.decode_reply(reply_wire)
                outcomes.append(MemberOutcome(member, reply, finish, None))
            except SystemException as error:
                outcomes.append(MemberOutcome(member, None, None, error))
        return outcomes

    def _combine(
        self,
        policy: str,
        members: List[IOR],
        outcomes: List[MemberOutcome],
    ) -> Tuple[giop.Reply, float]:
        responded = [o for o in outcomes if o.responded]
        if not responded:
            raise COMM_FAILURE(
                f"no replica of the group responded "
                f"({len(outcomes)} member(s) unreachable)"
            )
        if policy == "first":
            winner = min(responded, key=lambda o: o.finish)
            return winner.reply, winner.finish
        if policy == "all":
            if len(responded) < len(members):
                failed = [o.member.profile.host for o in outcomes if not o.responded]
                raise COMM_FAILURE(f"policy 'all': members unreachable: {failed}")
            slowest = max(responded, key=lambda o: o.finish)
            return slowest.reply, slowest.finish
        if policy == "majority":
            return self._majority(members, responded)
        raise BAD_PARAM(f"unknown policy {policy!r}")

    def _majority(
        self, members: List[IOR], responded: List[MemberOutcome]
    ) -> Tuple[giop.Reply, float]:
        threshold = len(members) // 2 + 1
        buckets: Dict[Tuple[str, str], List[MemberOutcome]] = {}
        for outcome in responded:
            buckets.setdefault(_vote_key(outcome.reply), []).append(outcome)
        for votes in buckets.values():
            if len(votes) >= threshold:
                # The decision lands when the vote that completes the
                # majority arrives: the threshold-th earliest reply.
                ordered = sorted(votes, key=lambda o: o.finish)
                decider = ordered[threshold - 1]
                return ordered[0].reply, decider.finish
        raise TRANSIENT(
            f"no majority among {len(responded)} replies "
            f"(need {threshold} of {len(members)})"
        )


from repro.orb.modules import register_module  # noqa: E402

register_module(MulticastModule)
