"""Tracing module: per-binding wire telemetry as a QoS module.

A deliberately small module that shows how cheaply the reflective
module layer extends (Section 4): it performs no transformation, just
records every request it carries — operation, wire bytes, simulated
round-trip — queryable through its dynamic interface.  Assign it to a
binding to audit that relationship's traffic without touching either
application side.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Tuple

from repro.orb import giop
from repro.orb.modules.base import QoSModule, binding_key
from repro.orb.request import Request

#: Records kept per binding.
HISTORY = 100


class TraceModule(QoSModule):
    """Record traffic of the bindings assigned to this module."""

    name = "trace"
    description = "per-binding wire telemetry (operation, bytes, rtt)"
    uses_envelope = False
    dynamic_ops = ("recent", "totals", "clear")

    def __init__(self) -> None:
        super().__init__()
        self._records: Dict[str, Deque[Tuple[str, int, float]]] = {}
        self._totals: Dict[str, Dict[str, float]] = {}

    # -- data plane -----------------------------------------------------

    def send_request(self, orb: Any, request: Request) -> giop.Reply:
        binding = binding_key(request.target)
        started = orb.clock.now
        wire_size = len(giop.encode_request(request))
        reply = super().send_request(orb, request)
        elapsed = orb.clock.now - started
        history = self._records.setdefault(binding, deque(maxlen=HISTORY))
        history.append((request.operation, wire_size, elapsed))
        totals = self._totals.setdefault(
            binding, {"calls": 0.0, "bytes": 0.0, "seconds": 0.0}
        )
        totals["calls"] += 1
        totals["bytes"] += wire_size
        totals["seconds"] += elapsed
        return reply

    # -- dynamic interface ------------------------------------------------

    def recent(self, binding: str, count: int = 10) -> List[List[Any]]:
        """The last ``count`` records for a binding (op, bytes, rtt)."""
        history = self._records.get(binding, deque())
        return [list(record) for record in list(history)[-count:]]

    def totals(self, binding: str) -> Dict[str, float]:
        return dict(self._totals.get(binding, {"calls": 0.0, "bytes": 0.0,
                                                "seconds": 0.0}))

    def clear(self, binding: str) -> None:
        self._records.pop(binding, None)
        self._totals.pop(binding, None)


from repro.orb.modules import register_module  # noqa: E402

register_module(TraceModule)
