"""Dynamic Invocation Interface.

Section 4: "The static interface is modelled as a pseudo object and
therefore can be accessed like any other object whereas the dynamic
interface is handled through the dynamic invocation interface (DII)
which is part of standard CORBA."

Client-side facilities:

- :class:`DIIRequest` — build and invoke a request without generated
  stubs (operation name plus dynamically typed arguments); supports
  CORBA's *deferred synchronous* style (``send_deferred`` →
  ``poll_response`` → ``get_response``), so several requests can be in
  flight at once.
- :class:`ModuleHandle` — a DII convenience wrapper that addresses the
  *dynamic interface* of a QoS module on a remote (or local) ORB by
  sending tagged **commands**.
- :class:`PseudoObject` — the local reflection surface for *static*
  interfaces (the QoS transport and each module register one).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.orb.exceptions import BAD_OPERATION
from repro.orb.ior import IOR
from repro.orb.request import COMMAND, Request


class DIIRequest:
    """A dynamically assembled invocation.

    >>> request = DIIRequest(orb, ior, "fetch")     # doctest: +SKIP
    >>> request.add_argument("path/to/file")        # doctest: +SKIP
    >>> request.invoke()                            # doctest: +SKIP
    """

    def __init__(self, orb: "ORB", target: IOR, operation: str) -> None:  # noqa: F821
        self._orb = orb
        self._target = target
        self._operation = operation
        self._args: List[Any] = []
        self._contexts: Dict[str, Any] = {}
        self._future: Optional["ReplyFuture"] = None  # noqa: F821

    def add_argument(self, value: Any) -> "DIIRequest":
        self._args.append(value)
        return self

    def set_context(self, key: str, value: Any) -> "DIIRequest":
        self._contexts[key] = value
        return self

    def invoke(self) -> Any:
        request = Request(
            self._target,
            self._operation,
            tuple(self._args),
            service_contexts=self._contexts,
        )
        return self._orb.invoke(request)

    # -- deferred synchronous invocation ---------------------------------

    @property
    def future(self) -> Optional["ReplyFuture"]:  # noqa: F821
        """The reply future, once :meth:`send_deferred` was called."""
        return self._future

    def send_deferred(self, flush: bool = True) -> "DIIRequest":
        """Issue the request without waiting for the reply.

        The request joins the AMI pipeline (:mod:`repro.orb.ami`); the
        caller keeps the simulated clock and can do other work
        (including sending more deferred requests) while it is in
        flight.  Collect the outcome with :meth:`poll_response` /
        :meth:`get_response` (or through :attr:`future` directly).

        By default the pipeline window is flushed immediately —
        CORBA's classic deferred-synchronous semantics, where transport
        failures surface at send time.  Pass ``flush=False`` to only
        enqueue, letting several DII requests share one pipelined
        window; failures then surface at :meth:`get_response`.
        """
        if self._future is not None:
            raise RuntimeError("request already sent")
        request = Request(
            self._target,
            self._operation,
            tuple(self._args),
            service_contexts=self._contexts,
        )
        self._future = self._orb.invoke_deferred(request)
        if flush:
            self._future.flush()
            if self._future.transport_error:
                raise self._future.error
        return self

    def poll_response(self) -> bool:
        """Has the reply arrived by the current simulated time?"""
        if self._future is None:
            raise RuntimeError("request not sent; call send_deferred() first")
        return self._future.poll()

    def get_response(self) -> Any:
        """Block (advance the clock) until the reply is in; return it."""
        if self._future is None:
            raise RuntimeError("request not sent; call send_deferred() first")
        return self._future.result()


class ModuleHandle:
    """Drive a QoS module's dynamic interface via tagged commands.

    ``target`` anchors the command at a host: the command travels to
    the ORB owning that reference and is dispatched to the module named
    ``module_name`` there (Figure 3, "Module-Command").
    """

    def __init__(self, orb: "ORB", target: IOR, module_name: str) -> None:  # noqa: F821
        self._orb = orb
        self._target = target
        self._module_name = module_name

    def call(self, operation: str, *args: Any, **contexts: Any) -> Any:
        request = Request(
            self._target,
            operation,
            args,
            kind=COMMAND,
            command_target=self._module_name,
            service_contexts=contexts,
        )
        return self._orb.invoke(request)


class TransportHandle(ModuleHandle):
    """Drive a remote ORB's QoS transport (Figure 3, "Transport-Command")."""

    def __init__(self, orb: "ORB", target: IOR) -> None:  # noqa: F821
        super().__init__(orb, target, "transport")


class PseudoObject:
    """A locally implemented object exposing a static interface.

    Pseudo objects never cross the wire: calls bind directly to the
    registered Python callables, which is exactly how CORBA pseudo
    objects (the ORB, the POA) behave.
    """

    def __init__(self, name: str, operations: Dict[str, Callable[..., Any]]):
        self._name = name
        self._operations = dict(operations)

    def call(self, operation: str, *args: Any, **kwargs: Any) -> Any:
        try:
            target = self._operations[operation]
        except KeyError:
            raise BAD_OPERATION(
                f"pseudo object {self._name!r} has no operation {operation!r}"
            ) from None
        return target(*args, **kwargs)

    def operations(self) -> List[str]:
        """Reflectively list the static interface."""
        return sorted(self._operations)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PseudoObject({self._name!r}, ops={self.operations()})"
