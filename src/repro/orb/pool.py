"""Per-ORB free lists for the wire hot path.

Every message used to allocate a fresh ``bytearray`` (inside
:class:`~repro.orb.cdr.CDREncoder`) and every stub call a fresh
:class:`~repro.orb.request.Request`.  On the echo hot path both
objects have strictly call-scoped lifetimes, so each ORB keeps small
free lists and recycles them; :data:`repro.perf.COUNTERS` records hit
rates (``encoder_pool_*``, ``request_pool_*``).

The pools are deliberately dumb: bounded LIFO stacks, no locking (the
simulation is single-threaded), and callers that forget to release
simply fall back to allocation — correctness never depends on a
release happening.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.orb.cdr import CDREncoder
from repro.orb.ior import IOR
from repro.orb.request import Request
from repro.perf.counters import COUNTERS


class WirePools:
    """One ORB's encoder-buffer and request free lists."""

    __slots__ = ("_encoders", "_requests", "max_encoders", "max_requests")

    def __init__(self, max_encoders: int = 8, max_requests: int = 8) -> None:
        self._encoders: List[CDREncoder] = []
        self._requests: List[Request] = []
        self.max_encoders = max_encoders
        self.max_requests = max_requests

    # -- encoder buffers --------------------------------------------------

    def acquire_encoder(self) -> CDREncoder:
        """A cleared encoder, recycled when the free list has one."""
        if self._encoders:
            COUNTERS.encoder_pool_hits += 1
            return self._encoders.pop()
        COUNTERS.encoder_pool_misses += 1
        return CDREncoder()

    def release_encoder(self, encoder: CDREncoder) -> None:
        """Return an encoder once its ``getvalue()`` bytes are taken."""
        if len(self._encoders) < self.max_encoders:
            self._encoders.append(encoder.reset())

    # -- request objects --------------------------------------------------

    def acquire_request(
        self,
        target: IOR,
        operation: str,
        args: Tuple[Any, ...],
        service_contexts: Dict[str, Any],
        response_expected: bool,
    ) -> Request:
        """A service request, recycled from the free list when possible."""
        if self._requests:
            COUNTERS.request_pool_hits += 1
            return self._requests.pop()._reuse(
                target, operation, args, service_contexts, response_expected
            )
        COUNTERS.request_pool_misses += 1
        return Request(
            target,
            operation,
            args,
            service_contexts=service_contexts,
            response_expected=response_expected,
        )

    def release_request(self, request: Request) -> None:
        """Return a request whose invocation has fully completed."""
        if not request.is_command and len(self._requests) < self.max_requests:
            self._requests.append(request)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WirePools(encoders={len(self._encoders)}, "
            f"requests={len(self._requests)})"
        )
