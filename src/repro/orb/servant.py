"""Servant base class.

A servant incarnates a CORBA object: the POA delivers decoded requests
to :meth:`Servant._dispatch`.  The default dispatch is reflective
(operation name → public method), which is what hand-written servants
use; QIDL-generated skeletons override it with typed dispatch plus the
QoS prolog/epilog weaving of Section 3.3.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.orb.exceptions import BAD_OPERATION

#: Reflective dispatch cache: class -> {operation: plain function}.
#: Filled lazily; only plain functions are cached (descriptors and
#: instance attributes keep the generic getattr binding path).
_METHOD_TABLES: Dict[type, Dict[str, Any]] = {}


class Servant:
    """Base of all object implementations.

    ``_repo_id`` names the most derived IDL interface.  Service times
    model server-side computation: the POA queues
    ``_service_time(operation, args)`` seconds of work on the host
    before the reply leaves, which is what makes load balancing and
    replication measurable.
    """

    _repo_id = "IDL:maqs/Object:1.0"

    #: Per-operation simulated service time overrides (seconds).
    _service_times: Dict[str, float] = {}
    #: Fallback simulated service time for all operations (seconds).
    _default_service_time = 0.0

    def _service_time(self, operation: str, args: Tuple[Any, ...]) -> float:
        """Simulated seconds of server CPU this call consumes."""
        return self._service_times.get(operation, self._default_service_time)

    def _dispatch(self, operation: str, args: Tuple[Any, ...],
                  contexts: Optional[Dict[str, Any]] = None) -> Any:
        """Execute ``operation`` and return its result.

        Reflective default: any public method is an operation.  Raises
        :class:`BAD_OPERATION` for unknown or private names.
        """
        if operation.startswith("_"):
            raise BAD_OPERATION(f"operation {operation!r} is not remotely accessible")
        cls = type(self)
        table = _METHOD_TABLES.get(cls)
        if table is None:
            table = _METHOD_TABLES.setdefault(cls, {})
        if operation not in self.__dict__:
            fn = table.get(operation)
            if fn is not None:
                return fn(self, *args)
            # Not cached yet: resolve once.  Plain functions found on
            # the class go into the table; anything else (descriptors,
            # instance attributes) binds through getattr every time.
            for base in cls.__mro__:
                attr = base.__dict__.get(operation)
                if attr is None:
                    continue
                if (
                    callable(attr)
                    and not isinstance(attr, (staticmethod, classmethod, property))
                ):
                    table[operation] = attr
                    return attr(self, *args)
                break
        method = getattr(self, operation, None)
        if method is None or not callable(method):
            raise BAD_OPERATION(
                f"{type(self).__name__} has no operation {operation!r}"
            )
        return method(*args)
