"""World: one-call bootstrap of a complete simulated deployment.

Wires the discrete-event kernel, the network, the resource manager,
the fault injector and one ORB per host, plus an optional naming
service — everything tests, examples and benchmarks need to stand up
a MAQS deployment in a few lines:

>>> world = World()
>>> _ = world.add_host("client"); _ = world.add_host("server")
>>> _ = world.connect("client", "server")
>>> server_orb = world.orb("server")
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.netsim.faults import FaultInjector
from repro.netsim.kernel import EventKernel
from repro.netsim.network import Host, Link, Network
from repro.netsim.resources import ResourceManager
from repro.orb.exceptions import COMM_FAILURE, TRANSIENT
from repro.orb.ior import IOR
from repro.orb.naming import NamingServant, NamingStub
from repro.orb.orb import ORB


class World:
    """A complete simulated distributed system."""

    def __init__(self) -> None:
        self.kernel = EventKernel()
        self.network = Network(self.kernel.clock)
        self.resources = ResourceManager(self.network)
        self.faults = FaultInjector(self.network, self.kernel)
        self._orbs: Dict[str, ORB] = {}
        self._naming_ior: Optional[IOR] = None
        #: The deployment's control plane, set by
        #: :meth:`repro.control.loop.ControlLoop.attach`; perf snapshots
        #: and the ``ctl_*`` transport commands read it from here.
        self.control = None

    @property
    def clock(self):
        return self.kernel.clock

    # -- topology -----------------------------------------------------

    def add_host(self, name: str, cpu_factor: float = 1.0) -> Host:
        return self.network.add_host(name, cpu_factor)

    def connect(
        self,
        a: str,
        b: str,
        latency: float = 0.001,
        bandwidth_bps: float = 100e6,
        loss_rate: float = 0.0,
        seed: int = 0,
    ) -> Link:
        return self.network.connect(a, b, latency, bandwidth_bps, loss_rate, seed)

    def lan(
        self,
        names: Iterable[str],
        latency: float = 0.0005,
        bandwidth_bps: float = 100e6,
    ) -> List[Host]:
        """Create hosts (if new) and fully mesh them like a small LAN."""
        hosts = []
        created: List[str] = []
        for name in names:
            if name not in self.network.hosts:
                hosts.append(self.add_host(name))
            else:
                hosts.append(self.network.host(name))
            created.append(name)
        for index, a in enumerate(created):
            for b in created[index + 1 :]:
                try:
                    self.network.link_between(a, b)
                except Exception:
                    self.connect(a, b, latency, bandwidth_bps)
        return hosts

    # -- ORBs ---------------------------------------------------------

    def orb(self, host_name: str) -> ORB:
        """The ORB on ``host_name``, created on first use."""
        if host_name not in self._orbs:
            self._orbs[host_name] = ORB(self, host_name)
        return self._orbs[host_name]

    def orb_at(self, host_name: str) -> ORB:
        """The ORB that must already be listening on ``host_name``."""
        try:
            return self._orbs[host_name]
        except KeyError:
            raise COMM_FAILURE(f"no ORB listening on host {host_name!r}") from None

    def orbs(self) -> List[ORB]:
        return list(self._orbs.values())

    # -- naming ---------------------------------------------------------

    def start_naming(self, host_name: str) -> IOR:
        """Run a naming service on ``host_name`` and remember its IOR."""
        orb = self.orb(host_name)
        self._naming_ior = orb.poa.activate_object(NamingServant(), "NameService")
        for existing in self._orbs.values():
            existing.register_initial_reference("NameServiceIOR", self._naming_ior)
        return self._naming_ior

    def naming(self, client_host: str) -> NamingStub:
        """A naming stub bound through the client host's ORB."""
        if self._naming_ior is None:
            raise TRANSIENT("no naming service started; call start_naming() first")
        return NamingStub(self.orb(client_host), self._naming_ior)

    # -- reporting --------------------------------------------------------

    def statistics(self) -> Dict[str, float]:
        """Aggregate counters across the whole deployment."""
        orbs = list(self._orbs.values())
        return {
            "time": self.clock.now,
            "hosts": float(len(self.network.hosts)),
            "orbs": float(len(orbs)),
            "messages": float(self.network.messages_sent),
            "bytes": float(self.network.bytes_sent),
            "requests_invoked": float(sum(o.requests_invoked for o in orbs)),
            "requests_received": float(sum(o.requests_received for o in orbs)),
            "oneway_failures": float(sum(o.oneway_failures for o in orbs)),
            "events_fired": float(self.kernel.events_fired),
        }
