"""The Object Request Broker.

"The ORB is responsible for locating target objects and delivering
requests" (Section 2.3).  One ORB runs per simulated host.  The client
side routes outgoing requests through the invocation interface of
Figure 3; the server side really parses the bytes that crossed the
simulated wire, unwrapping module envelopes first.

Time model: every message pays a fixed per-hop processing cost plus a
per-byte marshalling cost at each end, the link delays of the network
model in between, module CPU costs for wrap/unwrap, and the servant's
simulated service time (queued FIFO per host).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.orb import giop, invocation
from repro.orb.ami import AMIEngine, ReplyFuture
from repro.orb.dii import PseudoObject
from repro.orb.exceptions import MARSHAL, SystemException, TRANSIENT
from repro.orb.ior import IOR
from repro.orb.modules.base import decode_envelope, encode_envelope, is_envelope
from repro.orb.poa import POA
from repro.orb.pool import WirePools
from repro.orb.qos_transport import QoSTransport
from repro.orb.request import Request, next_request_id


class ORB:
    """One object request broker, bound to a simulated host."""

    #: Simulated CPU seconds per marshalled byte (each direction, each end).
    MARSHAL_COST_PER_BYTE = 5e-9
    #: Fixed simulated cost of pushing one message through the ORB core.
    HOP_COST = 2e-6

    def __init__(self, world: "World", host_name: str, port: int = 683):  # noqa: F821
        self.world = world
        self.host_name = host_name
        self.port = port
        self.host = world.network.host(host_name)
        self.poa = POA(self)
        self.qos_transport = QoSTransport(self)
        #: Optional request scheduler (admission control, fair queuing,
        #: overload protection) — see :meth:`install_scheduler`.
        self.scheduler = None
        #: Free lists for encoder buffers / request objects (hot path).
        self.pools = WirePools()
        #: Deferred-invocation engine: reply futures and the pipelined
        #: channels of :mod:`repro.orb.ami`.
        self.ami = AMIEngine(self)
        # Client-side record of server retry-after hints; lazy import
        # keeps repro.orb free of a package-level repro.sched dependency.
        from repro.sched.backpressure import Backpressure

        self.backpressure = Backpressure()
        # The transport seam: how this broker's outgoing bytes travel.
        # Lazy import for the same downward-dependency reason as above
        # (repro.rt builds on repro.orb).
        from repro.rt.transport import NetsimTransport

        self.transport = NetsimTransport(self)
        #: The Clock protocol instance QoS concerns tell time by; None
        #: until first use, then a SimClock over the world's kernel
        #: unless :meth:`use_time_source` installed something else.
        self._time_source = None
        self.requests_invoked = 0
        self.requests_received = 0
        self.oneway_failures = 0
        #: Callables invoked as fn(direction, wire) for every message
        #: this ORB receives ("in") or answers ("out") — wiretaps for
        #: tests and tracing, without monkey-patching.
        self._wire_observers = []
        from repro.qidl.repository import GLOBAL_REPOSITORY

        self._initial_references: Dict[str, Any] = {
            "QoSTransport": self.qos_transport.pseudo_object(),
            "InterfaceRepository": GLOBAL_REPOSITORY,
        }

    # -- conveniences -----------------------------------------------------

    @property
    def clock(self):
        return self.world.network.clock

    @property
    def network(self):
        return self.world.network

    @property
    def time_source(self):
        """The :class:`repro.rt.clock.Clock` this broker tells time by.

        Defaults to a :class:`~repro.rt.clock.SimClock` over the
        world's event kernel — identical ticks to the old direct
        ``orb.clock`` arithmetic; the real-transport server installs a
        :class:`~repro.rt.clock.MonotonicClock` instead.
        """
        source = self._time_source
        if source is None:
            from repro.rt.clock import SimClock

            source = SimClock(self.clock, getattr(self.world, "kernel", None))
            self._time_source = source
        return source

    def use_time_source(self, clock) -> None:
        """Install a different Clock implementation (the rt server does)."""
        self._time_source = clock

    def install_transport(self, transport) -> None:
        """Swap the transport carrying this broker's outgoing bytes."""
        self.transport = transport

    def marshal_cost(self, nbytes: int) -> float:
        """Simulated seconds to push ``nbytes`` through one ORB hop."""
        return self.HOP_COST + nbytes * self.MARSHAL_COST_PER_BYTE

    # -- references -------------------------------------------------------

    def object_to_string(self, ior: IOR) -> str:
        return ior.to_string()

    def string_to_object(self, text: str) -> IOR:
        return IOR.from_string(text)

    def register_initial_reference(self, name: str, obj: Any) -> None:
        self._initial_references[name] = obj

    def resolve_initial_references(self, name: str) -> Any:
        """Bootstrap: "QoSTransport" (pseudo object), "NameService", ..."""
        try:
            return self._initial_references[name]
        except KeyError:
            raise TRANSIENT(f"no initial reference {name!r} registered") from None

    # -- request scheduling ------------------------------------------------

    def install_scheduler(self, policy: str = "wfq", **config: Any):
        """Install a :class:`~repro.sched.scheduler.RequestScheduler`.

        Sits between request receipt and servant dispatch: admission
        control (token buckets + queue-depth limit), the selected
        scheduling policy ("fifo", "priority" or "wfq"), and deadline
        shedding.  Returns the scheduler so callers can define QoS
        classes.  Idempotent per ORB — installing again replaces the
        scheduler wholesale.
        """
        # Imported here (not at module scope): repro.sched builds on
        # repro.orb, so the dependency must point downward only.
        from repro.sched.scheduler import RequestScheduler

        self.scheduler = RequestScheduler(self, policy=policy, **config)
        # Negotiation endpoints already active on this POA are control
        # traffic: always admitted, or an overloaded server could never
        # be renegotiated out of its overload.
        for key, servant in self.poa._servants.items():
            if getattr(servant, "_repo_id", "") == "IDL:maqs/Negotiation:1.0":
                self.scheduler.mark_control(key)
        return self.scheduler

    # -- client side --------------------------------------------------------

    def invoke(self, request: Request) -> Any:
        """Issue a request; returns its result or raises its exception."""
        self.requests_invoked += 1
        return invocation.dispatch(self, request)

    def invoke_deferred(self, request: Request) -> ReplyFuture:
        """Issue a request asynchronously; returns its reply future.

        The request joins the AMI pipeline of its binding (see
        :mod:`repro.orb.ami`); ``invoke(r)`` and
        ``invoke_deferred(r).result()`` are behaviourally identical.
        """
        self.requests_invoked += 1
        return invocation.dispatch_deferred(self, request)

    def allocate_request_id(self) -> int:
        """Draw a fresh GIOP request id for a broker-originated message.

        Ids come from the same allocator :class:`Request` construction
        (and therefore the AMI pipeline's correlation map) uses, so a
        LocateRequest in flight can never collide with a pipelined
        service request's id.
        """
        return next_request_id()

    def round_trip(
        self,
        dest_host: str,
        wire: bytes,
        depart_time: float,
        reservations: Optional[Dict[int, float]] = None,
    ) -> Tuple[bytes, float]:
        """Carry a message to ``dest_host`` and its reply back.

        Returns ``(reply_wire, finish_time)``; the caller advances the
        clock, which lets group modules model parallel fan-out.
        Transport failures surface as CORBA system exceptions, with
        forward-leg ones marked *unexecuted* (see the transport seam's
        contract in :mod:`repro.rt.transport`).
        """
        return self.transport.round_trip(dest_host, wire, depart_time, reservations)

    def add_wire_observer(self, observer) -> None:
        """Register a wiretap: called as ``observer(direction, wire)``."""
        self._wire_observers.append(observer)

    def remove_wire_observer(self, observer) -> None:
        self._wire_observers.remove(observer)

    def _observe(self, direction: str, wire: bytes) -> None:
        for observer in self._wire_observers:
            observer(direction, wire)

    def locate(self, ior: IOR) -> bool:
        """GIOP LocateRequest: does the target ORB serve this object?

        Returns False for unknown objects; raises COMM_FAILURE/TRANSIENT
        when the host itself is unreachable.
        """
        request_id = self.allocate_request_id()
        wire = giop.encode_locate_request(request_id, ior.profile.object_key)
        depart = self.time_source.now() + self.marshal_cost(len(wire))
        reply_wire, finish = self.round_trip(ior.profile.host, wire, depart)
        self.time_source.wait_until(finish + self.marshal_cost(len(reply_wire)))
        reply_id, status = giop.decode_locate_reply(reply_wire)
        if reply_id != request_id:
            raise MARSHAL(
                f"LocateReply correlates to request {reply_id}, "
                f"expected {request_id}"
            )
        return status == giop.OBJECT_HERE

    def one_way(self, dest_host: str, wire: bytes, depart_time: float) -> None:
        """Fire-and-forget delivery (oneway operations).

        The message is delivered and processed on the server in its own
        time; the caller is never blocked and never learns the outcome.
        Transport failures are swallowed (CORBA oneway is best-effort)
        but counted.
        """
        self.transport.one_way(dest_host, wire, depart_time)

    # -- server side ----------------------------------------------------------

    def handle_incoming(self, wire: bytes, at_time: float) -> Tuple[bytes, float]:
        """Process one incoming message; returns ``(reply_wire, finish_time)``.

        Handles module envelopes, the dual-use command/request split,
        POA delivery, and reply encoding — the server half of Figure 3.
        """
        self.requests_received += 1
        self._observe("in", wire)
        module = None
        envelope_params: Dict[str, Any] = {}
        if is_envelope(wire):
            module_name, envelope_params, payload = decode_envelope(wire)
            module = self.qos_transport.require_module(module_name)
            try:
                wire, cpu = module.unwrap(envelope_params, payload)
            except SystemException as error:
                # Cannot even read the request (e.g. missing session
                # key): answer with an unwrapped system exception.
                reply = giop.encode_reply(0, exception=error)
                return reply, at_time + self.marshal_cost(len(reply))
            at_time += cpu
            module.requests_served += 1
        at_time += self.marshal_cost(len(wire))

        if giop.message_type(wire) == giop.MSG_LOCATE_REQUEST:
            request_id, object_key = giop.decode_locate_request(wire)
            status = (
                giop.OBJECT_HERE
                if object_key in self.poa.active_keys()
                else giop.UNKNOWN_OBJECT
            )
            reply = giop.encode_locate_reply(request_id, status)
            self._observe("out", reply)
            return reply, at_time + self.marshal_cost(len(reply))

        request = giop.decode_request(wire)
        result: Any = None
        exception: Optional[Exception] = None
        reply_contexts: Optional[Dict[str, Any]] = None
        finish = at_time
        try:
            if request.is_command:
                result = self.qos_transport.handle_command(request)
                finish = at_time + self.HOP_COST
            else:
                result, finish, reply_contexts = self.poa.dispatch(request, at_time)
        except Exception as error:  # encoded into the reply, like a real ORB
            exception = error
            finish = at_time
            # Overload rejections carry a retry-after hint; surface it
            # in the reply service contexts so the client-side mediator
            # can observe backpressure without parsing exception text.
            retry_after = getattr(error, "retry_after", None)
            if retry_after is not None:
                reply_contexts = {"maqs.sched.retry_after": retry_after}

        reply_wire = giop.encode_reply(
            request.request_id,
            result,
            exception,
            service_contexts=reply_contexts,
            pools=self.pools,
        )
        finish += self.marshal_cost(len(reply_wire))
        if module is not None:
            params, payload, cpu = module.wrap(reply_wire, dict(envelope_params))
            finish += cpu
            reply_wire = encode_envelope(module.name, params, payload)
        self._observe("out", reply_wire)
        return reply_wire, finish

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ORB({self.host_name!r}, objects={len(self.poa.active_keys())})"
