"""The QoS transport: module administration inside the ORB.

Section 4: "The QoS transport is an entity which administrates all QoS
transport modules. ... A simple reflection mechanism allows the
extension of the ORB at runtime."

Responsibilities, matching Figure 3:

- hold the loaded modules (the GIOP/IIOP module is always present);
- **dynamically load** modules by name from the reflection registry,
  including on first use by an incoming command;
- keep the client-side **assignment** of QoS modules to client/server
  relationships ("If a QoS module is not assigned to a client server
  relationship the GIOP/IIOP module is used");
- interpret **transport commands** and route **module commands**.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.orb.dii import PseudoObject
from repro.orb.exceptions import BAD_OPERATION, NO_RESOURCES
from repro.orb.ior import IOR
from repro.orb.modules import QoSModule, create_module, available_modules
from repro.orb.modules.base import binding_key
from repro.orb.request import Request, TRANSPORT_TARGET


class QoSTransport:
    """Per-ORB administrator of QoS transport modules."""

    def __init__(self, orb: "ORB") -> None:  # noqa: F821 - circular by design
        self.orb = orb
        self._modules: Dict[str, QoSModule] = {}
        self._assignments: Dict[str, str] = {}
        #: Resolved assignment lookups keyed by binding key; invalidated
        #: whenever assignments or the module set change.  Every QoS-aware
        #: invocation consults the assignment, so this turns the per-call
        #: cost into one dict hit per target.
        self._assignment_cache: Dict[str, Optional[QoSModule]] = {}
        self.commands_interpreted = 0
        # The default transport is always available (Figure 3's
        # GIOP/IIOP path).
        self.load_module("iiop")

    # -- module administration (the reflective static interface) ---------

    def load_module(self, name: str) -> QoSModule:
        """Load a module by name; idempotent."""
        if name in self._modules:
            return self._modules[name]
        try:
            module = create_module(name)
        except KeyError as error:
            raise NO_RESOURCES(str(error)) from None
        module.on_load(self)
        self._modules[name] = module
        self._assignment_cache.clear()
        return module

    def unload_module(self, name: str) -> bool:
        """Unload a module; the IIOP default cannot be removed."""
        if name == "iiop":
            raise BAD_OPERATION("the default IIOP module cannot be unloaded")
        module = self._modules.pop(name, None)
        if module is None:
            return False
        module.on_unload()
        self._assignments = {
            binding: assigned
            for binding, assigned in self._assignments.items()
            if assigned != name
        }
        self._assignment_cache.clear()
        return True

    def module(self, name: str) -> Optional[QoSModule]:
        """A loaded module, or None."""
        return self._modules.get(name)

    def require_module(self, name: str) -> QoSModule:
        """A loaded module, loading it reflectively on demand."""
        return self.load_module(name)

    @property
    def iiop_module(self) -> QoSModule:
        return self._modules["iiop"]

    def loaded_modules(self) -> List[str]:
        return sorted(self._modules)

    def loadable_modules(self) -> List[str]:
        return available_modules()

    # -- assignments ------------------------------------------------------

    def assign(self, target: IOR, module_name: str) -> str:
        """Assign a QoS module to the relationship with ``target``."""
        self.load_module(module_name)
        binding = binding_key(target)
        self._assignments[binding] = module_name
        self._assignment_cache.clear()
        return binding

    def unassign(self, target: IOR) -> bool:
        """Drop the assignment for a relationship."""
        self._assignment_cache.clear()
        return self._assignments.pop(binding_key(target), None) is not None

    def assigned_module(self, target: IOR) -> Optional[QoSModule]:
        """The module assigned to the relationship, or None (use IIOP)."""
        binding = target.binding_key()
        cache = self._assignment_cache
        try:
            return cache[binding]
        except KeyError:
            pass
        name = self._assignments.get(binding)
        module = self._modules.get(name) if name is not None else None
        cache[binding] = module
        return module

    def assignments(self) -> Dict[str, str]:
        return dict(self._assignments)

    # -- command interpretation (Figure 3, right-hand branch) ------------

    def handle_command(self, request: Request) -> Any:
        """Interpret a command addressed to this transport or a module."""
        self.commands_interpreted += 1
        target = request.command_target
        if target == TRANSPORT_TARGET:
            return self._transport_command(request)
        # Module command: dynamic loading on request (Section 4).
        module = self.require_module(target)
        return module.handle_command(request)

    def _transport_command(self, request: Request) -> Any:
        operations = {
            "load_module": lambda name: self.load_module(name).name,
            "unload_module": self.unload_module,
            "loaded_modules": self.loaded_modules,
            "loadable_modules": self.loadable_modules,
            "assignments": self.assignments,
            "module_statistics": self._module_statistics,
            # Request-scheduler control plane: policy is a separable
            # concern, swappable at runtime through the same dual-use
            # command channel as module administration.
            "sched_policy": lambda: self._scheduler().policy_name,
            "set_sched_policy": lambda name: self._scheduler().set_policy(name),
            "sched_stats": lambda: self._scheduler().stats_snapshot(),
            "sched_classes": lambda: self._scheduler().class_table(),
            # Control-plane introspection: the adaptive loop is itself
            # administered and observed through the command channel.
            "ctl_stats": lambda: self._control().stats(),
            "ctl_trace": lambda: self._control().trace.as_dicts(),
            "ctl_trace_digest": lambda: self._control().trace.digest(),
        }
        handler = operations.get(request.operation)
        if handler is None:
            raise BAD_OPERATION(
                f"QoS transport has no command {request.operation!r}; "
                f"offers {sorted(operations)}"
            )
        return handler(*request.args)

    def _scheduler(self):
        scheduler = self.orb.scheduler
        if scheduler is None:
            raise NO_RESOURCES(
                f"no request scheduler installed on {self.orb.host_name!r}"
            )
        return scheduler

    def _control(self):
        control = getattr(self.orb.world, "control", None)
        if control is None:
            raise NO_RESOURCES("no control plane attached to this deployment")
        return control

    def _module_statistics(self, name: str) -> Dict[str, int]:
        module = self._modules.get(name)
        if module is None:
            raise NO_RESOURCES(f"module {name!r} is not loaded")
        return module.statistics()

    # -- pseudo object ------------------------------------------------------

    def pseudo_object(self) -> PseudoObject:
        """Local static interface, resolvable via initial references."""
        return PseudoObject(
            "QoSTransport",
            {
                "load_module": lambda name: self.load_module(name).name,
                "unload_module": self.unload_module,
                "loaded_modules": self.loaded_modules,
                "loadable_modules": self.loadable_modules,
                "assign": self.assign,
                "unassign": self.unassign,
                "assignments": self.assignments,
            },
        )
