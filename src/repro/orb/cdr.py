"""CDR-style marshalling.

A Common Data Representation encoder/decoder in the spirit of CORBA
CDR: big-endian primitives with natural alignment, length-prefixed
strings and sequences, and a tagged ``any`` encoding for dynamically
typed values (used by the DII and by the GIOP bodies of this ORB).

The encoding is self-contained — both ends of the simulated wire
really do run through these byte buffers, so marshalling bugs fail
loudly rather than being papered over by passing Python objects
around.

Hot-path layout (this module is the single biggest cost in every
benchmark, so the implementation is tuned):

- the encoder appends into one ``bytearray`` through module-level
  precompiled :class:`struct.Struct` instances — no chunk list, no
  per-call format parsing, one ``bytes()`` copy at :meth:`getvalue`;
- the decoder reads through a ``memoryview``, so nested decodes
  (strings, octet payloads handed to sub-decoders) never copy the
  underlying buffer more than the API forces them to;
- homogeneous sequences of floats/ints batch through one repeated
  ``struct`` format instead of n tagged writes.  The batched bytes are
  **identical** to the tag-per-element encoding (each element keeps
  its tag octet and alignment padding), so the fast path is invisible
  on the wire; any non-conforming element falls back to the generic
  loop.
"""

from __future__ import annotations

import os
import struct
from functools import lru_cache
from typing import Any, Callable, Dict, List, Tuple

from repro.orb import _cdr_fast
from repro.orb.exceptions import MARSHAL
from repro.perf.counters import COUNTERS

#: Whether ``write_any``/``read_any`` route through the flat codec in
#: :mod:`repro.orb._cdr_fast` (optionally mypyc-compiled) instead of
#: the method-per-element implementation below.  Both emit and accept
#: identical bytes; the flag exists for the benchmark's
#: compiled-vs-interpreted comparison and as a debugging escape hatch.
_USE_FAST = os.environ.get("REPRO_CDR_FAST", "1") != "0"

#: "compiled" when the flat codec was built with mypyc, else "python".
FAST_IMPL = (
    "compiled"
    if getattr(_cdr_fast, "__file__", "").endswith((".so", ".pyd"))
    else "python"
)


def use_fast_path(enabled: bool) -> bool:
    """Toggle the flat ``any`` codec at runtime; returns the old value."""
    global _USE_FAST
    previous = _USE_FAST
    _USE_FAST = bool(enabled)
    return previous

# Type tags for the `any` encoding.
TAG_NULL = 0
TAG_BOOLEAN = 1
TAG_OCTET = 2
TAG_SHORT = 3
TAG_USHORT = 4
TAG_LONG = 5
TAG_ULONG = 6
TAG_LONGLONG = 7
TAG_DOUBLE = 8
TAG_STRING = 9
TAG_OCTETS = 10
TAG_SEQUENCE = 11
TAG_MAP = 12
TAG_FLOAT = 13
TAG_BIGNUM = 14

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

# Precompiled primitive formats: struct.Struct skips the per-call
# format-string parse and cache lookup that struct.pack pays.
_S_OCTET = struct.Struct(">B")
_S_SHORT = struct.Struct(">h")
_S_USHORT = struct.Struct(">H")
_S_LONG = struct.Struct(">i")
_S_ULONG = struct.Struct(">I")
_S_LONGLONG = struct.Struct(">q")
_S_FLOAT = struct.Struct(">f")
_S_DOUBLE = struct.Struct(">d")

#: Padding runs indexed by length (alignment never needs more than 7).
_PADDING = tuple(b"\x00" * n for n in range(8))

#: Minimum sequence length for the homogeneous batch fast path; below
#: this the type scan costs more than it saves.
_BATCH_MIN = 4

#: Batch chunk size — bounds the repeated-format cache (see below).
_BATCH_CHUNK = 512


@lru_cache(maxsize=None)
def _batch_struct(unit: str, count: int) -> struct.Struct:
    """A Struct for ``count`` repetitions of one tagged-element group.

    ``unit`` is e.g. ``"B7xd"``: tag octet, 7 pad bytes, the value —
    exactly the bytes the generic path emits for each element of an
    8-aligned homogeneous run.  The key space is bounded because
    callers chunk at :data:`_BATCH_CHUNK` repetitions.
    """
    return struct.Struct(">" + unit * count)


class CDREncoder:
    """Write values into a CDR byte buffer."""

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    # -- low-level ------------------------------------------------------

    def reset(self) -> "CDREncoder":
        """Clear the buffer for reuse, keeping its allocated capacity.

        The per-ORB wire pools recycle encoders through this instead of
        allocating a fresh ``bytearray`` per message.
        """
        del self._buf[:]
        return self

    def _align(self, boundary: int) -> None:
        buf = self._buf
        padding = -len(buf) % boundary
        if padding:
            buf += _PADDING[padding]

    def write_raw(self, data: bytes) -> None:
        """Append pre-encoded bytes verbatim (no alignment).

        Callers own the alignment invariant: the bytes must have been
        produced at the same buffer offset modulo 8 (GIOP's constant
        headers and the service-context cache guarantee this).
        """
        self._buf += data

    def mark(self) -> int:
        """Current buffer length; pairs with :meth:`bytes_since`."""
        return len(self._buf)

    def bytes_since(self, mark: int) -> bytes:
        """Copy of everything appended since ``mark`` was taken."""
        return bytes(self._buf[mark:])

    # -- primitives -----------------------------------------------------

    def write_octet(self, value: int) -> None:
        try:
            self._buf += _S_OCTET.pack(value)
        except (struct.error, TypeError) as error:
            raise MARSHAL(f"cannot pack {value!r} as '>B': {error}") from None

    def write_boolean(self, value: bool) -> None:
        self._buf.append(1 if value else 0)

    def write_short(self, value: int) -> None:
        buf = self._buf
        padding = -len(buf) % 2
        if padding:
            buf += b"\x00"
        try:
            buf += _S_SHORT.pack(value)
        except (struct.error, TypeError) as error:
            raise MARSHAL(f"cannot pack {value!r} as '>h': {error}") from None

    def write_ushort(self, value: int) -> None:
        buf = self._buf
        padding = -len(buf) % 2
        if padding:
            buf += b"\x00"
        try:
            buf += _S_USHORT.pack(value)
        except (struct.error, TypeError) as error:
            raise MARSHAL(f"cannot pack {value!r} as '>H': {error}") from None

    def write_long(self, value: int) -> None:
        buf = self._buf
        padding = -len(buf) % 4
        if padding:
            buf += _PADDING[padding]
        try:
            buf += _S_LONG.pack(value)
        except (struct.error, TypeError) as error:
            raise MARSHAL(f"cannot pack {value!r} as '>i': {error}") from None

    def write_ulong(self, value: int) -> None:
        buf = self._buf
        padding = -len(buf) % 4
        if padding:
            buf += _PADDING[padding]
        try:
            buf += _S_ULONG.pack(value)
        except (struct.error, TypeError) as error:
            raise MARSHAL(f"cannot pack {value!r} as '>I': {error}") from None

    def write_longlong(self, value: int) -> None:
        buf = self._buf
        padding = -len(buf) % 8
        if padding:
            buf += _PADDING[padding]
        try:
            buf += _S_LONGLONG.pack(value)
        except (struct.error, TypeError) as error:
            raise MARSHAL(f"cannot pack {value!r} as '>q': {error}") from None

    def write_float(self, value: float) -> None:
        buf = self._buf
        padding = -len(buf) % 4
        if padding:
            buf += _PADDING[padding]
        try:
            buf += _S_FLOAT.pack(value)
        except (struct.error, TypeError) as error:
            raise MARSHAL(f"cannot pack {value!r} as '>f': {error}") from None

    def write_double(self, value: float) -> None:
        buf = self._buf
        padding = -len(buf) % 8
        if padding:
            buf += _PADDING[padding]
        try:
            buf += _S_DOUBLE.pack(value)
        except (struct.error, TypeError) as error:
            raise MARSHAL(f"cannot pack {value!r} as '>d': {error}") from None

    def write_string(self, value: str) -> None:
        if not isinstance(value, str):
            raise MARSHAL(f"expected str, got {type(value).__name__}")
        data = value.encode("utf-8")
        buf = self._buf
        padding = -len(buf) % 4
        if padding:
            buf += _PADDING[padding]
        buf += _S_ULONG.pack(len(data))
        buf += data

    def write_octets(self, value: bytes) -> None:
        if not isinstance(value, (bytes, bytearray)):
            raise MARSHAL(f"expected bytes, got {type(value).__name__}")
        buf = self._buf
        padding = -len(buf) % 4
        if padding:
            buf += _PADDING[padding]
        buf += _S_ULONG.pack(len(value))
        buf += value

    # -- any --------------------------------------------------------------

    def write_any(self, value: Any) -> None:
        """Encode a dynamically typed value with a leading type tag.

        Python natives map onto the widest safe IDL type: ``int`` →
        long long, ``float`` → double.  Lists/tuples become sequences,
        dicts (string-keyed) become maps.
        """
        if _USE_FAST:
            _cdr_fast.write_any(self._buf, value, _BATCH_MIN)
            return
        writer = _ANY_WRITERS.get(type(value))
        if writer is not None:
            writer(self, value)
        else:
            self._write_any_slow(value)

    # Exact-type handlers (dispatched from _ANY_WRITERS).  Subclasses of
    # the native types miss the table and take _write_any_slow, which
    # replays the original isinstance chain.

    def _write_any_none(self, value: None) -> None:
        self._buf.append(TAG_NULL)

    def _write_any_bool(self, value: bool) -> None:
        self._buf += b"\x01\x01" if value else b"\x01\x00"

    def _write_any_int(self, value: int) -> None:
        if _INT64_MIN <= value <= _INT64_MAX:
            self._buf.append(TAG_LONGLONG)
            self.write_longlong(value)
        else:
            self._write_any_bignum(value)

    def _write_any_bignum(self, value: int) -> None:
        # Arbitrary-precision integers (e.g. Diffie-Hellman public
        # values) travel as sign + magnitude octets.
        self._buf.append(TAG_BIGNUM)
        self.write_boolean(value < 0)
        magnitude = abs(value)
        self.write_octets(
            magnitude.to_bytes((magnitude.bit_length() + 7) // 8, "big")
        )

    def _write_any_float(self, value: float) -> None:
        self._buf.append(TAG_DOUBLE)
        self.write_double(value)

    def _write_any_str(self, value: str) -> None:
        self._buf.append(TAG_STRING)
        data = value.encode("utf-8")
        buf = self._buf
        padding = -len(buf) % 4
        if padding:
            buf += _PADDING[padding]
        buf += _S_ULONG.pack(len(data))
        buf += data

    def _write_any_octets(self, value: bytes) -> None:
        self._buf.append(TAG_OCTETS)
        self.write_octets(value)

    def _write_any_sequence(self, value: Any) -> None:
        buf = self._buf
        buf.append(TAG_SEQUENCE)
        padding = -len(buf) % 4
        if padding:
            buf += _PADDING[padding]
        length = len(value)
        buf += _S_ULONG.pack(length)
        if length >= _BATCH_MIN:
            first_type = type(value[0])
            if first_type is float:
                for item in value:
                    if type(item) is not float:
                        break
                else:
                    self._write_batch(value, _S_DOUBLE, "B7xd", TAG_DOUBLE)
                    return
            elif first_type is int:
                for item in value:
                    if type(item) is not int or not (
                        _INT64_MIN <= item <= _INT64_MAX
                    ):
                        break
                else:
                    self._write_batch(value, _S_LONGLONG, "B7xq", TAG_LONGLONG)
                    return
        for item in value:
            self.write_any(item)

    def _write_batch(
        self, value: Any, first_struct: struct.Struct, unit: str, tag: int
    ) -> None:
        """Emit a homogeneous 8-byte-element run, byte-identical to the
        generic loop: the first element settles 8-alignment, the rest
        are fixed 16-byte (tag + 7 pad + value) groups packed in bulk.
        """
        buf = self._buf
        buf.append(tag)
        padding = -len(buf) % 8
        if padding:
            buf += _PADDING[padding]
        buf += first_struct.pack(value[0])
        index = 1
        length = len(value)
        while index < length:
            count = min(length - index, _BATCH_CHUNK)
            args: List[Any] = []
            for item in value[index : index + count]:
                args.append(tag)
                args.append(item)
            buf += _batch_struct(unit, count).pack(*args)
            index += count
        COUNTERS.cdr_batch_encodes += 1

    def _write_any_map(self, value: Dict[str, Any]) -> None:
        buf = self._buf
        buf.append(TAG_MAP)
        padding = -len(buf) % 4
        if padding:
            buf += _PADDING[padding]
        buf += _S_ULONG.pack(len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise MARSHAL(f"map keys must be str, got {type(key).__name__}")
            # write_string inlined: map keys are the hottest strings on
            # the wire (every payload dict, every service context).
            data = key.encode("utf-8")
            padding = -len(buf) % 4
            if padding:
                buf += _PADDING[padding]
            buf += _S_ULONG.pack(len(data))
            buf += data
            self.write_any(item)

    def _write_any_slow(self, value: Any) -> None:
        """The original isinstance chain, for subclasses of the natives."""
        if value is None:
            self._buf.append(TAG_NULL)
        elif isinstance(value, bool):
            self._write_any_bool(value)
        elif isinstance(value, int):
            self._write_any_int(value)
        elif isinstance(value, float):
            self._write_any_float(value)
        elif isinstance(value, str):
            self._write_any_str(value)
        elif isinstance(value, (bytes, bytearray)):
            self._write_any_octets(value)
        elif isinstance(value, (list, tuple)):
            self._write_any_sequence(value)
        elif isinstance(value, dict):
            self._write_any_map(value)
        else:
            raise MARSHAL(f"cannot marshal value of type {type(value).__name__}")

    def getvalue(self) -> bytes:
        """The encoded buffer."""
        return bytes(self._buf)

    def __len__(self) -> int:
        return len(self._buf)


#: Exact-type dispatch for write_any (bool before int matters only in
#: the slow path — dict dispatch on type() cannot confuse the two).
_ANY_WRITERS: Dict[type, Callable[["CDREncoder", Any], None]] = {
    type(None): CDREncoder._write_any_none,
    bool: CDREncoder._write_any_bool,
    int: CDREncoder._write_any_int,
    float: CDREncoder._write_any_float,
    str: CDREncoder._write_any_str,
    bytes: CDREncoder._write_any_octets,
    bytearray: CDREncoder._write_any_octets,
    list: CDREncoder._write_any_sequence,
    tuple: CDREncoder._write_any_sequence,
    dict: CDREncoder._write_any_map,
}


class CDRDecoder:
    """Read values back out of a CDR byte buffer.

    Accepts ``bytes``, ``bytearray`` or ``memoryview``; scanning is
    zero-copy — only :meth:`read_octets` materialises new ``bytes``
    (its callers re-encode or compare the payload, so a real object is
    the safe return type).
    """

    __slots__ = ("_mv", "_len", "_offset")

    def __init__(self, data: bytes) -> None:
        self._mv = data if isinstance(data, memoryview) else memoryview(data)
        self._len = len(self._mv)
        self._offset = 0

    # -- low-level ------------------------------------------------------

    def _align(self, boundary: int) -> None:
        self._offset += -self._offset % boundary

    def _underrun(self, size: int, offset: int) -> MARSHAL:
        return MARSHAL(
            f"buffer underrun: need {size} bytes at {offset}, "
            f"have {self._len - offset}"
        )

    def _unpack(self, compiled: struct.Struct, alignment: int) -> Any:
        offset = self._offset
        offset += -offset % alignment
        end = offset + compiled.size
        if end > self._len:
            self._offset = offset
            raise self._underrun(compiled.size, offset)
        self._offset = end
        return compiled.unpack_from(self._mv, offset)[0]

    def read_raw(self, size: int) -> bytes:
        """The next ``size`` bytes verbatim (no alignment)."""
        offset = self._offset
        end = offset + size
        if end > self._len:
            raise self._underrun(size, offset)
        self._offset = end
        return bytes(self._mv[offset:end])

    # -- primitives -----------------------------------------------------

    def read_octet(self) -> int:
        offset = self._offset
        if offset >= self._len:
            raise self._underrun(1, offset)
        self._offset = offset + 1
        return self._mv[offset]

    def read_boolean(self) -> bool:
        return bool(self.read_octet())

    def read_short(self) -> int:
        return self._unpack(_S_SHORT, 2)

    def read_ushort(self) -> int:
        return self._unpack(_S_USHORT, 2)

    def read_long(self) -> int:
        return self._unpack(_S_LONG, 4)

    def read_ulong(self) -> int:
        # Inlined _unpack: sequence counts and length prefixes make this
        # the most-called aligned read on the wire path.
        offset = self._offset
        offset += -offset & 3
        end = offset + 4
        if end > self._len:
            self._offset = offset
            raise self._underrun(4, offset)
        self._offset = end
        return _S_ULONG.unpack_from(self._mv, offset)[0]

    def read_longlong(self) -> int:
        return self._unpack(_S_LONGLONG, 8)

    def read_float(self) -> float:
        return self._unpack(_S_FLOAT, 4)

    def read_double(self) -> float:
        return self._unpack(_S_DOUBLE, 8)

    def read_string(self) -> str:
        mv = self._mv
        size = self._len
        offset = self._offset
        offset += -offset & 3
        end = offset + 4
        if end > size:
            self._offset = offset
            raise self._underrun(4, offset)
        length = _S_ULONG.unpack_from(mv, offset)[0]
        offset = end
        end = offset + length
        if end > size:
            self._offset = offset
            raise MARSHAL(f"string of length {length} overruns buffer")
        try:
            value = str(mv[offset:end], "utf-8")
        except UnicodeDecodeError as error:
            self._offset = offset
            raise MARSHAL(f"invalid UTF-8 string on the wire: {error}") from None
        self._offset = end
        return value

    def read_octets(self) -> bytes:
        mv = self._mv
        size = self._len
        offset = self._offset
        offset += -offset & 3
        end = offset + 4
        if end > size:
            self._offset = offset
            raise self._underrun(4, offset)
        length = _S_ULONG.unpack_from(mv, offset)[0]
        offset = end
        end = offset + length
        if end > size:
            self._offset = offset
            raise MARSHAL(f"octet sequence of length {length} overruns buffer")
        self._offset = end
        return bytes(mv[offset:end])

    # -- any --------------------------------------------------------------

    def read_any(self) -> Any:
        if _USE_FAST:
            value, self._offset = _cdr_fast.read_any(
                self._mv, self._offset, self._len, _BATCH_MIN
            )
            return value
        offset = self._offset
        if offset >= self._len:
            raise self._underrun(1, offset)
        self._offset = offset + 1
        tag = self._mv[offset]
        reader = _ANY_READERS.get(tag)
        if reader is None:
            raise MARSHAL(f"unknown any tag: {tag}")
        return reader(self)

    def _read_any_null(self) -> None:
        return None

    def _read_any_bignum(self) -> int:
        negative = self.read_boolean()
        magnitude = int.from_bytes(self.read_octets(), "big")
        return -magnitude if negative else magnitude

    def _read_any_sequence(self) -> List[Any]:
        length = self.read_ulong()
        if length >= _BATCH_MIN and self._offset < self._len:
            first_tag = self._mv[self._offset]
            if first_tag == TAG_DOUBLE:
                result = self._read_batch(length, _S_DOUBLE, "B7xd", TAG_DOUBLE)
                if result is not None:
                    return result
            elif first_tag == TAG_LONGLONG:
                result = self._read_batch(length, _S_LONGLONG, "B7xq", TAG_LONGLONG)
                if result is not None:
                    return result
        return [self.read_any() for _ in range(length)]

    def _read_batch(
        self, length: int, first_struct: struct.Struct, unit: str, tag: int
    ) -> Any:
        """Bulk-decode a homogeneous run; None means fall back (the run
        turned out to be heterogeneous and the offset is rewound)."""
        start = self._offset
        self._offset = start + 1  # consume the peeked tag octet
        first = self._unpack(first_struct, 8)
        out = [first]
        offset = self._offset
        remaining = length - 1
        mv = self._mv
        while remaining:
            count = min(remaining, _BATCH_CHUNK)
            compiled = _batch_struct(unit, count)
            if offset + compiled.size > self._len:
                self._offset = start
                return None  # underrun or trailing mixed types: re-scan
            flat = compiled.unpack_from(mv, offset)
            if flat[0::2].count(tag) != count:
                self._offset = start
                return None  # mixed element types: generic loop decodes
            out.extend(flat[1::2])
            offset += compiled.size
            remaining -= count
        self._offset = offset
        COUNTERS.cdr_batch_decodes += 1
        return out

    def _read_any_map(self) -> Dict[str, Any]:
        length = self.read_ulong()
        mv = self._mv
        size = self._len
        result: Dict[str, Any] = {}
        for _ in range(length):
            # read_string inlined: map keys are the hottest strings on
            # the wire (every payload dict, every service context).
            offset = self._offset
            offset += -offset & 3
            end = offset + 4
            if end > size:
                self._offset = offset
                raise self._underrun(4, offset)
            key_length = _S_ULONG.unpack_from(mv, offset)[0]
            offset = end
            end = offset + key_length
            if end > size:
                self._offset = offset
                raise MARSHAL(f"string of length {key_length} overruns buffer")
            try:
                key = str(mv[offset:end], "utf-8")
            except UnicodeDecodeError as error:
                self._offset = offset
                raise MARSHAL(
                    f"invalid UTF-8 string on the wire: {error}"
                ) from None
            self._offset = end
            result[key] = self.read_any()
        return result

    @property
    def remaining(self) -> int:
        """Bytes not yet consumed."""
        return self._len - self._offset

    def at_end(self) -> bool:
        return self._offset >= self._len


#: Tag dispatch for read_any.
_ANY_READERS: Dict[int, Callable[["CDRDecoder"], Any]] = {
    TAG_NULL: CDRDecoder._read_any_null,
    TAG_BOOLEAN: CDRDecoder.read_boolean,
    TAG_OCTET: CDRDecoder.read_octet,
    TAG_SHORT: CDRDecoder.read_short,
    TAG_USHORT: CDRDecoder.read_ushort,
    TAG_LONG: CDRDecoder.read_long,
    TAG_ULONG: CDRDecoder.read_ulong,
    TAG_LONGLONG: CDRDecoder.read_longlong,
    TAG_FLOAT: CDRDecoder.read_float,
    TAG_DOUBLE: CDRDecoder.read_double,
    TAG_STRING: CDRDecoder.read_string,
    TAG_OCTETS: CDRDecoder.read_octets,
    TAG_BIGNUM: CDRDecoder._read_any_bignum,
    TAG_SEQUENCE: CDRDecoder._read_any_sequence,
    TAG_MAP: CDRDecoder._read_any_map,
}


def encode_values(*values: Any) -> bytes:
    """Encode a tuple of values as a counted sequence of anys."""
    encoder = CDREncoder()
    encoder.write_ulong(len(values))
    for value in values:
        encoder.write_any(value)
    return encoder.getvalue()


def decode_values(data: bytes) -> Tuple[Any, ...]:
    """Inverse of :func:`encode_values`."""
    decoder = CDRDecoder(data)
    count = decoder.read_ulong()
    return tuple(decoder.read_any() for _ in range(count))
