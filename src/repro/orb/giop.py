"""GIOP-style message protocol.

Requests and replies really are flattened to bytes and parsed back on
the receiving ORB; the byte counts feed the network model, so protocol
overhead (headers, service contexts) is visible in the transfer times
just as it would be on a real wire.

Hot-path machinery (the encodings themselves are unchanged):

- the constant 7-byte header (magic + version + message type) is
  precomputed once per message type and appended verbatim;
- service contexts — usually empty or identical call after call — are
  encoded once per (alignment, content) and replayed from a bounded
  LRU instead of being re-encoded per message;
- when :data:`repro.perf.COUNTERS` is enabled, request/reply encode
  and decode record nanoseconds and byte counts.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional, Tuple

from repro.orb.cdr import CDRDecoder, CDREncoder
from repro.orb.exceptions import (
    MARSHAL,
    SystemException,
    UserException,
    system_exception_from_wire,
    user_exception_from_wire,
)
from repro.orb.ior import IOR
from repro.orb.request import Request
from repro.perf.counters import COUNTERS
from repro.perf.lru import LRUCache

MAGIC = b"GIOP"
VERSION = (1, 2)

MSG_REQUEST = 0
MSG_REPLY = 1
MSG_LOCATE_REQUEST = 2
MSG_LOCATE_REPLY = 3

# Locate status values.
UNKNOWN_OBJECT = 0
OBJECT_HERE = 1

# Reply status values.
NO_EXCEPTION = 0
USER_EXCEPTION = 1
SYSTEM_EXCEPTION = 2

#: The constant wire header per message type: GIOP magic, version
#: bytes, message type — seven octets, no alignment, so one literal.
_HEADER_WIRE = {
    message_type: MAGIC + bytes((VERSION[0], VERSION[1], message_type))
    for message_type in (MSG_REQUEST, MSG_REPLY, MSG_LOCATE_REQUEST, MSG_LOCATE_REPLY)
}
_HEADER_SIZE = 7


def _write_header(encoder: CDREncoder, message_type: int) -> None:
    encoder.write_raw(_HEADER_WIRE[message_type])


def _read_header(decoder: CDRDecoder) -> int:
    header = decoder.read_raw(_HEADER_SIZE)
    if header[:4] != MAGIC:
        raise MARSHAL(f"bad GIOP magic: {header[:4]!r}")
    major, minor = header[4], header[5]
    if (major, minor) != VERSION:
        raise MARSHAL(f"unsupported GIOP version {major}.{minor}")
    return header[6]


# -- service-context cache ---------------------------------------------

#: Encoded service-context maps keyed by (buffer offset mod 8, frozen
#: content).  The alignment is part of the key because the `any`
#: encoding pads relative to the absolute offset.
_context_cache = LRUCache(maxsize=256)

_UNFREEZABLE = object()

# struct used to key floats by bit pattern: -0.0 == 0.0 and NaN != NaN
# would otherwise corrupt or defeat the cache.
from repro.orb.cdr import _S_DOUBLE  # noqa: E402  (private by design)


def _freeze(value: Any) -> Any:
    """A hashable, type-tagged key for a context value, or _UNFREEZABLE.

    Type tags keep 1, 1.0 and True — equal and same-hash in Python but
    encoded differently — from colliding in the cache.
    """
    kind = type(value)
    if kind is str:
        return value
    if kind is bool:
        return ("b", value)
    if kind is int:
        return ("i", value)
    if kind is float:
        return ("f", _S_DOUBLE.pack(value))
    if value is None:
        return ("n",)
    if kind is bytes:
        return ("y", value)
    if kind is dict:
        items = []
        for key, item in value.items():
            if type(key) is not str:
                return _UNFREEZABLE
            frozen = _freeze(item)
            if frozen is _UNFREEZABLE:
                return _UNFREEZABLE
            items.append((key, frozen))
        return ("d", tuple(items))
    if kind is list or kind is tuple:
        items = []
        for item in value:
            frozen = _freeze(item)
            if frozen is _UNFREEZABLE:
                return _UNFREEZABLE
            items.append(frozen)
        return ("l", tuple(items))
    return _UNFREEZABLE


def _write_contexts(encoder: CDREncoder, contexts: Dict[str, Any]) -> None:
    """write_any(contexts), replayed from cache when seen before."""
    frozen = _freeze(contexts)
    if frozen is _UNFREEZABLE:
        encoder.write_any(contexts)
        return
    key = (len(encoder) % 8, frozen)
    cached = _context_cache.get(key)
    if cached is not None:
        encoder.write_raw(cached)
        COUNTERS.ctx_cache_hits += 1
        return
    mark = encoder.mark()
    encoder.write_any(contexts)
    _context_cache.put(key, encoder.bytes_since(mark))
    COUNTERS.ctx_cache_misses += 1


def clear_caches() -> None:
    """Drop the service-context cache (tests and memory hygiene)."""
    _context_cache.clear()


# -- requests -----------------------------------------------------------


def encode_request(request: Request, pools: Optional[Any] = None) -> bytes:
    """Flatten a :class:`Request` (including its dual-use tag) to bytes.

    ``pools`` is an optional :class:`~repro.orb.pool.WirePools`; when
    given, the encoder buffer is recycled through its free list.
    """
    counters = COUNTERS
    start = time.perf_counter_ns() if counters.enabled else 0
    encoder = pools.acquire_encoder() if pools is not None else CDREncoder()
    encoder.write_raw(_HEADER_WIRE[MSG_REQUEST])
    encoder.write_ulong(request.request_id)
    encoder.write_octets(request.target.encode())
    encoder.write_string(request.operation)
    encoder.write_string(request.kind)
    encoder.write_string(request.command_target or "")
    encoder.write_boolean(request.response_expected)
    _write_contexts(encoder, request.service_contexts)
    args = request.args
    encoder.write_ulong(len(args))
    for arg in args:
        encoder.write_any(arg)
    wire = encoder.getvalue()
    if pools is not None:
        pools.release_encoder(encoder)
    if counters.enabled:
        counters.encode_calls += 1
        counters.encode_ns += time.perf_counter_ns() - start
        counters.encode_bytes += len(wire)
    return wire


def decode_request(data: bytes) -> Request:
    """Parse bytes back into a :class:`Request`.

    The decoded request keeps the sender's request id so replies can be
    correlated.
    """
    counters = COUNTERS
    start = time.perf_counter_ns() if counters.enabled else 0
    decoder = CDRDecoder(data)
    if _read_header(decoder) != MSG_REQUEST:
        raise MARSHAL("expected a GIOP Request message")
    request_id = decoder.read_ulong()
    target = IOR.decode(decoder.read_octets())
    operation = decoder.read_string()
    kind = decoder.read_string()
    command_target = decoder.read_string() or None
    response_expected = decoder.read_boolean()
    contexts = decoder.read_any()
    if not isinstance(contexts, dict):
        raise MARSHAL("service contexts must decode to a map")
    count = decoder.read_ulong()
    args = tuple([decoder.read_any() for _ in range(count)])
    request = Request(
        target,
        operation,
        args,
        kind=kind,
        command_target=command_target,
        service_contexts=contexts,
        response_expected=response_expected,
        request_id=request_id,
    )
    if counters.enabled:
        counters.decode_calls += 1
        counters.decode_ns += time.perf_counter_ns() - start
        counters.decode_bytes += len(data)
    return request


def encode_locate_request(request_id: int, object_key: str) -> bytes:
    """A GIOP LocateRequest: does the peer serve this object?"""
    encoder = CDREncoder()
    encoder.write_raw(_HEADER_WIRE[MSG_LOCATE_REQUEST])
    encoder.write_ulong(request_id)
    encoder.write_string(object_key)
    return encoder.getvalue()


def decode_locate_request(data: bytes) -> Tuple[int, str]:
    decoder = CDRDecoder(data)
    if _read_header(decoder) != MSG_LOCATE_REQUEST:
        raise MARSHAL("expected a GIOP LocateRequest message")
    return decoder.read_ulong(), decoder.read_string()


def encode_locate_reply(request_id: int, status: int) -> bytes:
    encoder = CDREncoder()
    encoder.write_raw(_HEADER_WIRE[MSG_LOCATE_REPLY])
    encoder.write_ulong(request_id)
    encoder.write_octet(status)
    return encoder.getvalue()


def decode_locate_reply(data: bytes) -> Tuple[int, int]:
    decoder = CDRDecoder(data)
    if _read_header(decoder) != MSG_LOCATE_REPLY:
        raise MARSHAL("expected a GIOP LocateReply message")
    return decoder.read_ulong(), decoder.read_octet()


def message_type(data: bytes) -> int:
    """Peek at a GIOP message's type without consuming it."""
    if len(data) >= _HEADER_SIZE and data[:4] == MAGIC:
        if (data[4], data[5]) == VERSION:
            return data[6]
    return _read_header(CDRDecoder(data))  # fall through for exact errors


def encode_reply(
    request_id: int,
    result: Any = None,
    exception: Optional[Exception] = None,
    service_contexts: Optional[Dict[str, Any]] = None,
    pools: Optional[Any] = None,
) -> bytes:
    """Flatten a reply: a result, a user exception or a system exception."""
    counters = COUNTERS
    start = time.perf_counter_ns() if counters.enabled else 0
    encoder = pools.acquire_encoder() if pools is not None else CDREncoder()
    encoder.write_raw(_HEADER_WIRE[MSG_REPLY])
    encoder.write_ulong(request_id)
    _write_contexts(encoder, service_contexts or {})
    if exception is None:
        encoder.write_octet(NO_EXCEPTION)
        encoder.write_any(result)
    elif isinstance(exception, UserException):
        encoder.write_octet(USER_EXCEPTION)
        encoder.write_string(exception.repo_id)
        encoder.write_string(exception.message)
        encoder.write_any(exception.members)
    elif isinstance(exception, SystemException):
        encoder.write_octet(SYSTEM_EXCEPTION)
        encoder.write_string(exception.repo_id)
        encoder.write_string(exception.message)
        encoder.write_long(exception.minor)
    else:
        # Non-CORBA exceptions cross the wire as a generic system exception;
        # a real ORB would do the same rather than leak server internals.
        encoder.write_octet(SYSTEM_EXCEPTION)
        encoder.write_string(SystemException.repo_id)
        encoder.write_string(f"{type(exception).__name__}: {exception}")
        encoder.write_long(0)
    wire = encoder.getvalue()
    if pools is not None:
        pools.release_encoder(encoder)
    if counters.enabled:
        counters.encode_calls += 1
        counters.encode_ns += time.perf_counter_ns() - start
        counters.encode_bytes += len(wire)
    return wire


class Reply:
    """A decoded reply."""

    __slots__ = ("request_id", "service_contexts", "result", "exception")

    def __init__(
        self,
        request_id: int,
        service_contexts: Dict[str, Any],
        result: Any,
        exception: Optional[Exception],
    ) -> None:
        self.request_id = request_id
        self.service_contexts = service_contexts
        self.result = result
        self.exception = exception

    def value(self) -> Any:
        """Return the result, raising the carried exception if any."""
        if self.exception is not None:
            raise self.exception
        return self.result


def decode_reply(data: bytes) -> Reply:
    """Parse a reply message."""
    counters = COUNTERS
    start = time.perf_counter_ns() if counters.enabled else 0
    decoder = CDRDecoder(data)
    if _read_header(decoder) != MSG_REPLY:
        raise MARSHAL("expected a GIOP Reply message")
    request_id = decoder.read_ulong()
    contexts = decoder.read_any()
    if not isinstance(contexts, dict):
        raise MARSHAL("service contexts must decode to a map")
    status = decoder.read_octet()
    if status == NO_EXCEPTION:
        reply = Reply(request_id, contexts, decoder.read_any(), None)
    elif status == USER_EXCEPTION:
        repo_id = decoder.read_string()
        message = decoder.read_string()
        members = decoder.read_any()
        exception = user_exception_from_wire(repo_id, message, members)
        reply = Reply(request_id, contexts, None, exception)
    elif status == SYSTEM_EXCEPTION:
        repo_id = decoder.read_string()
        message = decoder.read_string()
        minor = decoder.read_long()
        exception = system_exception_from_wire(repo_id, message, minor)
        reply = Reply(request_id, contexts, None, exception)
    else:
        raise MARSHAL(f"unknown reply status: {status}")
    if counters.enabled:
        counters.decode_calls += 1
        counters.decode_ns += time.perf_counter_ns() - start
        counters.decode_bytes += len(data)
    return reply
