"""GIOP-style message protocol.

Requests and replies really are flattened to bytes and parsed back on
the receiving ORB; the byte counts feed the network model, so protocol
overhead (headers, service contexts) is visible in the transfer times
just as it would be on a real wire.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.orb.cdr import CDRDecoder, CDREncoder
from repro.orb.exceptions import (
    MARSHAL,
    SystemException,
    UserException,
    system_exception_from_wire,
    user_exception_from_wire,
)
from repro.orb.ior import IOR
from repro.orb.request import Request

MAGIC = b"GIOP"
VERSION = (1, 2)

MSG_REQUEST = 0
MSG_REPLY = 1
MSG_LOCATE_REQUEST = 2
MSG_LOCATE_REPLY = 3

# Locate status values.
UNKNOWN_OBJECT = 0
OBJECT_HERE = 1

# Reply status values.
NO_EXCEPTION = 0
USER_EXCEPTION = 1
SYSTEM_EXCEPTION = 2


def _write_header(encoder: CDREncoder, message_type: int) -> None:
    for byte in MAGIC:
        encoder.write_octet(byte)
    encoder.write_octet(VERSION[0])
    encoder.write_octet(VERSION[1])
    encoder.write_octet(message_type)


def _read_header(decoder: CDRDecoder) -> int:
    magic = bytes(decoder.read_octet() for _ in range(4))
    if magic != MAGIC:
        raise MARSHAL(f"bad GIOP magic: {magic!r}")
    major, minor = decoder.read_octet(), decoder.read_octet()
    if (major, minor) != VERSION:
        raise MARSHAL(f"unsupported GIOP version {major}.{minor}")
    return decoder.read_octet()


def encode_request(request: Request) -> bytes:
    """Flatten a :class:`Request` (including its dual-use tag) to bytes."""
    encoder = CDREncoder()
    _write_header(encoder, MSG_REQUEST)
    encoder.write_ulong(request.request_id)
    encoder.write_octets(request.target.encode())
    encoder.write_string(request.operation)
    encoder.write_string(request.kind)
    encoder.write_string(request.command_target or "")
    encoder.write_boolean(request.response_expected)
    encoder.write_any(request.service_contexts)
    encoder.write_ulong(len(request.args))
    for arg in request.args:
        encoder.write_any(arg)
    return encoder.getvalue()


def decode_request(data: bytes) -> Request:
    """Parse bytes back into a :class:`Request`.

    The decoded request keeps the sender's request id so replies can be
    correlated.
    """
    decoder = CDRDecoder(data)
    if _read_header(decoder) != MSG_REQUEST:
        raise MARSHAL("expected a GIOP Request message")
    request_id = decoder.read_ulong()
    target = IOR.decode(decoder.read_octets())
    operation = decoder.read_string()
    kind = decoder.read_string()
    command_target = decoder.read_string() or None
    response_expected = decoder.read_boolean()
    contexts = decoder.read_any()
    if not isinstance(contexts, dict):
        raise MARSHAL("service contexts must decode to a map")
    count = decoder.read_ulong()
    args = tuple(decoder.read_any() for _ in range(count))
    request = Request(
        target,
        operation,
        args,
        kind=kind,
        command_target=command_target,
        service_contexts=contexts,
        response_expected=response_expected,
    )
    request.request_id = request_id
    return request


def encode_locate_request(request_id: int, object_key: str) -> bytes:
    """A GIOP LocateRequest: does the peer serve this object?"""
    encoder = CDREncoder()
    _write_header(encoder, MSG_LOCATE_REQUEST)
    encoder.write_ulong(request_id)
    encoder.write_string(object_key)
    return encoder.getvalue()


def decode_locate_request(data: bytes) -> Tuple[int, str]:
    decoder = CDRDecoder(data)
    if _read_header(decoder) != MSG_LOCATE_REQUEST:
        raise MARSHAL("expected a GIOP LocateRequest message")
    return decoder.read_ulong(), decoder.read_string()


def encode_locate_reply(request_id: int, status: int) -> bytes:
    encoder = CDREncoder()
    _write_header(encoder, MSG_LOCATE_REPLY)
    encoder.write_ulong(request_id)
    encoder.write_octet(status)
    return encoder.getvalue()


def decode_locate_reply(data: bytes) -> Tuple[int, int]:
    decoder = CDRDecoder(data)
    if _read_header(decoder) != MSG_LOCATE_REPLY:
        raise MARSHAL("expected a GIOP LocateReply message")
    return decoder.read_ulong(), decoder.read_octet()


def message_type(data: bytes) -> int:
    """Peek at a GIOP message's type without consuming it."""
    return _read_header(CDRDecoder(data))


def encode_reply(
    request_id: int,
    result: Any = None,
    exception: Optional[Exception] = None,
    service_contexts: Optional[Dict[str, Any]] = None,
) -> bytes:
    """Flatten a reply: a result, a user exception or a system exception."""
    encoder = CDREncoder()
    _write_header(encoder, MSG_REPLY)
    encoder.write_ulong(request_id)
    encoder.write_any(service_contexts or {})
    if exception is None:
        encoder.write_octet(NO_EXCEPTION)
        encoder.write_any(result)
    elif isinstance(exception, UserException):
        encoder.write_octet(USER_EXCEPTION)
        encoder.write_string(exception.repo_id)
        encoder.write_string(exception.message)
        encoder.write_any(exception.members)
    elif isinstance(exception, SystemException):
        encoder.write_octet(SYSTEM_EXCEPTION)
        encoder.write_string(exception.repo_id)
        encoder.write_string(exception.message)
        encoder.write_long(exception.minor)
    else:
        # Non-CORBA exceptions cross the wire as a generic system exception;
        # a real ORB would do the same rather than leak server internals.
        encoder.write_octet(SYSTEM_EXCEPTION)
        encoder.write_string(SystemException.repo_id)
        encoder.write_string(f"{type(exception).__name__}: {exception}")
        encoder.write_long(0)
    return encoder.getvalue()


class Reply:
    """A decoded reply."""

    __slots__ = ("request_id", "service_contexts", "result", "exception")

    def __init__(
        self,
        request_id: int,
        service_contexts: Dict[str, Any],
        result: Any,
        exception: Optional[Exception],
    ) -> None:
        self.request_id = request_id
        self.service_contexts = service_contexts
        self.result = result
        self.exception = exception

    def value(self) -> Any:
        """Return the result, raising the carried exception if any."""
        if self.exception is not None:
            raise self.exception
        return self.result


def decode_reply(data: bytes) -> Reply:
    """Parse a reply message."""
    decoder = CDRDecoder(data)
    if _read_header(decoder) != MSG_REPLY:
        raise MARSHAL("expected a GIOP Reply message")
    request_id = decoder.read_ulong()
    contexts = decoder.read_any()
    if not isinstance(contexts, dict):
        raise MARSHAL("service contexts must decode to a map")
    status = decoder.read_octet()
    if status == NO_EXCEPTION:
        return Reply(request_id, contexts, decoder.read_any(), None)
    if status == USER_EXCEPTION:
        repo_id = decoder.read_string()
        message = decoder.read_string()
        members = decoder.read_any()
        exception = user_exception_from_wire(repo_id, message, members)
        return Reply(request_id, contexts, None, exception)
    if status == SYSTEM_EXCEPTION:
        repo_id = decoder.read_string()
        message = decoder.read_string()
        minor = decoder.read_long()
        exception = system_exception_from_wire(repo_id, message, minor)
        return Reply(request_id, contexts, None, exception)
    raise MARSHAL(f"unknown reply status: {status}")
