"""GIOP-style message protocol.

Requests and replies really are flattened to bytes and parsed back on
the receiving ORB; the byte counts feed the network model, so protocol
overhead (headers, service contexts) is visible in the transfer times
just as it would be on a real wire.

Hot-path machinery (the encodings themselves are unchanged):

- the constant 7-byte header (magic + version + message type) is
  precomputed once per message type and appended verbatim;
- service contexts — usually empty or identical call after call — are
  encoded once per (alignment, content) and replayed from a bounded
  LRU instead of being re-encoded per message;
- when :data:`repro.perf.COUNTERS` is enabled, request/reply encode
  and decode record nanoseconds and byte counts.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

from repro.orb.cdr import CDRDecoder, CDREncoder, _S_ULONG
from repro.orb.exceptions import (
    MARSHAL,
    SystemException,
    UserException,
    system_exception_from_wire,
    user_exception_from_wire,
)
from repro.orb.ior import IOR
from repro.orb.request import Request
from repro.perf.counters import COUNTERS
from repro.perf.lru import LRUCache

MAGIC = b"GIOP"
VERSION = (1, 2)

MSG_REQUEST = 0
MSG_REPLY = 1
MSG_LOCATE_REQUEST = 2
MSG_LOCATE_REPLY = 3

# Locate status values.
UNKNOWN_OBJECT = 0
OBJECT_HERE = 1

# Reply status values.
NO_EXCEPTION = 0
USER_EXCEPTION = 1
SYSTEM_EXCEPTION = 2

#: The constant wire header per message type: GIOP magic, version
#: bytes, message type — seven octets, no alignment, so one literal.
_HEADER_WIRE = {
    message_type: MAGIC + bytes((VERSION[0], VERSION[1], message_type))
    for message_type in (MSG_REQUEST, MSG_REPLY, MSG_LOCATE_REQUEST, MSG_LOCATE_REPLY)
}
_HEADER_SIZE = 7

#: Header plus the single pad byte that precedes the request id, so
#: hot encoders emit header + id in one append.  The id then always
#: occupies bytes 8..12.
_REQUEST_PREFIX = _HEADER_WIRE[MSG_REQUEST] + b"\x00"
_REPLY_PREFIX = _HEADER_WIRE[MSG_REPLY] + b"\x00"


def _write_header(encoder: CDREncoder, message_type: int) -> None:
    encoder.write_raw(_HEADER_WIRE[message_type])


def _read_header(decoder: CDRDecoder) -> int:
    header = decoder.read_raw(_HEADER_SIZE)
    if header[:4] != MAGIC:
        raise MARSHAL(f"bad GIOP magic: {header[:4]!r}")
    major, minor = header[4], header[5]
    if (major, minor) != VERSION:
        raise MARSHAL(f"unsupported GIOP version {major}.{minor}")
    return header[6]


# -- service-context cache ---------------------------------------------

#: Encoded service-context maps keyed by (buffer offset mod 8, frozen
#: content).  The alignment is part of the key because the `any`
#: encoding pads relative to the absolute offset.
_context_cache = LRUCache(maxsize=256)

_UNFREEZABLE = object()

# struct used to key floats by bit pattern: -0.0 == 0.0 and NaN != NaN
# would otherwise corrupt or defeat the cache.
from repro.orb.cdr import _S_DOUBLE  # noqa: E402  (private by design)


def _freeze(value: Any) -> Any:
    """A hashable, type-tagged key for a context value, or _UNFREEZABLE.

    Type tags keep 1, 1.0 and True — equal and same-hash in Python but
    encoded differently — from colliding in the cache.
    """
    kind = type(value)
    if kind is str:
        return value
    if kind is bool:
        return ("b", value)
    if kind is int:
        return ("i", value)
    if kind is float:
        return ("f", _S_DOUBLE.pack(value))
    if value is None:
        return ("n",)
    if kind is bytes:
        return ("y", value)
    if kind is dict:
        items = []
        for key, item in value.items():
            if type(key) is not str:
                return _UNFREEZABLE
            frozen = _freeze(item)
            if frozen is _UNFREEZABLE:
                return _UNFREEZABLE
            items.append((key, frozen))
        return ("d", tuple(items))
    if kind is list or kind is tuple:
        items = []
        for item in value:
            frozen = _freeze(item)
            if frozen is _UNFREEZABLE:
                return _UNFREEZABLE
            items.append(frozen)
        return ("l", tuple(items))
    return _UNFREEZABLE


def _write_contexts(encoder: CDREncoder, contexts: Dict[str, Any]) -> None:
    """write_any(contexts), replayed from cache when seen before."""
    frozen = _freeze(contexts)
    if frozen is _UNFREEZABLE:
        encoder.write_any(contexts)
        return
    key = (len(encoder) % 8, frozen)
    cached = _context_cache.get(key)
    if cached is not None:
        encoder.write_raw(cached)
        COUNTERS.ctx_cache_hits += 1
        return
    mark = encoder.mark()
    encoder.write_any(contexts)
    _context_cache.put(key, encoder.bytes_since(mark))
    COUNTERS.ctx_cache_misses += 1


# -- request/reply preamble caches -------------------------------------
#
# Between the request id (always bytes 8..12: 7-byte header + 1 pad)
# and the argument list, a request carries target, operation, kind,
# command target, response flag and service contexts — all constant
# for a given stub making repeated calls.  The encoder caches that
# whole span keyed by the values; the decoder caches the parse keyed
# by the exact bytes.  Both are exact-match caches, so the wire format
# and the accepted inputs are unchanged — a miss simply takes the
# field-by-field path below and populates the cache.

_request_preamble_cache = LRUCache(maxsize=256)
_request_decode_cache = LRUCache(maxsize=256)
_reply_decode_cache = LRUCache(maxsize=256)

# -- payload ("any") span caches ---------------------------------------
#
# The same exact-match replay idea, applied to the hot *tail* of a
# message: the argument list of a request and the result of a reply.
# Encoders key by (buffer alignment, frozen value tree) — _freeze is
# type-tagged and keys floats by bit pattern, so two values share a key
# only when their encodings are byte-identical.  Decoders key by the
# exact remaining bytes (the span runs to the end of the message, so
# the tail slice *is* the span) and replay a plain-data copy, keeping
# the caller's full ownership of mutable results.  Misses take the
# ordinary element-by-element path and populate the cache, so the wire
# format and the accepted inputs are unchanged.

_args_encode_cache = LRUCache(maxsize=256)
_args_decode_cache = LRUCache(maxsize=256)
_result_encode_cache = LRUCache(maxsize=256)
_result_decode_cache = LRUCache(maxsize=256)

#: Spans above this size are not memoised: the caches target per-call
#: overhead, which large payloads amortise on their own, and bounding
#: the entry size keeps 256 slots worth of bytes small.
_SPAN_LIMIT = 4096


def _copy_plain(value: Any) -> Any:
    """Deep copy of decoded plain data (only containers need copying)."""
    kind = type(value)
    if kind is dict:
        return {key: _copy_plain(item) for key, item in value.items()}
    if kind is list:
        return [_copy_plain(item) for item in value]
    return value

#: Distinct preamble byte-lengths seen by each decode cache (one per
#: stub/operation shape in practice).  Bounded: probing degenerates to
#: the slow path when a workload somehow produces many shapes.
_request_decode_lengths: List[int] = []
_reply_decode_lengths: List[int] = []
_DECODE_LENGTH_LIMIT = 16


def _scalar_contexts(contexts: Dict[str, Any]) -> bool:
    """True when every context value is immutable (safe to share
    across decoded requests without deep-copying)."""
    for value in contexts.values():
        if not (
            value is None
            or type(value) in (str, int, float, bool, bytes)
        ):
            return False
    return True


def clear_caches() -> None:
    """Drop the wire caches (tests and memory hygiene)."""
    _context_cache.clear()
    _request_preamble_cache.clear()
    _request_decode_cache.clear()
    _reply_decode_cache.clear()
    _args_encode_cache.clear()
    _args_decode_cache.clear()
    _result_encode_cache.clear()
    _result_decode_cache.clear()
    del _request_decode_lengths[:]
    del _reply_decode_lengths[:]


# -- requests -----------------------------------------------------------


def encode_request(request: Request, pools: Optional[Any] = None) -> bytes:
    """Flatten a :class:`Request` (including its dual-use tag) to bytes.

    ``pools`` is an optional :class:`~repro.orb.pool.WirePools`; when
    given, the encoder buffer is recycled through its free list.
    """
    counters = COUNTERS
    start = time.perf_counter_ns() if counters.enabled else 0
    encoder = pools.acquire_encoder() if pools is not None else CDREncoder()
    encoder.write_raw(_REQUEST_PREFIX + _S_ULONG.pack(request.request_id))
    # Everything between the request id and the args is constant for a
    # stub calling the same operation with the same contexts — replay
    # the cached span when the key matches (IORs are value objects, so
    # identity keying is exact; _freeze covers the contexts).
    preamble = None
    key = None
    frozen = _freeze(request.service_contexts)
    if frozen is not _UNFREEZABLE:
        key = (
            request.target,
            request.operation,
            request.kind,
            request.command_target,
            request.response_expected,
            frozen,
        )
        preamble = _request_preamble_cache.get(key)
    if preamble is not None:
        encoder.write_raw(preamble)
        # The replayed span embeds the cached context encoding.
        counters.ctx_cache_hits += 1
    else:
        mark = encoder.mark()
        encoder.write_octets(request.target.encode())
        encoder.write_string(request.operation)
        encoder.write_string(request.kind)
        encoder.write_string(request.command_target or "")
        encoder.write_boolean(request.response_expected)
        _write_contexts(encoder, request.service_contexts)
        if key is not None:
            _request_preamble_cache.put(key, encoder.bytes_since(mark))
    args = request.args
    frozen_args = _freeze(args)
    if frozen_args is not _UNFREEZABLE:
        args_key = (len(encoder) % 8, frozen_args)
        span = _args_encode_cache.get(args_key)
        if span is not None:
            encoder.write_raw(span)
            counters.any_span_hits += 1
        else:
            mark = encoder.mark()
            encoder.write_ulong(len(args))
            for arg in args:
                encoder.write_any(arg)
            span = encoder.bytes_since(mark)
            if len(span) <= _SPAN_LIMIT:
                _args_encode_cache.put(args_key, span)
            counters.any_span_misses += 1
    else:
        encoder.write_ulong(len(args))
        for arg in args:
            encoder.write_any(arg)
    wire = encoder.getvalue()
    if pools is not None:
        pools.release_encoder(encoder)
    if counters.enabled:
        counters.encode_calls += 1
        counters.encode_ns += time.perf_counter_ns() - start
        counters.encode_bytes += len(wire)
    return wire


def decode_request(data: bytes) -> Request:
    """Parse bytes back into a :class:`Request`.

    The decoded request keeps the sender's request id so replies can be
    correlated.
    """
    counters = COUNTERS
    start = time.perf_counter_ns() if counters.enabled else 0
    # Exact-bytes fast path: probe the cached preamble parses at the
    # handful of span lengths this process has seen.  A hit replays
    # the already-validated fields; anything else (including malformed
    # input) takes the field-by-field parse below.
    if data[:_HEADER_SIZE] == _HEADER_WIRE[MSG_REQUEST]:
        for length in _request_decode_lengths:
            entry = _request_decode_cache.get(data[12 : 12 + length])
            if entry is not None:
                target, operation, kind, command_target, expected, ctx = entry
                # The replayed span embeds the cached IOR parse.
                counters.ior_parse_hits += 1
                tail = data[12 + length:]
                template = _args_decode_cache.get(tail)
                if template is not None:
                    args = tuple([_copy_plain(arg) for arg in template])
                    counters.any_span_hits += 1
                else:
                    decoder = CDRDecoder(data)
                    decoder._offset = 12 + length
                    count = decoder.read_ulong()
                    args = tuple([decoder.read_any() for _ in range(count)])
                    if len(tail) <= _SPAN_LIMIT:
                        # The template gets its own copy: callers own
                        # (and may mutate) the args we hand back.
                        _args_decode_cache.put(
                            tail, tuple([_copy_plain(arg) for arg in args])
                        )
                    counters.any_span_misses += 1
                request = Request(
                    target,
                    operation,
                    args,
                    kind=kind,
                    command_target=command_target,
                    service_contexts=dict(ctx),
                    response_expected=expected,
                    request_id=_S_ULONG.unpack_from(data, 8)[0],
                )
                if counters.enabled:
                    counters.decode_calls += 1
                    counters.decode_ns += time.perf_counter_ns() - start
                    counters.decode_bytes += len(data)
                return request
    decoder = CDRDecoder(data)
    if _read_header(decoder) != MSG_REQUEST:
        raise MARSHAL("expected a GIOP Request message")
    request_id = decoder.read_ulong()
    target = IOR.decode(decoder.read_octets())
    operation = decoder.read_string()
    kind = decoder.read_string()
    command_target = decoder.read_string() or None
    response_expected = decoder.read_boolean()
    contexts = decoder.read_any()
    if not isinstance(contexts, dict):
        raise MARSHAL("service contexts must decode to a map")
    preamble_end = decoder._offset
    count = decoder.read_ulong()
    args = tuple([decoder.read_any() for _ in range(count)])
    if _scalar_contexts(contexts):
        length = preamble_end - 12
        _request_decode_cache.put(
            data[12:preamble_end],
            (target, operation, kind, command_target, response_expected,
             dict(contexts)),
        )
        if (
            length not in _request_decode_lengths
            and len(_request_decode_lengths) < _DECODE_LENGTH_LIMIT
        ):
            _request_decode_lengths.append(length)
    request = Request(
        target,
        operation,
        args,
        kind=kind,
        command_target=command_target,
        service_contexts=contexts,
        response_expected=response_expected,
        request_id=request_id,
    )
    if counters.enabled:
        counters.decode_calls += 1
        counters.decode_ns += time.perf_counter_ns() - start
        counters.decode_bytes += len(data)
    return request


def encode_locate_request(request_id: int, object_key: str) -> bytes:
    """A GIOP LocateRequest: does the peer serve this object?"""
    encoder = CDREncoder()
    encoder.write_raw(_HEADER_WIRE[MSG_LOCATE_REQUEST])
    encoder.write_ulong(request_id)
    encoder.write_string(object_key)
    return encoder.getvalue()


def decode_locate_request(data: bytes) -> Tuple[int, str]:
    decoder = CDRDecoder(data)
    if _read_header(decoder) != MSG_LOCATE_REQUEST:
        raise MARSHAL("expected a GIOP LocateRequest message")
    return decoder.read_ulong(), decoder.read_string()


def encode_locate_reply(request_id: int, status: int) -> bytes:
    encoder = CDREncoder()
    encoder.write_raw(_HEADER_WIRE[MSG_LOCATE_REPLY])
    encoder.write_ulong(request_id)
    encoder.write_octet(status)
    return encoder.getvalue()


def decode_locate_reply(data: bytes) -> Tuple[int, int]:
    decoder = CDRDecoder(data)
    if _read_header(decoder) != MSG_LOCATE_REPLY:
        raise MARSHAL("expected a GIOP LocateReply message")
    return decoder.read_ulong(), decoder.read_octet()


def message_type(data: bytes) -> int:
    """Peek at a GIOP message's type without consuming it."""
    if len(data) >= _HEADER_SIZE and data[:4] == MAGIC:
        if (data[4], data[5]) == VERSION:
            return data[6]
    return _read_header(CDRDecoder(data))  # fall through for exact errors


def encode_reply(
    request_id: int,
    result: Any = None,
    exception: Optional[Exception] = None,
    service_contexts: Optional[Dict[str, Any]] = None,
    pools: Optional[Any] = None,
) -> bytes:
    """Flatten a reply: a result, a user exception or a system exception."""
    counters = COUNTERS
    start = time.perf_counter_ns() if counters.enabled else 0
    encoder = pools.acquire_encoder() if pools is not None else CDREncoder()
    encoder.write_raw(_REPLY_PREFIX + _S_ULONG.pack(request_id))
    _write_contexts(encoder, service_contexts or {})
    if exception is None:
        frozen_result = _freeze(result)
        if frozen_result is not _UNFREEZABLE:
            result_key = (len(encoder) % 8, frozen_result)
            span = _result_encode_cache.get(result_key)
            if span is not None:
                encoder.write_raw(span)
                counters.any_span_hits += 1
            else:
                mark = encoder.mark()
                encoder.write_octet(NO_EXCEPTION)
                encoder.write_any(result)
                span = encoder.bytes_since(mark)
                if len(span) <= _SPAN_LIMIT:
                    _result_encode_cache.put(result_key, span)
                counters.any_span_misses += 1
        else:
            encoder.write_octet(NO_EXCEPTION)
            encoder.write_any(result)
    elif isinstance(exception, UserException):
        encoder.write_octet(USER_EXCEPTION)
        encoder.write_string(exception.repo_id)
        encoder.write_string(exception.message)
        encoder.write_any(exception.members)
    elif isinstance(exception, SystemException):
        encoder.write_octet(SYSTEM_EXCEPTION)
        encoder.write_string(exception.repo_id)
        encoder.write_string(exception.message)
        encoder.write_long(exception.minor)
    else:
        # Non-CORBA exceptions cross the wire as a generic system exception;
        # a real ORB would do the same rather than leak server internals.
        encoder.write_octet(SYSTEM_EXCEPTION)
        encoder.write_string(SystemException.repo_id)
        encoder.write_string(f"{type(exception).__name__}: {exception}")
        encoder.write_long(0)
    wire = encoder.getvalue()
    if pools is not None:
        pools.release_encoder(encoder)
    if counters.enabled:
        counters.encode_calls += 1
        counters.encode_ns += time.perf_counter_ns() - start
        counters.encode_bytes += len(wire)
    return wire


class Reply:
    """A decoded reply."""

    __slots__ = ("request_id", "service_contexts", "result", "exception")

    def __init__(
        self,
        request_id: int,
        service_contexts: Dict[str, Any],
        result: Any,
        exception: Optional[Exception],
    ) -> None:
        self.request_id = request_id
        self.service_contexts = service_contexts
        self.result = result
        self.exception = exception

    def value(self) -> Any:
        """Return the result, raising the carried exception if any."""
        if self.exception is not None:
            raise self.exception
        return self.result


def decode_reply(data: bytes) -> Reply:
    """Parse a reply message."""
    counters = COUNTERS
    start = time.perf_counter_ns() if counters.enabled else 0
    decoder = CDRDecoder(data)
    contexts = None
    if data[:_HEADER_SIZE] == _HEADER_WIRE[MSG_REPLY]:
        for length in _reply_decode_lengths:
            cached = _reply_decode_cache.get(data[12 : 12 + length])
            if cached is not None:
                contexts = dict(cached)
                decoder._offset = 12 + length
                request_id = _S_ULONG.unpack_from(data, 8)[0]
                break
    if contexts is None:
        if _read_header(decoder) != MSG_REPLY:
            raise MARSHAL("expected a GIOP Reply message")
        request_id = decoder.read_ulong()
        contexts = decoder.read_any()
        if not isinstance(contexts, dict):
            raise MARSHAL("service contexts must decode to a map")
        preamble_end = decoder._offset
        if _scalar_contexts(contexts):
            length = preamble_end - 12
            _reply_decode_cache.put(data[12:preamble_end], dict(contexts))
            if (
                length not in _reply_decode_lengths
                and len(_reply_decode_lengths) < _DECODE_LENGTH_LIMIT
            ):
                _reply_decode_lengths.append(length)
    tail = data[decoder._offset:]
    template = _result_decode_cache.get(tail)
    if template is not None:
        # Stored as a 1-tuple so a legitimate None result still hits.
        reply = Reply(request_id, contexts, _copy_plain(template[0]), None)
        counters.any_span_hits += 1
        if counters.enabled:
            counters.decode_calls += 1
            counters.decode_ns += time.perf_counter_ns() - start
            counters.decode_bytes += len(data)
        return reply
    status = decoder.read_octet()
    if status == NO_EXCEPTION:
        result = decoder.read_any()
        reply = Reply(request_id, contexts, result, None)
        if len(tail) <= _SPAN_LIMIT:
            _result_decode_cache.put(tail, (_copy_plain(result),))
        counters.any_span_misses += 1
    elif status == USER_EXCEPTION:
        repo_id = decoder.read_string()
        message = decoder.read_string()
        members = decoder.read_any()
        exception = user_exception_from_wire(repo_id, message, members)
        reply = Reply(request_id, contexts, None, exception)
    elif status == SYSTEM_EXCEPTION:
        repo_id = decoder.read_string()
        message = decoder.read_string()
        minor = decoder.read_long()
        exception = system_exception_from_wire(repo_id, message, minor)
        reply = Reply(request_id, contexts, None, exception)
    else:
        raise MARSHAL(f"unknown reply status: {status}")
    if counters.enabled:
        counters.decode_calls += 1
        counters.decode_ns += time.perf_counter_ns() - start
        counters.decode_bytes += len(data)
    return reply
