#!/usr/bin/env python
"""An adaptive news feed: monitoring-driven renegotiation.

Demonstrates the QoS adaptation loop of Section 3 ("varying resource
availability should be addressed through adaption, i.e. renegotiations
if the resource availability in- or decreases"):

- an Actuality binding at a "gold" freshness level;
- a capacity trace that degrades the link mid-run and recovers it;
- a monitor watching round-trip latency against the agreement;
- an adaptation manager stepping the binding down a level ladder when
  expectations break, and probing back up when conditions recover.

Run:  python examples/adaptive_news_feed.py
"""

import repro.qos as qos
from repro.core.adaptation import AdaptationLevel, AdaptationManager
from repro.core.binding import QoSProvider, establish_qos
from repro.core.monitoring import Expectation, QoSMonitor
from repro.core.negotiation import Range
from repro.orb import World
from repro.qos.actuality.freshness import ActualityImpl, ActualityMediator
from repro.workloads import compressible_text

NEWS_QIDL = """
interface NewsFeed provides Actuality {
    string headline(in string section);
    string full_story(in string section);
};
"""

generated = qos.weave(NEWS_QIDL, "example_news")

LEVELS = [
    AdaptationLevel("gold   (fresh <= 0.5s)", {"max_age": Range(0.1, 0.5)}),
    AdaptationLevel("silver (fresh <= 2s)  ", {"max_age": Range(0.5, 2.0)}),
    AdaptationLevel("bronze (fresh <= 10s) ", {"max_age": Range(2.0, 10.0)}),
]


class NewsImpl(generated.NewsFeedServerBase):
    def __init__(self):
        super().__init__()
        self.edition = 0

    def headline(self, section):
        return f"[{section}] edition {self.edition}"

    def full_story(self, section):
        return compressible_text(6000, seed=self.edition)


def main():
    world = World()
    world.add_host("reader")
    world.add_host("newsroom")
    link = world.connect("reader", "newsroom", latency=0.01, bandwidth_bps=2e6)

    servant = NewsImpl()
    provider = QoSProvider(world, "newsroom", servant)
    provider.support(
        "Actuality",
        ActualityImpl().attach_clock(world.clock),
        capabilities={"max_age": Range(0.1, 10.0)},
    )
    ior = provider.activate("news")
    stub = generated.NewsFeedStub(world.orb("reader"), ior)

    mediator = ActualityMediator(cacheable={"headline", "full_story"})
    binding = establish_qos(
        stub, "Actuality", LEVELS[0].requirements, mediator=mediator
    )
    monitor = QoSMonitor(binding.agreement, world.clock, min_samples=3)
    monitor.expect(Expectation("latency", "<=", 0.120, aggregate="mean"))
    manager = AdaptationManager(
        binding, monitor, LEVELS, upgrade_after_healthy_checks=3
    )

    # The link degrades at t=20s and recovers at t=50s.
    world.resources.set_capacity_trace(
        link, [(0.0, 2e6), (20.0, 96e3), (50.0, 2e6)]
    )

    print(f"{'time':>6}  {'level':<22} {'mean rtt':>9}  event")
    for tick in range(1, 16):
        target_time = tick * 5.0
        world.kernel.run_until(target_time)
        world.resources.apply_traces()
        # The reader polls a few stories each tick.
        for story in range(3):
            start = world.clock.now
            stub.full_story(f"section-{story}")
            monitor.observe("latency", world.clock.now - start)
        event = manager.check() or ""
        mean = monitor.window("latency").mean()
        mean_text = f"{mean * 1e3:7.1f}ms" if mean == mean else "   (n/a)"
        print(
            f"{world.clock.now:6.1f}  {manager.current_level.name:<22}"
            f"{mean_text}  {event}"
        )

    print(
        f"\nrenegotiations: {manager.renegotiations}, "
        f"cache hits: {mediator.hits}, misses: {mediator.misses}"
    )
    print("level track:", [(round(t, 1), LEVELS[i].name.split()[0], why)
                           for t, i, why in manager.track])


if __name__ == "__main__":
    main()
