#!/usr/bin/env python
"""A secure document archive: encryption, key rotation and accounting.

Demonstrates "privacy through encryption" (Section 6) plus the runtime
infrastructure of Section 2.2 (accounting) and the outlook's client
preference contracts:

- Diffie-Hellman key agreement over the characteristic's *peer*
  operation — the key never crosses the wire;
- on-the-fly key rotation (Section 3.2);
- a metering mediator stacked over the encryption mediator, producing
  an invoice per agreement;
- a preference contract choosing between the server's offered
  characteristics under a price budget.

Run:  python examples/secure_archive.py
"""

import repro.qos as qos
from repro.core.accounting import AccountingService, MeteringMediator, Tariff
from repro.core.binding import QoSProvider, establish_qos
from repro.core.contracts import (
    Candidate,
    CompositeContract,
    LeafContract,
    choose,
    linear_utility,
)
from repro.core.negotiation import Range
from repro.orb import World
from repro.qos.compression.payload import CompressionImpl
from repro.qos.encryption.privacy import EncryptionImpl, EncryptionMediator
from repro.workloads.apps import archive_module, make_archive_servant_class


def main():
    world = World()
    world.add_host("branch-office")
    world.add_host("vault")
    world.connect("branch-office", "vault", latency=0.015, bandwidth_bps=1e6)

    servant = make_archive_servant_class()()
    provider = QoSProvider(world, "vault", servant)
    provider.support("Encryption", EncryptionImpl(), capabilities={})
    provider.support(
        "Compression", CompressionImpl(), capabilities={"threshold": Range(64, 4096)}
    )
    ior = provider.activate("archive")
    stub = archive_module.ArchiveStub(world.orb("branch-office"), ior)

    # -- the client's preference hierarchy (ref [5]) --------------------
    contract = CompositeContract(
        "priority",
        [
            LeafContract("Encryption", {}, budget=5.0),
            LeafContract(
                "Compression",
                {"threshold": linear_utility(4096, 64)},
                budget=1.0,
            ),
        ],
    )
    candidates = [
        Candidate("Encryption", {}, price=2.0),
        Candidate("Compression", {"threshold": 256}, price=0.5),
    ]
    chosen, score = choose(contract, candidates)
    print(f"preference contract chose: {chosen.characteristic} "
          f"(score {score:.2f}, price {chosen.price})")

    # -- bind encryption, meter it ----------------------------------------
    mediator = EncryptionMediator()
    binding = establish_qos(stub, chosen.characteristic, mediator=mediator)
    accounting = AccountingService()
    accounting.open_account(
        binding.agreement, Tariff(setup_fee=1.0, per_call=0.05, per_second=0.2)
    )
    MeteringMediator(accounting, binding.agreement, inner=mediator).install(stub)

    key_id = mediator.establish_key(stub)
    print(f"session key agreed: {key_id} "
          f"(server holds {servant.qos_impl('Encryption').get_key_id()!r})")

    stub.store("q3-report", "revenue up, costs down, details secret " * 40)
    print(f"stored; server sees plaintext: "
          f"{servant.files['q3-report'][:30]!r}...")
    print(f"fetched matches: "
          f"{stub.fetch('q3-report') == servant.files['q3-report']}")

    # -- rotate the key on the fly -----------------------------------------
    rotated = mediator.establish_key(stub)
    stub.store("q4-plan", "acquire competitor, rename everything")
    print(f"key rotated to {rotated}; new writes use it "
          f"({mediator.handshakes} handshakes so far)")

    # -- the invoice -----------------------------------------------------
    invoice = accounting.invoice(binding.agreement.agreement_id)
    print(
        f"\ninvoice for agreement #{binding.agreement.agreement_id}: "
        f"{invoice['calls']:.0f} calls, "
        f"{invoice['busy_seconds'] * 1e3:.1f}ms busy, "
        f"amount {invoice['amount']:.3f}"
    )

    binding.release()
    print("binding released.")


if __name__ == "__main__":
    main()
