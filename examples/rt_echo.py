#!/usr/bin/env python
"""Real-transport quickstart: the same ORB, two OS processes, real TCP.

Everything above the wire is the code the simulator runs — GIOP/CDR,
IORs, the POA, QoS modules — but here the bytes cross an actual
socket between a server process and this one:

1. spawn a server child (``python -m repro.rt.harness serve ...``)
   hosting an echo servant on an ephemeral port;
2. dial it with an :class:`~repro.rt.client.RtClient` and invoke
   operations exactly as netsim clients do;
3. run a client child too, so the bytes really cross processes both
   ways;
4. print what travelled.

Run:  python examples/rt_echo.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.orb.ior import IIOPProfile, IOR  # noqa: E402
from repro.orb.request import Request  # noqa: E402
from repro.rt.client import RtClient  # noqa: E402
from repro.rt.harness import run_client, spawn_server  # noqa: E402

ECHO_IOR = IOR("IDL:test/Echo:1.0", IIOPProfile("server", 683, "echo"), [])


def main() -> int:
    print("spawning an RtServer child process ...")
    with spawn_server("repro.rt.scenarios:echo_server") as server:
        host, port = server.address
        print(f"server listening on {host}:{port}")

        # In-process client: the IOR names the *logical* host; only the
        # address map knows where the socket actually lives.
        with RtClient({"server": (host, port)}) as client:
            print("echo('hello wire')  ->", client.invoke(Request(ECHO_IOR, "echo", ("hello wire",))))
            print("whoami()           ->", client.invoke(Request(ECHO_IOR, "whoami", ())))
            print("add(20, 22)        ->", client.invoke(Request(ECHO_IOR, "add", (20, 22))))
            window = [Request(ECHO_IOR, "echo", (f"pipelined-{i}",)) for i in range(4)]
            replies = client.invoke_window(window)
            print("pipelined window   ->", [r.value() for r in replies])

        # And a second OS process as the client, via the harness.
        result = run_client(
            "repro.rt.scenarios:echo_client", host, port, {"count": 200}
        )
        print(
            f"client child: {result['correct']}/{result['count']} correct, "
            f"{result['requests_per_s']:,.0f} req/s"
        )
    print("server stopped; done.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
