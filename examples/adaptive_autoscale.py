#!/usr/bin/env python
"""Autoscaling under a load surge: the adaptive control plane.

A replica group starts as a single compute server.  An open-loop
client fleet offers a steady load, then **triples it mid-run**.  A
:class:`~repro.control.ControlLoop` — a deterministic sampler riding
the simulation's event kernel — watches the client-observed p95
against the 50 ms delay contract and drives an
:class:`~repro.control.AutoscalePolicy`:

- pressure crosses the hysteresis gate → the group grows onto spare
  hosts (servant state is transferred over the ORB from the coldest
  live member, and the new membership is *published* into the routing
  layer in the same simulated instant);
- when the surge passes, the quietest member is drained — no new
  requests reach it, admitted work finishes — and then retired.

Every decision lands in a :class:`~repro.control.DecisionTrace` whose
digest is reproducible: the same seed replays the same decisions.

Run:  python examples/adaptive_autoscale.py
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.control import AutoscalePolicy, ControlLoop, Hysteresis, ManagedGroup
from repro.core.monitoring import MetricWindow
from repro.orb import World
from repro.perf.counters import snapshot
from repro.qos.fault_tolerance.replica_group import ReplicaGroupManager
from repro.workloads.apps import make_compute_servant_class
from repro.workloads.drivers import Arrival, open_loop_fanout

CONTRACT = 0.05          # the delay bound the group must hold (s)
SERVICE = 0.004          # per-request demand: one host sustains 250/s
WARM_RATE = 200.0        # phase 1 offered load
SURGE_RATE = 600.0       # phase 2: load triples
PHASES = (1.0, 2.0, 1.0)  # warm / surge / calm (s)


def arrival_times():
    times, t = [], 0.0
    for phase, rate in zip(PHASES, (WARM_RATE, SURGE_RATE, WARM_RATE)):
        end = t + phase
        while t < end:
            times.append(round(t, 9))
            t += 1.0 / rate
        t = end
    return times


def main():
    world = World()
    world.lan(["client", "a", "b", "c", "d"], latency=0.0005, bandwidth_bps=100e6)
    manager = ReplicaGroupManager(
        world, "farm", make_compute_servant_class(unit_cost=SERVICE)
    )
    manager.add_replica("a")
    group = ManagedGroup(world, manager)

    window = MetricWindow(size=20)

    def pressure(now):
        if len(window) < 10:
            return None
        return window.p95() / CONTRACT

    loop = ControlLoop(world, period=0.01).attach()
    loop.add_policy(
        AutoscalePolicy(
            group,
            ["b", "c", "d"],
            signal=pressure,
            hysteresis=Hysteresis(
                high=0.3, low=0.12, up_ticks=2, down_ticks=80, cooldown=0.03
            ),
            max_replicas=4,
        )
    )
    loop.start(until=sum(PHASES))

    arrivals = [
        Arrival(t, manager.member_ior("a"), "busy_work", (1,))
        for t in arrival_times()
    ]
    result = open_loop_fanout(
        world.orb("client"),
        arrivals,
        observer=lambda a, lat, err: lat is not None and window.observe(lat),
        kernel=world.kernel,
        router=lambda a, depart: group.route_least_loaded(depart),
    )
    loop.stop()
    group.poll_retirements(world.clock.now)

    good = sum(1 for lat in result.latencies if lat <= CONTRACT)
    print(f"offered   : {WARM_RATE:.0f}/s, x3 surge at t={PHASES[0]}s, "
          f"calm at t={PHASES[0] + PHASES[1]}s")
    print(f"completed : {result.count}/{len(arrivals)}  "
          f"({good} within the {CONTRACT * 1e3:.0f}ms contract)")
    print(f"p95       : {result.p95() * 1e3:.2f}ms   "
          f"p99: {result.p99() * 1e3:.2f}ms")
    print(f"members   : {group.hosts()} (draining: {group.draining_hosts()})")

    print("\ndecision trace:")
    for line in loop.trace.lines():
        print(f"  {line}")
    print(f"\ntrace digest: {loop.trace.digest()}")

    panel = snapshot(world.orb("client"), world)
    print("\ncontrol panel:")
    for key, value in sorted(panel.items()):
        if key.startswith("ctl_"):
            print(f"  {key:<20} {value}")


if __name__ == "__main__":
    main()
