#!/usr/bin/env python
"""Fault-tolerant bank accounts via replica groups.

Demonstrates the paper's fault-tolerance characteristic (Section 6):

- a three-replica group with active replication over the multicast
  transport module;
- state transfer when a replica joins late (the *integration*
  operations get_state/set_state — the deliberate encapsulation
  cross-cut of Section 3.1);
- crash masking (k-availability) under a crash/recovery schedule;
- majority voting masking a corrupted replica.

Run:  python examples/fault_tolerant_bank.py
"""

import repro.qos as qos
from repro.orb import World
from repro.orb.exceptions import COMM_FAILURE, TRANSIENT
from repro.orb.modules.base import binding_key
from repro.qos.fault_tolerance import ReplicaGroupManager

BANK_QIDL = """
exception Overdrawn { string account; double balance; };

interface Bank provides FaultTolerance {
    void open_account(in string account);
    double deposit(in string account, in double amount);
    double withdraw(in string account, in double amount) raises (Overdrawn);
    double balance(in string account);
};
"""

generated = qos.weave(BANK_QIDL, "example_bank")


class BankImpl(generated.BankServerBase):
    """Deterministic bank servant; FT state = the whole ledger."""

    def __init__(self):
        super().__init__()
        self.accounts = {}

    def open_account(self, account):
        self.accounts.setdefault(account, 0.0)

    def deposit(self, account, amount):
        self.accounts[account] = self.accounts.get(account, 0.0) + amount
        return self.accounts[account]

    def withdraw(self, account, amount):
        balance = self.accounts.get(account, 0.0)
        if amount > balance:
            raise generated.Overdrawn(
                f"{account} has only {balance}", account=account, balance=balance
            )
        self.accounts[account] = balance - amount
        return self.accounts[account]

    def balance(self, account):
        return self.accounts.get(account, 0.0)

    # Integration operations declared by the FaultTolerance QoS.
    def get_state(self):
        return dict(self.accounts)

    def set_state(self, state):
        self.accounts = dict(state)


def main():
    world = World()
    world.lan(["teller", "dc-a", "dc-b", "dc-c"], latency=0.004)

    group = ReplicaGroupManager(world, "bank", BankImpl)
    group.add_replica("dc-a")

    teller = group.bind_client(world.orb("teller"), generated.BankStub)
    teller.open_account("alice")
    teller.deposit("alice", 100.0)
    print(f"alice: {teller.balance('alice'):.2f} (1 replica)")

    # Late joiners are initialised by state transfer over the wire.
    group.add_replica("dc-b")
    group.add_replica("dc-c")
    teller = group.bind_client(world.orb("teller"), generated.BankStub)
    print(
        f"replicas now: {group.hosts()}, "
        f"state transfers performed: {group.state_transfers}"
    )
    for host in group.hosts():
        print(f"  {host} sees alice = {group.replica(host).balance('alice'):.2f}")

    # Crash masking: the group survives two of three replicas dying.
    world.faults.crash("dc-a")
    teller.deposit("alice", 50.0)
    world.faults.crash("dc-b")
    print(f"after two crashes, alice: {teller.balance('alice'):.2f} (still served)")

    world.faults.recover("dc-a")
    world.faults.recover("dc-b")
    # Fail-stop recovery loses state: re-sync the returned replicas
    # before they may serve (another use of the integration ops).
    group.resync("dc-a")
    group.resync("dc-b")

    # Majority voting masks a corrupted replica ("diversity through
    # majority votes on results", Section 6).
    voting_teller = group.bind_client(
        world.orb("teller"), generated.BankStub, policy="majority"
    )
    corrupt = group.replica("dc-b")
    corrupt.balance = lambda account: 1_000_000.0  # a lying replica
    print(f"majority-voted balance: {voting_teller.balance('alice'):.2f}")

    # Application exceptions replicate deterministically too.
    try:
        teller.withdraw("alice", 10_000.0)
    except generated.Overdrawn as error:
        print(f"overdraw rejected consistently: {error.balance:.2f} available")

    # Total failure is reported honestly.
    for host in group.hosts():
        world.faults.crash(host)
    try:
        teller.balance("alice")
    except (COMM_FAILURE, TRANSIENT) as error:
        print(f"all replicas down -> {type(error).__name__}: {error}")


if __name__ == "__main__":
    main()
