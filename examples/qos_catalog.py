#!/usr/bin/env python
"""Print the QoS characteristics catalog.

Section 6: "We think, that a catalog similar to those for design
patterns is an appropriate way to document QoS implementations",
targeted at two groups — application developers and QoS implementors.
This renders exactly that catalog from the registered characteristics.

Run:  python examples/qos_catalog.py [characteristic]
"""

import sys

import repro.qos  # noqa: F401 - registers the five characteristics
from repro.core.catalog import CATALOG


def main():
    if len(sys.argv) > 1:
        print(CATALOG.entry(sys.argv[1]).render())
        return
    print("MAQS QoS characteristics catalog")
    print(f"categories: {', '.join(CATALOG.categories())}")
    print(f"characteristics: {', '.join(CATALOG.names())}")
    print()
    print(CATALOG.render())


if __name__ == "__main__":
    main()
