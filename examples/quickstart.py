#!/usr/bin/env python
"""MAQS quickstart: weave, deploy, negotiate, call.

Walks through the whole pipeline in ~60 lines:

1. declare an interface in QIDL with a ``provides`` clause;
2. weave it (the compiler generates stub, skeleton, mediator and QoS
   implementation skeletons, and the Figure-2 server base);
3. deploy client and server on a simulated network;
4. negotiate a Compression binding and call through it.

Run:  python examples/quickstart.py
"""

import repro.qos as qos
from repro.core.binding import QoSProvider, establish_qos
from repro.core.negotiation import Range
from repro.orb import World
from repro.qos.compression.payload import CompressionImpl, CompressionMediator

# 1. The application interface, QoS assigned at interface granularity.
GREETER_QIDL = """
interface Greeter provides Compression {
    string greet(in string name);
    string essay(in string topic);
};
"""

# 2. Weave: compile against the registered QoS characteristics.
generated = qos.weave(GREETER_QIDL, "quickstart_greeter")


class GreeterImpl(generated.GreeterServerBase):
    """Pure application logic — no QoS code anywhere in this class."""

    def greet(self, name):
        return f"Hello, {name}!"

    def essay(self, topic):
        return (f"On the matter of {topic}, much can be said. " * 120).strip()


def main():
    # 3. A two-host deployment over a slow 256 kbit/s link.
    world = World()
    world.add_host("client")
    world.add_host("server")
    world.connect("client", "server", latency=0.02, bandwidth_bps=256e3)

    servant = GreeterImpl()
    provider = QoSProvider(world, "server", servant)
    provider.support(
        "Compression",
        CompressionImpl(),
        capabilities={"threshold": Range(64, 8192, preferred=256)},
    )
    ior = provider.activate("greeter")
    print(f"server offers QoS: {ior.qos_characteristics()}")

    stub = generated.GreeterStub(world.orb("client"), ior)

    # Plain call first: no binding yet, QoS operations are refused.
    start = world.clock.now
    stub.essay("middleware")
    plain_ms = (world.clock.now - start) * 1e3
    print(f"plain essay() round trip: {plain_ms:8.2f} ms (simulated)")

    # 4. Negotiate and bind the Compression characteristic.
    binding = establish_qos(
        stub,
        "Compression",
        requirements={"threshold": Range(64, 512, preferred=128)},
        mediator=CompressionMediator(),
    )
    print(f"negotiated: {binding.granted} (agreement #{binding.agreement.agreement_id})")

    start = world.clock.now
    stub.essay("middleware")
    woven_ms = (world.clock.now - start) * 1e3
    print(f"compressed essay() round trip: {woven_ms:5.2f} ms (simulated)")
    print(f"speedup on the slow link: {plain_ms / woven_ms:.1f}x")
    print(f"mediator compression ratio: {binding.mediator.observed_ratio():.3f}")

    binding.release()
    print("binding released; the stub is a plain proxy again.")


if __name__ == "__main__":
    main()
