#!/usr/bin/env python
"""Defining a brand-new QoS characteristic — genericity in action.

Section 2.1: "Generic QoS management architectures allow the
definition and implementation of arbitrary QoS characteristics."  This
example adds a **Deadline** characteristic that ships nowhere in the
library: requests carry a per-call deadline; the server-side QoS
implementation rejects requests that arrive already late, and the
client-side mediator tracks the miss rate.

Everything uses only public extension points: a ``qos`` QIDL
declaration, a Mediator subclass, a QoSImplementation subclass,
`register_characteristic` and a catalog entry.

Run:  python examples/custom_characteristic.py
"""

from typing import Any, Dict, Optional, Tuple

import repro.qos as qos
from repro.core.binding import QoSProvider, establish_qos
from repro.core.catalog import CATALOG, CatalogEntry
from repro.core.mediator import Mediator
from repro.core.negotiation import Range
from repro.core.qos_skeleton import QoSImplementation
from repro.orb import World
from repro.orb.exceptions import TRANSIENT

# -- 1. The characteristic's QIDL declaration ---------------------------

DEADLINE_QIDL = """
qos Deadline {
    attribute double budget;
    management long rejected();
};
"""

DEADLINE_CONTEXT = "example.deadline"


# -- 2. Client-side behaviour: the mediator -----------------------------

class DeadlineMediator(Mediator):
    """Stamp each request with an absolute deadline; count misses."""

    characteristic = "Deadline"

    def __init__(self, budget: float = 0.05):
        super().__init__()
        self.budget = budget
        self.met = 0
        self.missed = 0

    def invoke(self, stub, operation, args):
        self.calls_intercepted += 1
        clock = stub._orb.clock
        deadline = clock.now + self.budget
        try:
            result = stub._invoke(
                operation, args, extra_contexts={DEADLINE_CONTEXT: deadline}
            )
        except TRANSIENT:
            self.missed += 1
            raise
        if clock.now <= deadline:
            self.met += 1
        else:
            self.missed += 1
        return result


# -- 3. Server-side behaviour: the QoS implementation --------------------

class DeadlineImpl(QoSImplementation):
    """Reject requests that arrive with their deadline already blown."""

    characteristic = "Deadline"

    def __init__(self, clock=None):
        self.budget = 0.05
        self._clock = clock
        self._rejected = 0

    def attach_clock(self, clock):
        self._clock = clock
        return self

    def get_budget(self):
        return self.budget

    def set_budget(self, value):
        self.budget = float(value)

    def rejected(self):
        return self._rejected

    def prolog(self, servant, operation, args, contexts):
        deadline = contexts.get(DEADLINE_CONTEXT)
        # The POA exposes the simulated instant this request would
        # start processing (after any queueing) — admission control
        # rejects requests that are already too late.
        starts = contexts.get("maqs.start_time", self._clock.now)
        if deadline is not None and starts > deadline:
            self._rejected += 1
            raise TRANSIENT(
                f"deadline exceeded before processing "
                f"({starts - deadline:.3f}s late)"
            )
        return None


# -- 4. Register it like any built-in characteristic ---------------------

qos.register_characteristic(
    qos.Characteristic(
        name="Deadline",
        category="real-time",
        qidl=DEADLINE_QIDL,
        mediator_class=DeadlineMediator,
        impl_class=DeadlineImpl,
    )
)
CATALOG.register(
    CatalogEntry(
        name="Deadline",
        category="real-time",
        intent="Reject requests that can no longer meet their deadline.",
        for_application_developers=(
            "Declare 'provides Deadline'; negotiate a budget; late "
            "calls fail fast with TRANSIENT instead of returning stale."
        ),
        for_qos_implementors=(
            "Client mediator stamps an absolute deadline into the "
            "service context; the server prolog enforces it before the "
            "servant runs."
        ),
        mechanisms=["service contexts", "prolog admission control"],
        qidl=DEADLINE_QIDL,
    )
)


def main():
    generated = qos.weave(
        """
        interface Analytics provides Deadline {
            double aggregate(in long rows);
        };
        """,
        "example_deadline",
    )

    class AnalyticsImpl(generated.AnalyticsServerBase):
        def _service_time(self, operation, args):
            return args[0] * 0.0001 if operation == "aggregate" else 0.0

        def aggregate(self, rows):
            return float(rows) * 0.5

    world = World()
    world.lan(["client", "server"], latency=0.005)
    servant = AnalyticsImpl()
    provider = QoSProvider(world, "server", servant)
    provider.support(
        "Deadline",
        DeadlineImpl().attach_clock(world.clock),
        capabilities={"budget": Range(0.01, 0.5, preferred=0.05)},
    )
    ior = provider.activate("analytics")
    print(f"server offers: {ior.qos_characteristics()}")

    stub = generated.AnalyticsStub(world.orb("client"), ior)
    mediator = DeadlineMediator()
    binding = establish_qos(
        stub, "Deadline", {"budget": Range(0.01, 0.1, preferred=0.05)},
        mediator=mediator,
    )
    print(f"negotiated budget: {binding.granted['budget'] * 1e3:.0f} ms")

    # Small queries meet the deadline comfortably.
    for rows in (50, 100, 200):
        stub.aggregate(rows)
        print(f"aggregate({rows:>5}) -> ok")

    # A client-side miss: the reply of a 2000-row job lands after the
    # deadline (200 ms of service against a 50 ms budget).
    stub.aggregate(2000)
    print("aggregate( 2000) -> returned, but past the deadline (client miss)")

    # A server-side rejection: background load queues the server so the
    # next request would only *start* after its deadline.
    world.network.host("server").occupy(world.clock.now, 0.3)
    try:
        stub.aggregate(50)
        print("aggregate(   50) -> ok")
    except TRANSIENT as error:
        print(f"aggregate(   50) -> rejected by server ({error})")

    print(
        f"\nmediator: {mediator.met} met, {mediator.missed} missed; "
        f"server rejected {stub.rejected()} late request(s)"
    )
    print("\ncatalog entry:\n")
    print(CATALOG.entry("Deadline").render())


if __name__ == "__main__":
    main()
