#!/usr/bin/env python
"""A load-balanced render farm: policies over heterogeneous workers.

Demonstrates "performance by load-balancing" (Section 6) as a purely
client-side, application-centred QoS mechanism:

- a pool of workers with different CPU speeds;
- an *open-loop* job stream (jobs arrive on a schedule, regardless of
  completions) so server queues actually form;
- the four balancing policies compared against the single-server
  baseline;
- fail-over when a worker crashes mid-run.

Run:  python examples/load_balanced_render_farm.py
"""

import repro.qos as qos
from repro.orb import World
from repro.qos.load_balancing import LoadBalancingMediator, WorkerPool
from repro.qos.load_balancing.policies import policy_names
from repro.workloads import Arrival, open_loop_fanout, uniform_arrivals
from repro.workloads.apps import compute_module, make_compute_servant_class

WORKER_SPEEDS = {"node-1": 1.0, "node-2": 1.0, "node-3": 0.5, "node-4": 2.0}
JOB_RATE = 120.0  # jobs/second offered
DURATION = 1.0
JOB_UNITS = 10  # * 2ms = 20ms of work per job at speed 1.0


def build_world():
    world = World()
    world.lan(["studio"] + list(WORKER_SPEEDS), latency=0.002)
    for name, speed in WORKER_SPEEDS.items():
        world.network.host(name).cpu_factor = speed
    pool = WorkerPool(world, "render", make_compute_servant_class(unit_cost=0.002))
    for name in WORKER_SPEEDS:
        pool.add_worker(name)
    return world, pool


def run_policy(policy):
    """Open-loop run: the policy picks the worker per arriving job and
    learns from each job's observed latency (EWMA feedback)."""
    from repro.orb import giop
    from repro.orb.request import Request
    from repro.workloads.drivers import ClosedLoopResult

    world, pool = build_world()
    orb = world.orb("studio")
    mediator = LoadBalancingMediator(policy, seed=11)
    mediator.set_workers(pool.worker_iors())
    latencies = []
    last_finish = 0.0
    for time in uniform_arrivals(JOB_RATE, DURATION):
        index = mediator.policy.choose(len(mediator.workers), mediator._stats)
        stats = mediator._stats[index]
        stats.assigned += 1
        request = Request(mediator.workers[index], "busy_work", (JOB_UNITS,))
        wire = giop.encode_request(request)
        depart = time + orb.marshal_cost(len(wire))
        reply_wire, finish = orb.round_trip(
            mediator.workers[index].profile.host, wire, depart
        )
        finish += orb.marshal_cost(len(reply_wire))
        giop.decode_reply(reply_wire).value()
        latency = finish - time
        stats.record(latency)
        latencies.append(latency)
        last_finish = max(last_finish, finish)
    world.clock.advance_to(last_finish)
    result = ClosedLoopResult(latencies, 0, last_finish)
    spread = [s.assigned for s in mediator.stats()]
    return result, spread


def run_single_server():
    world, pool = build_world()
    orb = world.orb("studio")
    target = pool.worker_iors()[0]  # everything lands on node-1
    plan = [
        Arrival(time, target, "busy_work", (JOB_UNITS,))
        for time in uniform_arrivals(JOB_RATE, DURATION)
    ]
    return open_loop_fanout(orb, plan)


def main():
    print(f"workers: {WORKER_SPEEDS}  |  offered: {JOB_RATE:.0f} jobs/s, "
          f"{JOB_UNITS * 2}ms work each\n")
    print(f"{'policy':<14} {'mean':>9} {'p95':>9} {'max':>9}   spread")

    baseline = run_single_server()
    print(
        f"{'single-server':<14} {baseline.mean()*1e3:8.1f}m "
        f"{baseline.p95()*1e3:8.1f}m {baseline.max()*1e3:8.1f}m   all on node-1"
    )

    for policy in policy_names():
        result, spread = run_policy(policy)
        print(
            f"{policy:<14} {result.mean()*1e3:8.1f}m "
            f"{result.p95()*1e3:8.1f}m {result.max()*1e3:8.1f}m   {spread}"
        )

    # Fail-over: crash a worker mid-stream, closed-loop this time.
    world, pool = build_world()
    stub = compute_module.ComputeStub(world.orb("studio"), pool.worker_iors()[0])
    mediator = LoadBalancingMediator("round_robin")
    mediator.set_workers(pool.worker_iors())
    mediator.install(stub)
    for job in range(10):
        stub.busy_work(JOB_UNITS)
    world.faults.crash("node-2")
    for job in range(10):
        stub.busy_work(JOB_UNITS)  # fails over transparently
    print(
        f"\nfail-over run: 20/20 jobs done, {mediator.failovers} fail-over(s), "
        f"{len(mediator.workers)} workers left in rotation"
    )


if __name__ == "__main__":
    main()
