#!/usr/bin/env python
"""Push-invalidated market quotes: the event channel + actuality.

The polling Actuality cache (examples/adaptive_news_feed.py) trades
staleness for round trips.  With an event channel pushing invalidation
events, the client negotiates a *huge* freshness budget — almost every
read is a cache hit — yet never observes a stale quote: the publisher
invalidates the cache the moment a price changes.

Run:  python examples/push_quotes.py
"""

import repro.qos as qos
from repro.core.binding import QoSProvider, establish_qos
from repro.core.negotiation import Range
from repro.orb import World
from repro.orb.events import (
    CacheInvalidator,
    EventChannelServant,
    EventChannelStub,
)
from repro.qos.actuality.freshness import ActualityImpl, ActualityMediator
from repro.workloads.apps import make_quote_servant_class, quote_module


def main():
    world = World()
    world.lan(["trader-desk", "exchange", "hub"], latency=0.003)

    # The quote feed, QoS-enabled with Actuality.
    feed = make_quote_servant_class()()
    provider = QoSProvider(world, "exchange", feed)
    provider.support(
        "Actuality",
        ActualityImpl().attach_clock(world.clock),
        capabilities={"max_age": Range(0.1, 1e6)},
    )
    feed_ior = provider.activate("quotes")

    # The event channel on a hub host.
    channel = EventChannelServant(world.orb("hub"))
    channel_ior = world.orb("hub").poa.activate_object(channel, "events")

    # Client: actuality mediator with an effectively infinite budget,
    # kept honest by push invalidation.
    client = world.orb("trader-desk")
    stub = quote_module.QuoteFeedStub(client, feed_ior)
    mediator = ActualityMediator(cacheable={"quote"}, max_age=1e6)
    establish_qos(
        stub, "Actuality", {"max_age": Range(0.1, 1e6, preferred=1e6)},
        mediator=mediator,
    )
    invalidator = CacheInvalidator(mediator)
    invalidator_ior = client.poa.activate_object(invalidator, "inv")
    EventChannelStub(client, channel_ior).subscribe("quotes", invalidator_ior)

    publisher_channel = EventChannelStub(world.orb("exchange"), channel_ior)

    def publish_price(symbol, price):
        feed.publish(symbol, price)
        publisher_channel.publish("quotes", "quote")

    publish_price("ACME", 100.0)
    stale_reads = 0
    reads = 0
    print(f"{'time':>7}  event")
    for tick in range(1, 11):
        world.kernel.run_until(tick * 1.0)
        if tick % 3 == 0:
            new_price = 100.0 + tick
            publish_price("ACME", new_price)
            print(f"{world.clock.now:7.2f}  exchange publishes ACME @ {new_price:.2f}")
        for _ in range(5):  # the desk reads prices constantly
            observed = stub.quote("ACME")
            reads += 1
            if observed != feed._prices["ACME"]:
                stale_reads += 1
    print(f"{world.clock.now:7.2f}  done")

    print(
        f"\nreads: {reads}, stale reads: {stale_reads}, "
        f"cache hits: {mediator.hits} ({mediator.hits / reads:.0%}), "
        f"pushed invalidations: {invalidator.invalidations}"
    )
    assert stale_reads == 0


if __name__ == "__main__":
    main()
